#!/usr/bin/env python
"""Internal-link checker for the documentation site.

Scans every Markdown file under ``docs/`` (plus ``README.md`` and
``ROADMAP.md`` at the repo root) and fails on:

* relative links to files that do not exist,
* intra-document anchors (``page.md#section`` or ``#section``) that do
  not match any heading in the target document,
* absolute-URL links into the repo's own tree (those silently rot when
  the repo moves — use relative links).

External ``http(s)://`` links are *not* fetched (CI must stay hermetic);
they are only syntax-checked.  Run it directly::

    python docs/check_links.py

Exit status 0 = no broken links; 1 = problems (each printed as
``file:line: message``).  The tier-1 suite runs this via
``tests/docs/test_docs_site.py`` and CI runs it as a dedicated job, so a
broken cross-reference fails the build twice over.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

#: Root-level documents whose links into docs/ must also stay unbroken.
EXTRA_DOCUMENTS = ("README.md", "ROADMAP.md")

#: Markdown inline links: [text](target) — excluding images' alt text is
#: unnecessary (image targets must exist too).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ATX headings, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def documents() -> list[Path]:
    """Every Markdown file the checker owns."""
    found = sorted(DOCS_DIR.rglob("*.md"))
    for name in EXTRA_DOCUMENTS:
        path = REPO_ROOT / name
        if path.exists():
            found.append(path)
    return found


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug rule (lowercase, strip punctuation,
    spaces to hyphens)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(github_anchor(match.group(1)))
    return anchors


def links_of(path: Path) -> list[tuple[int, str]]:
    """(line_number, target) for every inline link outside code fences."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((number, match.group(1)))
    return links


def check_document(path: Path) -> list[str]:
    problems: list[str] = []
    for line, target in links_of(path):
        where = f"{path.relative_to(REPO_ROOT)}:{line}"
        if target.startswith(("http://", "https://")):
            continue  # external: not fetched (hermetic CI)
        if target.startswith("mailto:"):
            continue
        if target.startswith("/"):
            problems.append(
                f"{where}: absolute link {target!r} — use a relative path"
            )
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if base and not resolved.exists():
            problems.append(f"{where}: broken link {target!r} "
                            f"(no such file {base!r})")
            continue
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown are out of scope
            if github_anchor(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{where}: broken anchor {target!r} "
                    f"(no heading matches #{fragment})"
                )
    return problems


def main() -> int:
    problems: list[str] = []
    checked = 0
    for path in documents():
        checked += 1
        problems.extend(check_document(path))
    if problems:
        for problem in problems:
            print(problem)
        print(f"\n{len(problems)} broken link(s) across {checked} documents")
        return 1
    print(f"docs link check OK: {checked} documents, no broken internal links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
