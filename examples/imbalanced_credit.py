"""Scenario: imbalanced credit-scoring data (9:1) — G-mean comparison.

Reproduces the structure of the paper's Fig. 9 on one dataset: eight
sampling strategies feeding a decision tree, evaluated with G-mean (the
geometric mean of per-class recalls, which punishes ignoring the minority
class).  Includes the SMOTE family, Tomek links, both GB baselines, and
GBABS.

Run:  python examples/imbalanced_credit.py
"""

import numpy as np

from repro.classifiers import DecisionTreeClassifier
from repro.datasets import get_spec, load_dataset
from repro.evaluation import evaluate_pipeline
from repro.evaluation.ranking import rank_methods
from repro.experiments.reporting import format_table
from repro.sampling import make_sampler

METHODS = ("gbabs", "ggbs", "igbs", "sm", "bsm", "smnc", "tomek", "ori")


def main() -> None:
    # "HTRU2"-profile surrogate: binary, imbalance ratio ~10.
    code = "S9"
    x, y = load_dataset(code, size_factor=0.2, random_state=0)
    counts = np.bincount(y)
    print(f"dataset {code}: {x.shape[0]} samples, class counts {counts.tolist()} "
          f"(IR {counts.max() / counts.min():.1f})\n")

    scores = {}
    rows = []
    for method in METHODS:
        kwargs = {"random_state": 0}
        if method == "smnc":
            kwargs["categorical_features"] = list(get_spec(code).categorical_features)
        if method in ("tomek", "ori"):
            kwargs = {}

        def factory(seed, m=method, kw=kwargs):
            if m == "ori":
                return None
            built = dict(kw)
            if "random_state" in built:
                built["random_state"] = seed
            return make_sampler(m, **built)

        sampler_factory = None if method == "ori" else factory
        result = evaluate_pipeline(
            x, y,
            classifier_factory=lambda s: DecisionTreeClassifier(),
            sampler_factory=sampler_factory,
            n_splits=5, n_repeats=2,
            metrics=("accuracy", "g_mean"), random_state=0,
        )
        scores[method] = np.array([result.means["g_mean"]])
        rows.append(
            [
                method.upper(),
                result.means["accuracy"],
                result.means["g_mean"],
                result.mean_sampling_ratio,
            ]
        )

    ranks = rank_methods(scores)
    for row, method in zip(rows, METHODS):
        row.append(int(ranks[method][0]))

    print(format_table(
        ["Method", "Accuracy", "G-mean", "kept ratio", "G-mean rank"],
        rows,
    ))
    print("\nOversamplers (SM/BSM/SMNC) show kept ratio > 1: they add "
          "synthetic rows instead of compressing. GBABS undersamples toward "
          "the class boundary, so it is the only method that compresses the "
          "dataset while topping the accuracy column and staying "
          "competitive on G-mean.")


if __name__ == "__main__":
    main()
