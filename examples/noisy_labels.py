"""Scenario: cleaning a label-noise-ridden training set before training.

The paper's headline use-case: a medical-diagnosis-style dataset whose
labels are 20% wrong.  We compare four pipelines — no sampling, simple
random sampling, the GGBS baseline, and GBABS — across several classifiers,
reproducing the structure of Table IV on one dataset.

Run:  python examples/noisy_labels.py
"""

import numpy as np

from repro.classifiers import make_classifier
from repro.core import GBABS
from repro.datasets import inject_class_noise, load_dataset
from repro.evaluation import evaluate_pipeline
from repro.experiments.reporting import format_table
from repro.sampling import make_sampler

NOISE_RATIO = 0.2
CLASSIFIERS = ("dt", "knn", "rf")


def sampler_factory(method: str, gbabs_ratio: float):
    """Seedable sampler factory for each pipeline of the comparison."""
    if method == "none":
        return None
    if method == "srs":
        # Paper protocol: SRS mirrors GBABS's sampling ratio.
        return lambda seed: make_sampler("srs", ratio=gbabs_ratio, random_state=seed)
    return lambda seed: make_sampler(method, random_state=seed)


def main() -> None:
    # "Diabetes"-profile surrogate with 20% of labels flipped.
    x, y_clean = load_dataset("S2", size_factor=0.6, random_state=0)
    y, flipped = inject_class_noise(y_clean, NOISE_RATIO, random_state=1)
    print(f"dataset: {x.shape[0]} samples, {x.shape[1]} features, "
          f"{flipped.size} labels flipped ({NOISE_RATIO:.0%})")

    # Reference ratio so SRS is a fair comparison.
    probe = GBABS(rho=5, random_state=0)
    probe.fit_resample(x, y)
    gbabs_ratio = probe.report_.sampling_ratio
    print(f"GBABS keeps {gbabs_ratio:.0%} of the noisy dataset "
          f"({probe.report_.n_noise_removed} samples removed as noise)\n")

    rows = []
    for clf_name in CLASSIFIERS:
        row = [clf_name.upper()]
        for method in ("gbabs", "ggbs", "srs", "none"):
            def clf_factory(seed, name=clf_name):
                if name == "rf":
                    return make_classifier("rf", n_estimators=30, random_state=seed)
                return make_classifier(name)

            result = evaluate_pipeline(
                x, y,
                classifier_factory=clf_factory,
                sampler_factory=sampler_factory(method, gbabs_ratio),
                n_splits=5, n_repeats=2, random_state=0,
            )
            row.append(result.means["accuracy"])
        rows.append(row)

    print(format_table(
        ["Classifier", "GBABS", "GGBS", "SRS", "no sampling"], rows
    ))
    print("\nGBABS should lead most rows: RD-GBG removed flipped labels and "
          "GBABS kept only the class-boundary samples. (Ensembles like RF "
          "are natively noise-robust, so their margin is the smallest.)")


if __name__ == "__main__":
    main()
