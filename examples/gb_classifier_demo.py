"""Scenario: classify with granular balls directly (GBC, related-work §III-A).

Granular-ball computing's promise is that ``m`` balls can stand in for ``n``
samples: train once, persist the ball set, and classify by
nearest-ball-surface.  This example trains the GB classifier on a noisy
dataset, compares it to kNN (its per-sample analogue), and round-trips the
model through the ``.npz`` persistence layer.

Run:  python examples/gb_classifier_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.classifiers import GranularBallClassifier, KNeighborsClassifier
from repro.core.granular_ball import GranularBallSet
from repro.datasets import inject_class_noise, load_dataset


def main() -> None:
    x, y_clean = load_dataset("S10", size_factor=0.15, random_state=0)
    y, _ = inject_class_noise(y_clean, 0.15, random_state=1)
    n = x.shape[0]
    split = int(0.8 * n)
    x_train, y_train = x[:split], y[:split]
    x_test, y_test = x[split:], y_clean[split:]  # score against clean labels

    print(f"train: {split} samples (15% label noise), test: {n - split} clean\n")

    gb = GranularBallClassifier(rho=5, random_state=0).fit(x_train, y_train)
    knn = KNeighborsClassifier(n_neighbors=5).fit(x_train, y_train)

    print(f"GB classifier : {gb.n_balls_} balls "
          f"({gb.compression_ratio():.1%} of training samples), "
          f"clean-test accuracy {gb.score(x_test, y_test):.3f}")
    print(f"kNN (k=5)     : {split} stored samples, "
          f"clean-test accuracy {knn.score(x_test, y_test):.3f}")

    # Persist the fitted geometry and reload it elsewhere.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "balls.npz"
        gb.ball_set_.save(path)
        restored = GranularBallSet.load(path)
        agree = np.mean(restored.predict(x_test) == gb.predict(x_test))
        size_kb = path.stat().st_size / 1024
        print(f"\npersisted model: {size_kb:.1f} KiB on disk, "
              f"reload prediction agreement {agree:.0%}")


if __name__ == "__main__":
    main()
