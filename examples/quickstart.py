"""Quickstart: granular-ball generation and borderline sampling in 5 minutes.

Generates a two-moons dataset, covers it with RD-GBG granular balls, runs
GBABS borderline sampling, and trains a decision tree on the compressed
training set — the whole pipeline of the paper on one toy problem.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.classifiers import DecisionTreeClassifier
from repro.core import GBABS, RDGBG
from repro.viz import scatter


def make_moons(n_per_class: int = 400, noise: float = 0.2, seed: int = 0):
    """Two interleaved crescents — a boundary-rich binary problem."""
    rng = np.random.default_rng(seed)
    t0 = rng.uniform(0, np.pi, n_per_class)
    t1 = rng.uniform(0, np.pi, n_per_class)
    x = np.vstack(
        [
            np.column_stack([np.cos(t0), np.sin(t0)]),
            np.column_stack([1 - np.cos(t1), 0.5 - np.sin(t1)]),
        ]
    )
    x += rng.normal(scale=noise, size=x.shape)
    y = np.repeat([0, 1], n_per_class)
    perm = rng.permutation(2 * n_per_class)
    return x[perm], y[perm]


def main() -> None:
    x, y = make_moons()
    train = slice(0, 600)
    test = slice(600, None)

    # --- 1. Granular-ball generation (RD-GBG, Algorithm 1) --------------
    generator = RDGBG(rho=5, random_state=0)
    result = generator.generate(x[train], y[train])
    summary = result.ball_set.summary()
    print("RD-GBG ball set")
    for key, value in summary.items():
        print(f"  {key:12s} {value}")
    print(f"  noise removed: {result.noise_indices.size}")
    assert summary["max_overlap"] <= 1e-9, "balls must never overlap"

    # --- 2. Borderline sampling (GBABS, Algorithm 2) ---------------------
    sampler = GBABS(rho=5, random_state=0)
    x_border, y_border = sampler.fit_resample(x[train], y[train])
    report = sampler.report_
    print("\nGBABS sampling")
    print(f"  kept {report.n_selected}/{report.n_samples} samples "
          f"(ratio {report.sampling_ratio:.2f})")
    print(f"  borderline balls: {report.n_borderline_balls}/{report.n_balls}")

    # --- 3. Downstream classification ------------------------------------
    full_tree = DecisionTreeClassifier().fit(x[train], y[train])
    border_tree = DecisionTreeClassifier().fit(x_border, y_border)
    print("\nDecision tree on the held-out 200 samples")
    print(f"  trained on all {x[train].shape[0]} samples: "
          f"{full_tree.score(x[test], y[test]):.3f}")
    print(f"  trained on {x_border.shape[0]} borderline samples: "
          f"{border_tree.score(x[test], y[test]):.3f}")

    # --- 4. Look at what was kept ----------------------------------------
    print("\nOriginal dataset vs borderline sample (ASCII):")
    print(scatter(x[train], y[train], height=12, width=50))
    print()
    print(scatter(x_border, y_border, height=12, width=50))


if __name__ == "__main__":
    main()
