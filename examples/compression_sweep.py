"""Scenario: how much can you compress before accuracy degrades?

Sweeps the class-noise ratio on one dataset and reports, for GBABS and
GGBS: the sampling ratio (Fig. 6's question) and the downstream decision
tree accuracy (Table IV's question) — then sweeps the density tolerance ρ
to show GBABS needs no threshold tuning (Figs. 10–11's question).

Run:  python examples/compression_sweep.py
"""

import numpy as np

from repro.classifiers import DecisionTreeClassifier
from repro.core import GBABS
from repro.datasets import inject_class_noise, load_dataset
from repro.evaluation import evaluate_pipeline
from repro.experiments.reporting import format_table
from repro.sampling import GGBS
from repro.viz import line_chart


def cv_accuracy(x, y, sampler_builder):
    result = evaluate_pipeline(
        x, y,
        classifier_factory=lambda s: DecisionTreeClassifier(),
        sampler_factory=sampler_builder,
        n_splits=3, n_repeats=2, random_state=0,
    )
    return result.means["accuracy"]


def main() -> None:
    x, y_clean = load_dataset("S10", size_factor=0.15, random_state=0)
    print(f"dataset: magic surrogate, {x.shape[0]} samples\n")

    # --- noise sweep ------------------------------------------------------
    noise_grid = (0.0, 0.1, 0.2, 0.3, 0.4)
    rows = []
    gbabs_curve, ggbs_curve = [], []
    for noise in noise_grid:
        if noise > 0:
            y, _ = inject_class_noise(y_clean, noise, random_state=2)
        else:
            y = y_clean
        gbabs = GBABS(rho=5, random_state=0)
        gbabs.fit_resample(x, y)
        ggbs = GGBS(random_state=0)
        ggbs.fit_resample(x, y)
        gbabs_ratio = gbabs.report_.sampling_ratio
        ggbs_ratio = ggbs.sampling_ratio(x.shape[0])
        gbabs_curve.append(gbabs_ratio)
        ggbs_curve.append(ggbs_ratio)
        rows.append([
            f"{noise:.0%}",
            gbabs_ratio,
            ggbs_ratio,
            cv_accuracy(x, y, lambda s: GBABS(rho=5, random_state=s)),
            cv_accuracy(x, y, lambda s: GGBS(random_state=s)),
            cv_accuracy(x, y, None),
        ])

    print(format_table(
        ["noise", "GBABS ratio", "GGBS ratio",
         "GBABS-DT acc", "GGBS-DT acc", "DT acc"],
        rows, float_format="{:.3f}",
    ))
    print("\nsampling ratio vs noise (o=GBABS, x=GGBS):")
    print(line_chart(
        np.asarray(noise_grid),
        {"GBABS": np.asarray(gbabs_curve), "GGBS": np.asarray(ggbs_curve)},
        height=10,
    ))

    # --- density-tolerance sweep ------------------------------------------
    print("\ndensity tolerance sweep (clean labels):")
    rho_rows = []
    for rho in (3, 5, 9, 13, 19):
        sampler = GBABS(rho=rho, random_state=0)
        sampler.fit_resample(x, y_clean)
        rho_rows.append([
            rho,
            sampler.report_.sampling_ratio,
            cv_accuracy(x, y_clean, lambda s, r=rho: GBABS(rho=r, random_state=s)),
        ])
    print(format_table(["rho", "ratio", "GBABS-DT acc"], rho_rows,
                       float_format="{:.3f}"))
    print("\nBoth columns barely move: GBABS is insensitive to ρ "
          "(the paper's Figs. 10–11).")


if __name__ == "__main__":
    main()
