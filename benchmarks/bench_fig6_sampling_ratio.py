"""Fig. 6 — GBABS vs GGBS sampling ratio per dataset at each noise level.

Paper's shape: GBABS compresses everywhere; under label noise GGBS's ratio
saturates toward 1.0 while GBABS's stays low, with the gap widening as the
noise ratio grows.
"""

import numpy as np
from conftest import run_once

from repro.experiments import figures


def test_fig6_sampling_ratio(benchmark, cfg, save_report):
    result = run_once(benchmark, figures.fig6, cfg)
    save_report("fig6", figures.format_fig6(result))

    ratios = result["ratios"]
    for noise, series in ratios.items():
        for name, values in series.items():
            assert np.all((values > 0.0) & (values <= 1.0)), (noise, name)

    # At high noise GBABS's mean ratio must undercut GGBS's decisively.
    high = max(ratios)
    gb = float(np.mean(ratios[high]["GBABS"]))
    gg = float(np.mean(ratios[high]["GGBS"]))
    assert gb < gg, (gb, gg)
    # GGBS saturates: most datasets end at ratio ~1 under heavy noise.
    assert float(np.median(ratios[high]["GGBS"])) > 0.9
