"""Serial vs parallel wall-clock of the Table-II experiment grid.

The parallel experiment engine promises two things: a wall-clock speedup
that tracks the core count, and **bit-identical** results at any ``n_jobs``.
This benchmark measures both on the Table-II grid (datasets × sampling
methods, DT classifier): one **cold** parallel pass (payloads — dataset
generation and SRS reference ratios — resolved through the pool, data
shipped zero-copy via the shared-memory plane; its phase breakdown lands
in the record under ``phases``), then one serial and one parallel pass
over identical cells with payloads prewarmed so the speedup comparison
isolates cell computation.  Every pass runs against a fresh memory-only
store so nothing is reused between passes.

Run as a script for the scaling report (written to
``benchmarks/output/grid_scaling.txt`` and ``BENCH_grid.json``)::

    PYTHONPATH=src python benchmarks/bench_grid_scaling.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_grid_scaling.py --jobs 2 --datasets S2 S5

Pytest mode runs a small smoke version of the same comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.config import FULL, MEDIUM, QUICK, ExperimentConfig
from repro.experiments.executor import CellSpec, ExperimentExecutor
from repro.experiments.runner import reference_gbabs_ratio
from repro.experiments.store import CellStore
from repro.experiments.tables import TABLE2_METHODS, table2_specs

_PROFILES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}

OUTPUT_DIR = Path(__file__).parent / "output"
#: BENCH_grid.json lives at the repository root so CI can upload it as the
#: perf-trajectory artifact.
BENCH_JSON = Path(__file__).parent.parent / "BENCH_grid.json"


def _prewarm(cfg: ExperimentConfig) -> None:
    """Populate the shared dataset / reference-ratio caches outside timing."""
    for code in cfg.datasets:
        reference_gbabs_ratio(code, cfg, 0.0)


def _payload_seeded_store(cfg: ExperimentConfig) -> CellStore:
    """Fresh memory-only store with the prewarmed payloads copied in.

    The serial fold path resolves payloads through the process-wide runner
    store, but the pooled scheduler consults the executor's own store —
    so a warm pass must seed the pass-local store explicitly or the
    parallel side would silently re-resolve every payload inside the
    timed window.
    """
    from repro.experiments.runner import (
        dataset_key,
        dataset_with_noise,
        gbabs_ratio_key,
    )

    store = CellStore(None)
    for code in cfg.datasets:
        store.put(
            "data", dataset_key(code, cfg, 0.0),
            dataset_with_noise(code, cfg, 0.0), persist=False,
        )
        store.put(
            "ratio", gbabs_ratio_key(code, cfg, 0.0),
            reference_gbabs_ratio(code, cfg, 0.0), persist=False,
        )
    return store


def _timed_run(
    cfg: ExperimentConfig, specs: list[CellSpec], n_jobs: int, warm: bool = False
):
    """One pass over the grid against a fresh memory-only store."""
    store = _payload_seeded_store(cfg) if warm else CellStore(None)
    executor = ExperimentExecutor(cfg, n_jobs=n_jobs, store=store)
    start = time.perf_counter()
    results = executor.run(specs)
    return time.perf_counter() - start, results, executor.last_stats


def _identical(a, b) -> bool:
    """Float-for-float equality of two CVResult lists."""
    return all(u.exactly_equal(v) for u, v in zip(a, b))


def compare_grid(cfg: ExperimentConfig, jobs: int) -> dict:
    """Serial-vs-parallel comparison of the Table-II grid; returns the record.

    Three passes: a prewarmed serial and parallel pass (the wall-clock
    speedup comparison, payloads cached outside timing), plus one **cold**
    parallel pass against a store that has never seen the grid — that one
    exercises the pooled payload scheduler and the zero-copy data plane,
    and its phase breakdown (payload vs fold worker seconds, bytes
    shipped) is what the perf trajectory tracks.
    """
    specs = table2_specs(cfg)
    # Cold pass first, before _prewarm fills the process-wide store the
    # serial fallbacks consult: every dataset and SRS reference ratio
    # must resolve through the pool.
    cold_s, cold_results, cold_stats = _timed_run(cfg, specs, n_jobs=jobs)
    _prewarm(cfg)
    serial_s, serial_results, serial_stats = _timed_run(
        cfg, specs, n_jobs=1, warm=True
    )
    parallel_s, parallel_results, warm_stats = _timed_run(
        cfg, specs, n_jobs=jobs, warm=True
    )
    assert warm_stats["n_data_tasks"] == 0 and warm_stats["n_ratio_tasks"] == 0, (
        "warm parallel pass re-resolved payloads; speedup would be skewed"
    )

    n_blocks = max(1, cold_stats["n_blocks"])
    # What the retired initializer-pickle path would have shipped: every
    # cell's payload copied into every worker.
    legacy_bytes = cold_stats["plane_bytes"] * (len(specs) / n_blocks) * jobs
    phases = {
        "cold_parallel": {
            "wall_seconds": cold_s,
            "payload_worker_seconds": cold_stats["payload_seconds"],
            "fold_worker_seconds": cold_stats["fold_seconds"],
            "plane_bytes": cold_stats["plane_bytes"],
            "task_bytes": cold_stats["task_bytes"],
            "legacy_shipped_bytes_estimate": int(legacy_bytes),
            "n_blocks": cold_stats["n_blocks"],
            "n_data_tasks": cold_stats["n_data_tasks"],
            "n_ratio_tasks": cold_stats["n_ratio_tasks"],
            "n_fold_tasks": cold_stats["n_fold_tasks"],
        },
        "serial_warm": {
            "payload_seconds": serial_stats["payload_seconds"],
            "fold_seconds": serial_stats["fold_seconds"],
        },
    }
    return {
        "bench": "grid_scaling",
        "grid": "table2",
        "profile": cfg.name,
        "datasets": list(cfg.datasets),
        "n_cells": len(specs),
        "n_folds_per_cell": cfg.n_splits * cfg.n_repeats,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "bit_identical": _identical(serial_results, parallel_results)
        and _identical(serial_results, cold_results),
        "phases": phases,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def format_report(record: dict) -> str:
    cold = record["phases"]["cold_parallel"]
    lines = [
        "Experiment grid scaling — serial vs parallel "
        f"(Table-II grid, profile: {record['profile']})",
        f"cells: {record['n_cells']}  folds/cell: {record['n_folds_per_cell']}  "
        f"cpu_count: {record['cpu_count']}",
        f"{'mode':>10s} {'jobs':>5s} {'wall [s]':>10s}",
        f"{'serial':>10s} {1:5d} {record['serial_seconds']:10.2f}",
        f"{'parallel':>10s} {record['jobs']:5d} {record['parallel_seconds']:10.2f}",
        f"speedup: {record['speedup']:.2f}x   "
        f"bit-identical: {record['bit_identical']}",
        "cold-store data plane: "
        f"{cold['n_blocks']} blocks / {cold['plane_bytes']} B shared "
        f"(+{cold['task_bytes']} B tasks; initializer-pickle era would ship "
        f"~{cold['legacy_shipped_bytes_estimate']} B), "
        f"{cold['n_data_tasks']} dataset + {cold['n_ratio_tasks']} ratio "
        "payload tasks pooled, "
        f"payload/fold worker time {cold['payload_worker_seconds']:.2f}s / "
        f"{cold['fold_worker_seconds']:.2f}s",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest smoke: tiny grid, parity is the contract
# ----------------------------------------------------------------------

_SMOKE = ExperimentConfig(
    name="grid-smoke",
    size_factor=0.05,
    datasets=("S2", "S5"),
    n_splits=2,
    n_repeats=2,
    n_estimators=3,
)


def test_parallel_grid_matches_serial():
    record = compare_grid(_SMOKE, jobs=2)
    assert record["bit_identical"]
    assert record["n_cells"] == len(_SMOKE.datasets) * len(TABLE2_METHODS)
    assert record["serial_seconds"] > 0 and record["parallel_seconds"] > 0


def test_cold_store_payloads_resolve_through_pool():
    """Acceptance: cold runs granulate in the pool, ship O(unique datasets)."""
    import glob

    shm_before = set(glob.glob("/dev/shm/psm_*"))
    store = CellStore(None)
    executor = ExperimentExecutor(_SMOKE, n_jobs=2, store=store)
    parallel = executor.run(table2_specs(_SMOKE))
    stats = executor.last_stats
    # Every dataset and every SRS reference ratio was a pool task …
    assert stats["n_data_tasks"] == len(_SMOKE.datasets)
    assert stats["n_ratio_tasks"] == len(_SMOKE.datasets)
    # … the shared plane holds one block per unique dataset, not one per
    # cell or per worker …
    assert stats["n_blocks"] == len(_SMOKE.datasets)
    assert stats["plane_bytes"] > 0
    legacy = stats["plane_bytes"] * (len(table2_specs(_SMOKE)) / stats["n_blocks"]) * 2
    assert stats["plane_bytes"] + stats["task_bytes"] < legacy
    # … the resolved ratios flushed through the store …
    assert any(kind == "ratio" for kind, _ in store._memory)
    # … results stay bit-identical to serial and no segment leaks.
    serial = ExperimentExecutor(_SMOKE, n_jobs=1, store=CellStore(None)).run(
        table2_specs(_SMOKE)
    )
    assert _identical(serial, parallel)
    assert set(glob.glob("/dev/shm/psm_*")) <= shm_before  # plane unlinked


def test_report_and_json_round_trip(tmp_path):
    record = compare_grid(_SMOKE.scaled(n_repeats=1), jobs=2)
    text = format_report(record)
    assert "bit-identical: True" in text
    path = tmp_path / "BENCH_grid.json"
    path.write_text(json.dumps(record, indent=2))
    assert json.loads(path.read_text())["grid"] == "table2"


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs parallel experiment grid scaling report"
    )
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="parallel worker processes (default: 4)")
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict the grid to these dataset codes")
    parser.add_argument("--size-factor", type=float, default=None,
                        help="override the profile's dataset size factor")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the speedup drops below this")
    args = parser.parse_args(argv)

    cfg = _PROFILES[args.profile]
    overrides = {}
    if args.datasets:
        overrides["datasets"] = tuple(args.datasets)
    if args.size_factor is not None:
        overrides["size_factor"] = args.size_factor
    if overrides:
        cfg = cfg.scaled(**overrides)

    record = compare_grid(cfg, jobs=args.jobs)
    report = format_report(record)
    print(report)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "grid_scaling.txt").write_text(report + "\n")
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[report saved to {OUTPUT_DIR / 'grid_scaling.txt'}]")
    print(f"[record saved to {BENCH_JSON}]")

    if not record["bit_identical"]:
        print("PARITY FAILURE: parallel results differ from serial")
        return 1
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x (cpu_count={record['cpu_count']})"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
