"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on the active
profile (``REPRO_PROFILE`` env var, default ``quick``) and writes its
rendered report to ``benchmarks/output/`` so the artefacts survive pytest's
output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import active_config

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def cfg():
    """The experiment profile shared by the whole benchmark session."""
    return active_config()


@pytest.fixture(scope="session")
def save_report():
    """Writer persisting a rendered table/figure to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment exactly once (no warmup rounds)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
