"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on the active
profile (``REPRO_PROFILE`` env var, default ``quick``) and writes its
rendered report to ``benchmarks/output/`` so the artefacts survive pytest's
output capturing.

Options::

    pytest benchmarks --jobs 4       # fan CV grids over 4 worker processes
    pytest benchmarks --no-cache     # ignore the persistent cell store

Completed cells persist in ``benchmarks/output/cellstore/`` (content-keyed
``.npz`` files), so a killed benchmark session resumes from the finished
cells on the next run instead of recomputing them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import active_config

OUTPUT_DIR = Path(__file__).parent / "output"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1,
        help="worker processes for CV grids (0 = all cores; "
             "results are bit-identical to serial)",
    )
    parser.addoption(
        "--no-cache", action="store_true",
        help="disable the persistent cell store for this session",
    )


@pytest.fixture(scope="session")
def jobs(request):
    """Worker-process count selected with ``--jobs`` (default: serial)."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session", autouse=True)
def _store_mode(request):
    """Point the cell store at benchmarks/output/cellstore (or disable it)."""
    from repro.experiments.runner import configure_store

    if request.config.getoption("--no-cache"):
        configure_store(persist=False)
    else:
        configure_store(root=OUTPUT_DIR / "cellstore")


@pytest.fixture(scope="session")
def cfg():
    """The experiment profile shared by the whole benchmark session."""
    return active_config()


@pytest.fixture(scope="session")
def save_report():
    """Writer persisting a rendered table/figure to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment exactly once (no warmup rounds)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
