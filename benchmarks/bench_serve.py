"""Serving-path benchmark: artifact loading and micro-batched latency.

Measures the two promises of the freeze/serve split:

* **Load**: opening the mmap-able artifact (``repro freeze`` output) vs
  unpickling the fitted classifier — seconds and bytes for each.  The
  artifact load is header-parse + mmap, so it should stay flat as models
  grow while pickle pays a full deserialising copy.
* **Serve**: p50/p99/mean request latency and throughput over the real
  asyncio HTTP server at 1/8/64 concurrent keep-alive clients, with the
  micro-batcher on and off.  At high concurrency the batcher coalesces
  the concurrent single-row requests into one vectorised kernel pass per
  ~1 ms window; the benchmark gates on batched throughput at the highest
  concurrency being at least the unbatched figure.
* **Wire formats** (``--binary``): the same serving matrix with JSON
  bodies vs binary frames (``application/x-gbaf-batch``) carrying
  multi-row requests — the ``wire_formats`` record in
  ``BENCH_serve.json``.  Gates: binary throughput at least JSON's, and
  binary p50 no worse than JSON's, at the highest concurrency.
* **Multi-model routing** (``--models N``): one server routing N
  independent artifacts with the client fleet split across
  ``/models/<name>/predict`` — the ``multi_model`` record.  Gates: every
  model answered its share, zero server errors.

**Parity is the contract**: before timing anything, frozen predictions are
compared bit-for-bit against ``GranularBallClassifier.predict`` and the
run hard-fails on any difference.

Run as a script for the serving report (written to
``benchmarks/output/serve_bench.txt`` and ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --requests 500 --size-factor 1.0

Pytest mode runs a small smoke version of the same measurements.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.classifiers.gb_classifier import GranularBallClassifier
from repro.datasets import load_dataset
from repro.serving import FrozenPredictor, PredictorManager
from repro.serving.client import PredictClient
from repro.serving.router import ModelRouter
from repro.serving.server import PredictServer

OUTPUT_DIR = Path(__file__).parent / "output"
#: BENCH_serve.json lives at the repository root so CI can upload it as the
#: serving perf-trajectory artifact.
BENCH_JSON = Path(__file__).parent.parent / "BENCH_serve.json"


# ----------------------------------------------------------------------
# model + parity gate
# ----------------------------------------------------------------------


def build_model(dataset: str = "S5", size_factor: float = 1.0,
                rho: int = 5, seed: int = 0):
    """Fit the classifier the benchmark freezes and serves."""
    x, y = load_dataset(dataset, size_factor=size_factor, random_state=seed)
    clf = GranularBallClassifier(rho=rho, random_state=seed).fit(x, y)
    return clf, x, y


def check_parity(clf, predictor, queries: np.ndarray) -> bool:
    """Bit-identical frozen vs in-memory predictions on several shapes."""
    for batch in (queries, queries[:1], queries[: min(190, len(queries))]):
        if not np.array_equal(clf.predict(batch), predictor.predict(batch)):
            return False
    return True


# ----------------------------------------------------------------------
# load-path comparison: mmap artifact vs pickle
# ----------------------------------------------------------------------


def bench_load(clf, tmp_dir: Path, repeats: int = 20) -> dict:
    """Seconds + bytes for artifact-mmap load vs classifier unpickling."""
    artifact_path = tmp_dir / "bench-model.gba"
    clf.freeze(artifact_path)
    pickle_path = tmp_dir / "bench-model.pkl"
    pickle_path.write_bytes(pickle.dumps(clf, protocol=pickle.HIGHEST_PROTOCOL))

    def _time(fn) -> float:
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    def _load_artifact():
        FrozenPredictor.load(artifact_path).close()

    def _load_artifact_unverified():
        FrozenPredictor.load(artifact_path, verify=False).close()

    def _load_pickle():
        pickle.loads(pickle_path.read_bytes())

    return {
        "artifact_bytes": artifact_path.stat().st_size,
        "pickle_bytes": pickle_path.stat().st_size,
        "artifact_load_seconds": _time(_load_artifact),
        "artifact_load_seconds_no_verify": _time(_load_artifact_unverified),
        "pickle_load_seconds": _time(_load_pickle),
        "repeats": repeats,
    }


# ----------------------------------------------------------------------
# serving matrix: latency/throughput × concurrency × batching
# ----------------------------------------------------------------------


async def _client_run(host: str, port: int, rows: list,
                      n_requests: int, *, binary: bool = False,
                      model: str | None = None) -> list[float]:
    """One keep-alive client firing sequential requests; returns latencies."""
    client = await PredictClient.connect(host, port, binary=binary,
                                         model=model)
    latencies = []
    try:
        for _ in range(n_requests):
            start = time.perf_counter()
            await client.predict(rows)
            latencies.append(time.perf_counter() - start)
    finally:
        await client.close()
    return latencies


def _latency_record(per_client: list[list[float]], wall: float) -> dict:
    latencies = np.array([lat for client in per_client for lat in client])
    return {
        "n_requests": int(latencies.size),
        "wall_seconds": wall,
        "throughput_rps": latencies.size / wall,
        "latency_ms": {
            "p50": float(np.percentile(latencies, 50) * 1e3),
            "p99": float(np.percentile(latencies, 99) * 1e3),
            "mean": float(latencies.mean() * 1e3),
            "max": float(latencies.max() * 1e3),
        },
    }


async def _measure_async(predictor, queries: np.ndarray, *, concurrency: int,
                         requests_per_client: int, batching: bool,
                         batch_window: float, max_batch: int) -> dict:
    server = PredictServer(
        predictor, port=0, batching=batching,
        batch_window=batch_window, max_batch=max_batch,
    )
    await server.start()
    try:
        # Every client sends single-row requests (the serving-fleet shape
        # micro-batching exists for), each with its own query point.
        rows = [queries[i % len(queries)].tolist() for i in range(concurrency)]
        start = time.perf_counter()
        per_client = await asyncio.gather(
            *[
                _client_run(server.host, server.port, [rows[i]],
                            requests_per_client)
                for i in range(concurrency)
            ]
        )
        wall = time.perf_counter() - start
        stats = server.stats()
    finally:
        await server.shutdown()
    record = {
        "concurrency": concurrency,
        "batching": batching,
        **_latency_record(per_client, wall),
    }
    if batching:
        batch = stats["batch"]
        record["batch"] = {
            "n_batches": batch["n_batches"],
            "mean_batch_rows": batch["mean_batch_rows"],
            "max_batch_rows": batch["max_batch_rows"],
            "n_full_flushes": batch["n_full_flushes"],
        }
    return record


def measure_serving(predictor, queries: np.ndarray, *, concurrency: int,
                    requests_per_client: int, batching: bool,
                    batch_window: float = 0.001,
                    max_batch: int = 256) -> dict:
    return asyncio.run(
        _measure_async(
            predictor, queries, concurrency=concurrency,
            requests_per_client=requests_per_client, batching=batching,
            batch_window=batch_window, max_batch=max_batch,
        )
    )


# ----------------------------------------------------------------------
# wire formats: JSON float text vs binary frames
# ----------------------------------------------------------------------


async def _measure_wire_async(predictor, queries: np.ndarray, *,
                              concurrency: int, requests_per_client: int,
                              rows_per_request: int, batch_window: float,
                              max_batch: int) -> dict:
    """JSON vs binary predict bodies over one server, same rows.

    Requests carry ``rows_per_request`` rows each — the regime the binary
    frame exists for: past a handful of rows the JSON path spends more
    time on float text than on the kernel.  Before timing, one request
    per format must answer bit-identically (the parity contract extends
    to the wire).
    """
    server = PredictServer(
        predictor, port=0, batching=True,
        batch_window=batch_window, max_batch=max_batch,
    )
    await server.start()
    try:
        rows = [
            queries[
                (i * rows_per_request) % len(queries):
            ][:rows_per_request].tolist()
            for i in range(concurrency)
        ]
        # Bit-parity across formats before any timing.
        check_client = await PredictClient.connect(server.host, server.port)
        check_binary = await PredictClient.connect(
            server.host, server.port, binary=True
        )
        try:
            parity = (
                await check_client.predict(rows[0])
                == await check_binary.predict(rows[0])
            )
        finally:
            await check_client.close()
            await check_binary.close()
        if not parity:
            return {"wire_bit_identical": False}

        formats = {}
        for fmt in ("json", "binary"):
            start = time.perf_counter()
            per_client = await asyncio.gather(
                *[
                    _client_run(server.host, server.port, rows[i],
                                requests_per_client,
                                binary=fmt == "binary")
                    for i in range(concurrency)
                ]
            )
            formats[fmt] = _latency_record(
                per_client, time.perf_counter() - start
            )
        n_frames = server.n_binary_requests
    finally:
        await server.shutdown()
    return {
        "concurrency": concurrency,
        "rows_per_request": rows_per_request,
        "wire_bit_identical": True,
        "json": formats["json"],
        "binary": formats["binary"],
        "n_binary_requests": n_frames,
        "binary_vs_json": {
            "rps_ratio": (
                formats["binary"]["throughput_rps"]
                / formats["json"]["throughput_rps"]
            ),
            "p50_ratio": (
                formats["binary"]["latency_ms"]["p50"]
                / formats["json"]["latency_ms"]["p50"]
            ),
        },
    }


def measure_wire_formats(predictor, queries: np.ndarray, *,
                         concurrency: int, requests_per_client: int,
                         rows_per_request: int = 64,
                         batch_window: float = 0.001,
                         max_batch: int = 256) -> dict:
    return asyncio.run(
        _measure_wire_async(
            predictor, queries, concurrency=concurrency,
            requests_per_client=requests_per_client,
            rows_per_request=rows_per_request,
            batch_window=batch_window, max_batch=max_batch,
        )
    )


def run_wire_benchmark(*, dataset: str = "S5", size_factor: float = 1.0,
                       rho: int = 5, seed: int = 0,
                       concurrency_levels=(1, 8, 64),
                       requests_per_client: int = 50,
                       rows_per_request: int = 64) -> dict:
    """The ``wire_formats`` record: JSON vs binary across concurrency."""
    import tempfile

    clf, x, _y = build_model(dataset, size_factor, rho, seed)
    gen = np.random.default_rng(seed + 1)
    queries = gen.normal(
        x.mean(axis=0), x.std(axis=0) * 1.5, (1024, x.shape[1])
    )
    with tempfile.TemporaryDirectory() as td:
        artifact_path = Path(td) / "wire-model.gba"
        clf.freeze(artifact_path)
        with FrozenPredictor.load(artifact_path) as predictor:
            levels = [
                measure_wire_formats(
                    predictor, queries, concurrency=concurrency,
                    requests_per_client=requests_per_client,
                    rows_per_request=rows_per_request,
                )
                for concurrency in concurrency_levels
            ]
    top = max(concurrency_levels)
    at_top = next(r for r in levels if r["concurrency"] == top)
    return {
        "rows_per_request": rows_per_request,
        "requests_per_client": requests_per_client,
        "levels": levels,
        "binary_vs_json_at_max_concurrency": {
            "concurrency": top,
            "json_rps": at_top["json"]["throughput_rps"],
            "binary_rps": at_top["binary"]["throughput_rps"],
            "json_p50_ms": at_top["json"]["latency_ms"]["p50"],
            "binary_p50_ms": at_top["binary"]["latency_ms"]["p50"],
            "speedup": at_top["binary_vs_json"]["rps_ratio"],
        },
    }


def format_wire_report(record: dict) -> str:
    lines = [
        f"wire formats — {record['rows_per_request']} rows/request, "
        "JSON vs binary frames",
        f"{'clients':>8s} {'format':>7s} {'p50 [ms]':>9s} {'p99 [ms]':>9s} "
        f"{'req/s':>9s}",
    ]
    for level in record["levels"]:
        for fmt in ("json", "binary"):
            row = level[fmt]
            lat = row["latency_ms"]
            lines.append(
                f"{level['concurrency']:8d} {fmt:>7s} {lat['p50']:9.3f} "
                f"{lat['p99']:9.3f} {row['throughput_rps']:9.0f}"
            )
    gate = record["binary_vs_json_at_max_concurrency"]
    lines.append(
        f"at {gate['concurrency']} clients: binary {gate['binary_rps']:.0f} "
        f"req/s vs JSON {gate['json_rps']:.0f} req/s "
        f"({gate['speedup']:.2f}x), p50 {gate['binary_p50_ms']:.3f} ms vs "
        f"{gate['json_p50_ms']:.3f} ms"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# multi-model routing: one listener, N independent artifacts
# ----------------------------------------------------------------------


async def _measure_multi_model_async(clf, queries: np.ndarray, *,
                                     work_dir: Path, n_models: int,
                                     concurrency: int,
                                     requests_per_client: int) -> dict:
    """A fleet split across ``/models/<name>/predict`` on one server."""
    specs = {}
    for i in range(n_models):
        path = work_dir / f"routed-{i}.gba"
        clf.freeze(path)
        specs[f"m{i}"] = path
    router = ModelRouter.from_specs(specs, "m0", poll_interval=600.0)
    server = PredictServer(router, port=0, max_pending=max(64, concurrency))
    await server.start()
    try:
        rows = [queries[i % len(queries)].tolist() for i in range(concurrency)]
        start = time.perf_counter()
        per_client = await asyncio.gather(
            *[
                _client_run(server.host, server.port, [rows[i]],
                            requests_per_client, model=f"m{i % n_models}")
                for i in range(concurrency)
            ]
        )
        wall = time.perf_counter() - start
        stats = server.stats()
    finally:
        await server.shutdown()
        router.close()
    per_model = {
        name: batch["n_requests"]
        for name, batch in stats["batch_by_model"].items()
    }
    return {
        "n_models": n_models,
        "concurrency": concurrency,
        **_latency_record(per_client, wall),
        "requests_by_model": per_model,
        "server_errors": stats["admission"]["n_errors"],
    }


def measure_multi_model(clf, queries: np.ndarray, *, work_dir: Path,
                        n_models: int, concurrency: int,
                        requests_per_client: int) -> dict:
    return asyncio.run(
        _measure_multi_model_async(
            clf, queries, work_dir=work_dir, n_models=n_models,
            concurrency=concurrency,
            requests_per_client=requests_per_client,
        )
    )


def run_multi_model_benchmark(*, dataset: str = "S5",
                              size_factor: float = 0.5, rho: int = 5,
                              seed: int = 0, n_models: int = 2,
                              concurrency: int = 8,
                              requests_per_client: int = 50) -> dict:
    """The ``multi_model`` record: routed serving over N artifacts."""
    import tempfile

    clf, x, _y = build_model(dataset, size_factor, rho, seed)
    gen = np.random.default_rng(seed + 1)
    queries = gen.normal(
        x.mean(axis=0), x.std(axis=0) * 1.5, (256, x.shape[1])
    )
    with tempfile.TemporaryDirectory() as td:
        return measure_multi_model(
            clf, queries, work_dir=Path(td), n_models=n_models,
            concurrency=concurrency,
            requests_per_client=requests_per_client,
        )


def format_multi_model_report(record: dict) -> str:
    shares = ", ".join(
        f"{name}: {count}"
        for name, count in sorted(record["requests_by_model"].items())
    )
    return (
        f"multi-model: {record['n_models']} models / "
        f"{record['concurrency']} clients — "
        f"{record['n_requests']} requests at "
        f"{record['throughput_rps']:.0f} req/s "
        f"(p50 {record['latency_ms']['p50']:.3f} ms), "
        f"per-model [{shares}], {record['server_errors']} errors"
    )


def run_benchmark(*, dataset: str = "S5", size_factor: float = 1.0,
                  rho: int = 5, seed: int = 0,
                  concurrency_levels=(1, 8, 64),
                  requests_per_client: int = 200,
                  batch_window: float = 0.001, max_batch: int = 256,
                  tmp_dir: Path | None = None) -> dict:
    """The full benchmark: load comparison + parity gate + serving matrix."""
    import tempfile

    clf, x, _y = build_model(dataset, size_factor, rho, seed)
    gen = np.random.default_rng(seed + 1)
    queries = gen.normal(
        x.mean(axis=0), x.std(axis=0) * 1.5, (512, x.shape[1])
    )

    with tempfile.TemporaryDirectory() as td:
        work_dir = Path(tmp_dir) if tmp_dir is not None else Path(td)
        load_record = bench_load(clf, work_dir)
        with FrozenPredictor.load(work_dir / "bench-model.gba") as predictor:
            parity = check_parity(clf, predictor, queries)
            if not parity:
                return {"bench": "serve", "bit_identical": False}
            matrix = []
            for concurrency in concurrency_levels:
                for batching in (False, True):
                    matrix.append(
                        measure_serving(
                            predictor, queries, concurrency=concurrency,
                            requests_per_client=requests_per_client,
                            batching=batching, batch_window=batch_window,
                            max_batch=max_batch,
                        )
                    )

    top = max(concurrency_levels)

    def _rps(batching: bool) -> float:
        return next(
            r["throughput_rps"] for r in matrix
            if r["concurrency"] == top and r["batching"] is batching
        )

    return {
        "bench": "serve",
        "dataset": dataset,
        "size_factor": size_factor,
        "rho": rho,
        "n_samples": int(x.shape[0]),
        "n_features": int(x.shape[1]),
        "n_balls": clf.n_balls_,
        "bit_identical": True,
        "load": load_record,
        "serving": matrix,
        "requests_per_client": requests_per_client,
        "batch_window_seconds": batch_window,
        "max_batch": max_batch,
        "batched_vs_unbatched_at_max_concurrency": {
            "concurrency": top,
            "unbatched_rps": _rps(False),
            "batched_rps": _rps(True),
            "speedup": _rps(True) / _rps(False),
        },
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def format_report(record: dict) -> str:
    load = record["load"]
    lines = [
        "Serving benchmark — frozen artifact vs in-memory classifier "
        f"({record['dataset']}, {record['n_samples']} samples -> "
        f"{record['n_balls']} balls)",
        f"bit-identical predictions: {record['bit_identical']}",
        "load: artifact "
        f"{load['artifact_bytes']} B in {load['artifact_load_seconds'] * 1e3:.2f} ms "
        f"({load['artifact_load_seconds_no_verify'] * 1e3:.2f} ms unverified) "
        f"vs pickle {load['pickle_bytes']} B in "
        f"{load['pickle_load_seconds'] * 1e3:.2f} ms",
        f"{'clients':>8s} {'mode':>10s} {'p50 [ms]':>9s} {'p99 [ms]':>9s} "
        f"{'mean':>7s} {'req/s':>9s} {'batches':>8s}",
    ]
    for row in record["serving"]:
        lat = row["latency_ms"]
        batches = str(row["batch"]["n_batches"]) if "batch" in row else "-"
        mode = "batched" if row["batching"] else "unbatched"
        lines.append(
            f"{row['concurrency']:8d} {mode:>10s} {lat['p50']:9.3f} "
            f"{lat['p99']:9.3f} {lat['mean']:7.3f} "
            f"{row['throughput_rps']:9.0f} {batches:>8s}"
        )
    gate = record["batched_vs_unbatched_at_max_concurrency"]
    lines.append(
        f"at {gate['concurrency']} clients: batched {gate['batched_rps']:.0f} "
        f"req/s vs unbatched {gate['unbatched_rps']:.0f} req/s "
        f"({gate['speedup']:.2f}x)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# reload under load: hot swaps with zero dropped requests
# ----------------------------------------------------------------------


async def _reload_under_load_async(clf_v1, clf_v2, queries: np.ndarray, *,
                                   work_dir: Path, clients: int,
                                   reloads: int, settle: float) -> dict:
    """``reloads`` hot artifact swaps while ``clients`` stream predicts.

    The two classifiers are label-flips of one another, so every query
    distinguishes which model answered: each streaming client asserts its
    labels match exactly one of the two versions, and anything else (an
    exception, a torn response, a half-swapped state) counts as a failed
    request.  Gates downstream: ``failed_requests == 0`` and post-swap
    predictions bit-identical to a fresh predictor on the final artifact.
    """
    artifact_path = work_dir / "reload-model.gba"
    clf_v1.freeze(artifact_path)
    probe = [queries[i % len(queries)].tolist() for i in range(clients)]
    valid = [
        (
            clf_v1.predict(np.array([row])).tolist(),
            clf_v2.predict(np.array([row])).tolist(),
        )
        for row in probe
    ]

    manager = PredictorManager(artifact_path, poll_interval=600.0)
    server = PredictServer(manager, port=0, max_pending=max(256, 4 * clients))
    await server.start()
    failed = 0

    async def client_loop(row, ok, stop):
        nonlocal failed
        client = await PredictClient.connect(
            server.host, server.port, retries=4,
            backoff=0.01, max_backoff=0.05,
        )
        count = 0
        try:
            while not stop.is_set():
                try:
                    labels = await client.predict([row])
                    if labels not in ok:
                        failed += 1
                except Exception:
                    failed += 1
                count += 1
                await asyncio.sleep(0)
        finally:
            await client.close()
        return count, client.n_retries

    try:
        stop = asyncio.Event()
        tasks = [
            asyncio.ensure_future(client_loop(probe[i], valid[i], stop))
            for i in range(clients)
        ]
        admin = await PredictClient.connect(server.host, server.port)
        swap_seconds = []
        try:
            await asyncio.sleep(settle)
            for i in range(reloads):
                (clf_v2 if i % 2 == 0 else clf_v1).freeze(artifact_path)
                status, entry = await admin.reload()
                if status != 200 or entry.get("status") != "swapped":
                    raise RuntimeError(f"swap {i + 1} failed: {entry}")
                swap_seconds.append(entry["seconds"])
                await asyncio.sleep(settle)
            stop.set()
            results = await asyncio.gather(*tasks)
        finally:
            await admin.close()
        post_swap = manager.predict(np.array(probe))
        with FrozenPredictor.load(artifact_path) as fresh:
            parity = bool(
                np.array_equal(post_swap, fresh.predict(np.array(probe)))
            )
        stats = server.stats()
    finally:
        await server.shutdown()
        manager.close()

    total = sum(count for count, _ in results)
    return {
        "clients": clients,
        "reloads": reloads,
        "total_requests": total,
        "failed_requests": failed,
        "client_retries": sum(retries for _, retries in results),
        "server_5xx": stats["admission"]["n_errors"],
        "server_shed": stats["admission"]["n_shed"],
        "swap_seconds": {
            "mean": float(np.mean(swap_seconds)),
            "max": float(np.max(swap_seconds)),
        },
        "post_swap_bit_identical": parity,
    }


def measure_reload_under_load(clf_v1, clf_v2, queries: np.ndarray, *,
                              work_dir: Path, clients: int = 8,
                              reloads: int = 3,
                              settle: float = 0.05) -> dict:
    return asyncio.run(
        _reload_under_load_async(
            clf_v1, clf_v2, queries, work_dir=work_dir,
            clients=clients, reloads=reloads, settle=settle,
        )
    )


def run_reload_benchmark(*, dataset: str = "S5", size_factor: float = 0.5,
                         rho: int = 5, seed: int = 0, clients: int = 8,
                         reloads: int = 3) -> dict:
    """Fit v1/v2 (label-flipped twins) and swap under streaming load."""
    import tempfile

    x, y = load_dataset(dataset, size_factor=size_factor, random_state=seed)
    clf_v1 = GranularBallClassifier(rho=rho, random_state=seed).fit(x, y)
    clf_v2 = GranularBallClassifier(rho=rho, random_state=seed).fit(x, 1 - y)
    gen = np.random.default_rng(seed + 1)
    queries = gen.normal(
        x.mean(axis=0), x.std(axis=0) * 1.5, (128, x.shape[1])
    )
    with tempfile.TemporaryDirectory() as td:
        return measure_reload_under_load(
            clf_v1, clf_v2, queries, work_dir=Path(td),
            clients=clients, reloads=reloads,
        )


def format_reload_report(record: dict) -> str:
    swap = record["swap_seconds"]
    return (
        f"reload under load: {record['reloads']} swaps / "
        f"{record['clients']} streaming clients — "
        f"{record['total_requests']} requests, "
        f"{record['failed_requests']} failed, "
        f"{record['client_retries']} retries, "
        f"swap {swap['mean'] * 1e3:.1f} ms mean / "
        f"{swap['max'] * 1e3:.1f} ms max, "
        f"post-swap bit-identical: {record['post_swap_bit_identical']}"
    )


# ----------------------------------------------------------------------
# pytest smoke: small model, short matrix, parity is the contract
# ----------------------------------------------------------------------


def test_frozen_serving_parity_and_shape():
    record = run_benchmark(
        size_factor=0.2, concurrency_levels=(1, 8),
        requests_per_client=25,
    )
    assert record["bit_identical"]
    assert record["load"]["artifact_bytes"] > 0
    assert record["load"]["artifact_load_seconds"] > 0
    assert len(record["serving"]) == 4  # 2 concurrency levels x 2 modes
    for row in record["serving"]:
        assert row["n_requests"] == row["concurrency"] * 25
        assert row["latency_ms"]["p50"] <= row["latency_ms"]["p99"]
        assert row["throughput_rps"] > 0
    batched_8 = next(
        r for r in record["serving"]
        if r["concurrency"] == 8 and r["batching"]
    )
    # Coalescing happened: fewer kernel passes than requests.
    assert batched_8["batch"]["n_batches"] < batched_8["n_requests"]


def test_reload_under_load_smoke():
    record = run_reload_benchmark(size_factor=0.1, clients=4, reloads=2)
    assert record["failed_requests"] == 0
    assert record["server_5xx"] == 0
    assert record["post_swap_bit_identical"]
    assert record["total_requests"] > 0
    assert "failed" in format_reload_report(record)


def test_wire_format_comparison_smoke():
    record = run_wire_benchmark(
        size_factor=0.2, concurrency_levels=(1, 4),
        requests_per_client=10, rows_per_request=16,
    )
    assert len(record["levels"]) == 2
    for level in record["levels"]:
        assert level["wire_bit_identical"]
        assert level["json"]["n_requests"] == level["binary"]["n_requests"]
        assert level["n_binary_requests"] >= level["binary"]["n_requests"]
        assert level["binary_vs_json"]["rps_ratio"] > 0
    gate = record["binary_vs_json_at_max_concurrency"]
    assert gate["concurrency"] == 4
    assert "binary" in format_wire_report(record)


def test_multi_model_benchmark_smoke():
    record = run_multi_model_benchmark(
        size_factor=0.1, n_models=2, concurrency=4,
        requests_per_client=10,
    )
    assert record["n_models"] == 2
    assert record["server_errors"] == 0
    assert sorted(record["requests_by_model"]) == ["m0", "m1"]
    # The fleet was split: every model answered its share.
    assert all(
        count == 2 * 10 for count in record["requests_by_model"].values()
    )
    assert "multi-model" in format_multi_model_report(record)


def test_report_and_json_round_trip(tmp_path):
    record = run_benchmark(
        size_factor=0.1, concurrency_levels=(1, 4),
        requests_per_client=10,
    )
    text = format_report(record)
    assert "bit-identical predictions: True" in text
    path = tmp_path / "BENCH_serve.json"
    path.write_text(json.dumps(record, indent=2))
    assert json.loads(path.read_text())["bench"] == "serve"


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="frozen-artifact serving latency/throughput report"
    )
    parser.add_argument("--dataset", default="S5",
                        help="Table-I dataset code to fit (default: S5)")
    parser.add_argument("--size-factor", type=float, default=1.0)
    parser.add_argument("--rho", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="requests per client (default: 200)")
    parser.add_argument("--concurrency", type=int, nargs="+",
                        default=[1, 8, 64],
                        help="concurrent client counts (default: 1 8 64)")
    parser.add_argument("--batch-window-ms", type=float, default=1.0)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--reloads", type=int, default=0, metavar="R",
                        help="also run R hot swaps under streaming load "
                             "and gate on zero failed requests "
                             "(default: 0 = skip)")
    parser.add_argument("--reload-clients", type=int, default=8,
                        help="streaming clients for --reloads (default: 8)")
    parser.add_argument("--binary", action="store_true",
                        help="also compare JSON vs binary wire formats and "
                             "gate on binary being no slower at the top "
                             "concurrency")
    parser.add_argument("--rows-per-request", type=int, default=64,
                        help="rows per request in the --binary comparison "
                             "(default: 64)")
    parser.add_argument("--models", type=int, default=0, metavar="N",
                        help="also bench a router serving N models with "
                             "the fleet split across them "
                             "(default: 0 = skip)")
    args = parser.parse_args(argv)

    record = run_benchmark(
        dataset=args.dataset, size_factor=args.size_factor, rho=args.rho,
        seed=args.seed, concurrency_levels=tuple(args.concurrency),
        requests_per_client=args.requests,
        batch_window=args.batch_window_ms / 1e3, max_batch=args.max_batch,
    )

    if not record["bit_identical"]:
        print("PARITY FAILURE: frozen predictions differ from the classifier")
        return 1

    report = format_report(record)

    if args.reloads > 0:
        reload_record = run_reload_benchmark(
            dataset=args.dataset, size_factor=args.size_factor,
            rho=args.rho, seed=args.seed, clients=args.reload_clients,
            reloads=args.reloads,
        )
        record["reload_under_load"] = reload_record
        report += "\n" + format_reload_report(reload_record)

    if args.binary:
        wire_record = run_wire_benchmark(
            dataset=args.dataset, size_factor=args.size_factor,
            rho=args.rho, seed=args.seed,
            concurrency_levels=tuple(args.concurrency),
            requests_per_client=max(10, args.requests // 4),
            rows_per_request=args.rows_per_request,
        )
        record["wire_formats"] = wire_record
        report += "\n" + format_wire_report(wire_record)

    if args.models > 1:
        multi_record = run_multi_model_benchmark(
            dataset=args.dataset, size_factor=args.size_factor,
            rho=args.rho, seed=args.seed, n_models=args.models,
            concurrency=max(args.concurrency),
            requests_per_client=max(10, args.requests // 4),
        )
        record["multi_model"] = multi_record
        report += "\n" + format_multi_model_report(multi_record)

    print(report)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serve_bench.txt").write_text(report + "\n")
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[report saved to {OUTPUT_DIR / 'serve_bench.txt'}]")
    print(f"[record saved to {BENCH_JSON}]")

    gate = record["batched_vs_unbatched_at_max_concurrency"]
    if gate["batched_rps"] < gate["unbatched_rps"]:
        print(
            f"FAIL: micro-batched throughput {gate['batched_rps']:.0f} req/s "
            f"below unbatched {gate['unbatched_rps']:.0f} req/s at "
            f"{gate['concurrency']} clients"
        )
        return 1
    reload_record = record.get("reload_under_load")
    if reload_record is not None:
        if reload_record["failed_requests"] > 0:
            print(
                f"FAIL: {reload_record['failed_requests']} requests failed "
                f"across {reload_record['reloads']} hot swaps"
            )
            return 1
        if not reload_record["post_swap_bit_identical"]:
            print("FAIL: post-swap predictions differ from a fresh predictor")
            return 1
    wire_record = record.get("wire_formats")
    if wire_record is not None:
        if not all(lv["wire_bit_identical"] for lv in wire_record["levels"]):
            print("FAIL: JSON and binary predictions differ")
            return 1
        wgate = wire_record["binary_vs_json_at_max_concurrency"]
        if wgate["binary_rps"] < wgate["json_rps"]:
            print(
                f"FAIL: binary throughput {wgate['binary_rps']:.0f} req/s "
                f"below JSON {wgate['json_rps']:.0f} req/s at "
                f"{wgate['concurrency']} clients"
            )
            return 1
        if wgate["binary_p50_ms"] > wgate["json_p50_ms"]:
            print(
                f"FAIL: binary p50 {wgate['binary_p50_ms']:.3f} ms above "
                f"JSON p50 {wgate['json_p50_ms']:.3f} ms at "
                f"{wgate['concurrency']} clients"
            )
            return 1
    multi_record = record.get("multi_model")
    if multi_record is not None:
        if multi_record["server_errors"] > 0:
            print(
                f"FAIL: {multi_record['server_errors']} server errors "
                "during the multi-model run"
            )
            return 1
        if len(multi_record["requests_by_model"]) != multi_record["n_models"]:
            print("FAIL: not every routed model answered requests")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
