"""Figs. 10–11 — sensitivity of GBABS to the density tolerance ρ.

Paper's shape: both the sampling ratio and the downstream DT accuracy are
flat in ρ (the method needs no threshold search).
"""

import numpy as np
from conftest import run_once

from repro.experiments import figures


def test_fig10_fig11_density_tolerance(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, figures.fig10_fig11, cfg, n_jobs=jobs)
    save_report("fig10_fig11", figures.format_fig10_fig11(result))

    rho_grid = result["rho_grid"]
    for code, ratios in result["sampling_ratio"].items():
        assert ratios.shape == (len(rho_grid),)
        assert np.all((ratios > 0) & (ratios <= 1.0)), code
        # Insensitivity: the ratio varies by < 0.25 across the whole sweep.
        assert ratios.max() - ratios.min() < 0.25, (code, ratios)

    for code, accs in result["accuracy"].items():
        assert np.all((accs >= 0) & (accs <= 1.0)), code
        # Accuracy stays within a 12-point band over the sweep.
        assert accs.max() - accs.min() < 0.12, (code, accs)
