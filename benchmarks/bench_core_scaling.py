"""Microbenchmarks of the core algorithms (timed over multiple rounds).

These complement the table/figure regenerators: they time RD-GBG and GBABS
themselves (the paper claims linear-ish scaling, §IV-B3) and the sampling
baselines on a common workload.
"""

import numpy as np
import pytest

from repro.core import GBABS, RDGBG
from repro.datasets import load_dataset
from repro.sampling import make_sampler


@pytest.fixture(scope="module")
def workload():
    x, y = load_dataset("S10", size_factor=0.1, random_state=0)
    return x, y


def test_bench_rdgbg_generate(benchmark, workload):
    x, y = workload
    result = benchmark(lambda: RDGBG(rho=5, random_state=0).generate(x, y))
    assert result.ball_set.is_partition()


def test_bench_gbabs_fit_resample(benchmark, workload):
    x, y = workload
    xs, _ = benchmark(lambda: GBABS(rho=5, random_state=0).fit_resample(x, y))
    assert 0 < xs.shape[0] <= x.shape[0]


@pytest.mark.parametrize("method", ["ggbs", "tomek", "sm"])
def test_bench_baseline_samplers(benchmark, workload, method):
    x, y = workload
    sampler_kwargs = {"random_state": 0} if method != "tomek" else {}
    xs, _ = benchmark(
        lambda: make_sampler(method, **sampler_kwargs).fit_resample(x, y)
    )
    assert xs.shape[0] > 0


@pytest.mark.parametrize("factor", [0.025, 0.05, 0.1])
def test_bench_rdgbg_scaling(benchmark, factor):
    """RD-GBG runtime across dataset sizes (linearity check, §IV-B3)."""
    x, y = load_dataset("S10", size_factor=factor, random_state=0)
    result = benchmark(lambda: RDGBG(rho=5, random_state=0).generate(x, y))
    assert result.ball_set.coverage() > 0.8
