"""Microbenchmarks of the core algorithms (timed over multiple rounds).

These complement the table/figure regenerators: they time RD-GBG and GBABS
themselves (the paper claims linear-ish scaling, §IV-B3) and the sampling
baselines on a common workload.  Since the vectorised granulation engine
landed, RD-GBG is benchmarked on both backends so the legacy-vs-engine
speedup stays measurable from PR to PR.

Run as a script for the speedup report (written to
``benchmarks/output/core_scaling.txt``)::

    PYTHONPATH=src python benchmarks/bench_core_scaling.py
    PYTHONPATH=src python benchmarks/bench_core_scaling.py --factors 0.01 --rounds 1
"""

import argparse
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import GBABS, RDGBG
from repro.datasets import load_dataset
from repro.sampling import make_sampler


@pytest.fixture(scope="module")
def workload():
    x, y = load_dataset("S10", size_factor=0.1, random_state=0)
    return x, y


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_bench_rdgbg_generate(benchmark, workload, backend):
    x, y = workload
    result = benchmark(
        lambda: RDGBG(rho=5, random_state=0, backend=backend).generate(x, y)
    )
    assert result.ball_set.is_partition()


def test_bench_gbabs_fit_resample(benchmark, workload):
    x, y = workload
    xs, _ = benchmark(lambda: GBABS(rho=5, random_state=0).fit_resample(x, y))
    assert 0 < xs.shape[0] <= x.shape[0]


@pytest.mark.parametrize("method", ["ggbs", "tomek", "sm"])
def test_bench_baseline_samplers(benchmark, workload, method):
    x, y = workload
    sampler_kwargs = {"random_state": 0} if method != "tomek" else {}
    xs, _ = benchmark(
        lambda: make_sampler(method, **sampler_kwargs).fit_resample(x, y)
    )
    assert xs.shape[0] > 0


@pytest.mark.parametrize("factor", [0.025, 0.05, 0.1])
def test_bench_rdgbg_scaling(benchmark, factor):
    """RD-GBG runtime across dataset sizes (linearity check, §IV-B3)."""
    x, y = load_dataset("S10", size_factor=factor, random_state=0)
    result = benchmark(lambda: RDGBG(rho=5, random_state=0).generate(x, y))
    assert result.ball_set.coverage() > 0.8


def test_bench_engine_speedup_smoke(workload):
    """Engine must beat legacy on the shared workload (and stay bit-exact)."""
    x, y = workload
    timings = _time_backends(x, y, rounds=2)
    assert timings["parity"]
    assert timings["engine"] < timings["legacy"]


# ----------------------------------------------------------------------
# script mode: legacy-vs-engine speedup report
# ----------------------------------------------------------------------


def _time_backends(x, y, rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall time per backend plus a bit-parity check."""
    out: dict = {}
    results = {}
    for backend in ("legacy", "engine"):
        best = np.inf
        for _ in range(rounds):
            gen = RDGBG(rho=5, random_state=0, backend=backend)
            t0 = time.perf_counter()
            results[backend] = gen.generate(x, y)
            best = min(best, time.perf_counter() - t0)
        out[backend] = best
    a, b = results["legacy"].ball_set, results["engine"].ball_set
    out["parity"] = bool(
        np.array_equal(a.radii, b.radii)
        and np.array_equal(a.member_indices, b.member_indices)
        and np.array_equal(
            results["legacy"].noise_indices, results["engine"].noise_indices
        )
    )
    out["n_balls"] = len(a)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="RD-GBG backend speedup report")
    parser.add_argument(
        "--factors",
        type=float,
        nargs="+",
        default=[0.05, 0.1, 0.25],
        help="S10 size factors to benchmark (largest last)",
    )
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail when the largest workload's speedup drops below this",
    )
    args = parser.parse_args(argv)

    lines = [
        "RD-GBG legacy vs engine backend (best of "
        f"{args.rounds}, S10 surrogate, rho=5, seed=0)",
        f"{'n':>7s} {'balls':>6s} {'legacy [s]':>11s} {'engine [s]':>11s} "
        f"{'speedup':>8s} {'parity':>7s}",
    ]
    last_speedup = None
    for factor in args.factors:
        x, y = load_dataset("S10", size_factor=factor, random_state=0)
        t = _time_backends(x, y, rounds=args.rounds)
        last_speedup = t["legacy"] / t["engine"]
        lines.append(
            f"{x.shape[0]:7d} {t['n_balls']:6d} {t['legacy']:11.3f} "
            f"{t['engine']:11.3f} {last_speedup:7.2f}x {str(t['parity']):>7s}"
        )
        if not t["parity"]:
            lines.append("PARITY FAILURE: backends disagree — see engine tests")
            print("\n".join(lines))
            return 1

    report = "\n".join(lines)
    print(report)
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "core_scaling.txt").write_text(report + "\n")
    print(f"[report saved to {out_dir / 'core_scaling.txt'}]")

    if args.min_speedup is not None and last_speedup < args.min_speedup:
        print(
            f"FAIL: speedup {last_speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x on the largest workload"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
