"""Ablation A2 — RD-GBG's noise-detection rules under 20% label noise."""

import numpy as np
from conftest import run_once

from repro.experiments import ablations


def test_ablation_noise_detection(benchmark, cfg, save_report, jobs):
    result = run_once(
        benchmark, ablations.ablation_noise_detection, cfg, 0.2, n_jobs=jobs
    )
    save_report("ablation_noise_detection", ablations.format_ablation(result))

    rows = result["rows"]
    # Noise detection actually removes samples; the no-detect variant never
    # does.
    assert all(r["no_detect_noise_removed"] == 0 for r in rows)
    assert any(r["detect_noise_removed"] > 0 for r in rows)
    # Detection compresses more (it also prunes flipped-label boundaries).
    mean_detect = np.mean([r["detect_ratio"] for r in rows])
    mean_plain = np.mean([r["no_detect_ratio"] for r in rows])
    assert mean_detect <= mean_plain + 0.02
    # And is at least as accurate on average.
    acc_detect = np.mean([r["detect_accuracy"] for r in rows])
    acc_plain = np.mean([r["no_detect_accuracy"] for r in rows])
    assert acc_detect >= acc_plain - 0.01, (acc_detect, acc_plain)
