"""Table III — Wilcoxon signed-rank tests of GBABS-DT vs the other
pipelines (paired over datasets)."""

from conftest import run_once

from repro.experiments import tables


def test_table3_wilcoxon(benchmark, cfg, save_report, jobs):
    t2 = tables.table2(cfg, n_jobs=jobs)
    result = run_once(benchmark, tables.table3, cfg, t2)
    save_report("table3", tables.format_table3(result))

    comparisons = result["comparisons"]
    assert set(comparisons) == {"ggbs", "srs", "ori"}
    for name, comp in comparisons.items():
        assert 0.0 <= comp["p_value"] <= 1.0, name
        assert comp["method"] in ("exact", "normal")
