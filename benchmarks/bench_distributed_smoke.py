"""Distributed execution smoke: N workers, one store, serial parity.

The CI ``distributed-smoke`` job (and anyone verifying a multi-node
setup) runs this as a script: it plans a small Table-II grid into a
fresh store directory, launches real worker processes
(``python -m repro.experiments.worker``) that split the grid through the
claim/lease protocol, then asserts the assembled store is

* **complete and bit-identical** to a serial run of the same grid,
* **clean** — zero claim files, zero stale leases, zero ``.tmp`` spool
  files left behind, and
* **leak-free** — no shared-memory segments added to ``/dev/shm``.

::

    PYTHONPATH=src python benchmarks/bench_distributed_smoke.py --workers 2
    PYTHONPATH=src python benchmarks/bench_distributed_smoke.py \
        --workers 2 --backend objectstore   # fakes3:// conditional-put store

``--backend objectstore`` runs the identical fleet over the fake
object-store backend (conditional-put claims, metadata-timestamp leases)
instead of the filesystem — CI exercises both.  Pytest mode runs the
same checks at the default settings.

``--chaos`` (objectstore only) is the CI ``chaos-smoke`` gate: the fleet
runs under the :class:`~repro.experiments.dispatch.FleetSupervisor` with
an injected fault schedule (``REPRO_STORE_FAULTS`` — a timed store
brownout plus per-worker fail-first faults), and one worker is SIGKILLed
mid-grid on top.  The pass condition tightens to: bit-parity still
holds, the supervisor restarted the killed worker (``restarts >= 1``),
and **zero unexpected worker deaths** — every exit code is benign
(0/3), or the SIGKILL/SIGTERM the harness itself delivered.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import dispatch
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.resilience import FAULTS_ENV, FaultSchedule
from repro.experiments.store import CellStore, default_store_codec

OUTPUT_DIR = Path(__file__).parent / "output"

SMOKE = ExperimentConfig(
    name="dist-smoke",
    size_factor=0.05,
    datasets=("S2", "S5", "S6"),
    n_splits=2,
    n_repeats=2,
    n_estimators=3,
)


#: Lease TTL for the chaos fleet: short enough that claims orphaned by
#: the SIGKILL are reaped within the smoke's budget, long enough that a
#: brownout-stalled heartbeat does not lose a live lease.
CHAOS_TTL = 3.0


def _run_fleet(target, units, n_workers, jobs, timeout, extra_args=()):
    """Plain fleet: spawn, wait, return (wall_seconds, chaos_record)."""
    start = time.perf_counter()
    fleet = dispatch.spawn_workers(
        target, n_workers, jobs=jobs,
        stagger=max(1, len(units) // n_workers),
        extra_args=list(extra_args),
    )
    exit_codes = [p.wait(timeout=timeout) for p in fleet]
    wall = time.perf_counter() - start
    assert all(code == 0 for code in exit_codes), (
        f"worker exit codes: {exit_codes}"
    )
    return wall, {}


def _run_fleet_elastic(target, units, jobs, timeout, extra_args=()):
    """Elastic supervised fleet: start at one worker, let queue depth
    scale the fleet, and let lru work-stealing drain the tail.

    Pass conditions layered on top of parity: the supervisor provably
    scaled up at least once (the 12-cell grid is deep enough to pull in
    the whole allowed range), and every exit is benign — a finished
    worker (0/3) or a retirement/terminate SIGTERM the supervisor itself
    delivered.  Claims orphaned by a mid-compute retirement age out by
    the short lease TTL and are stolen by survivors — that is the
    "stragglers never serialise the tail" property under test.
    """
    def command_for(index: int) -> list[str]:
        return dispatch.worker_command(
            target, index, jobs=jobs, lease_ttl=CHAOS_TTL,
            claim_order="lru",
            extra_args=["--poll", "0.1", "--max-idle", "120",
                        *extra_args],
        )

    supervisor = dispatch.FleetSupervisor(
        [command_for(0)], max_restarts=2,
        command_factory=command_for,
        min_workers=1, max_workers=3, scale_threshold=2,
        log=lambda message: print(f"[elastic] {message}", flush=True),
    )
    store = CellStore(target, lease_ttl=CHAOS_TTL)
    start = time.perf_counter()
    supervisor.start()
    try:
        def fleet_dead() -> bool:
            supervisor.poll()
            return supervisor.fleet_dead()

        dispatch.wait_for_grid(
            store, units, poll=0.2, timeout=timeout,
            should_abort=fleet_dead,
            on_poll=lambda remaining: supervisor.autoscale(len(remaining)),
        )
    finally:
        supervisor.terminate()
    wall = time.perf_counter() - start

    summary = supervisor.summary()
    allowed = {0, 3, -signal.SIGTERM}
    unexpected = [
        code for entry in summary for code in entry["exit_codes"]
        if code not in allowed
    ]
    assert not unexpected, f"unexpected worker deaths: {summary}"
    assert supervisor.scale_ups >= 1, f"fleet never scaled up: {summary}"
    return wall, {
        "elastic": True,
        "scale_ups": supervisor.scale_ups,
        "scale_downs": supervisor.scale_downs,
        "worker_exit_codes": [entry["exit_codes"] for entry in summary],
    }


def _run_fleet_chaos(target, units, n_workers, jobs, timeout, store_root):
    """Supervised fleet under injected faults plus one SIGKILL.

    The schedule browns out the store for a window the whole fleet is
    guaranteed to be alive in, and fails each worker's first store
    operations (process-local counters) so every worker provably
    exercises its retry path.  One worker is SIGKILLed as soon as a
    claim proves the grid is underway; the supervisor must restart it.
    """
    schedule = FaultSchedule(
        fail_first={"*": 3},
        brownouts=[(time.time() + 1.0, time.time() + 4.0)],
    )
    faults = schedule.dump(Path(store_root) / "faults.json")
    stagger = max(1, len(units) // n_workers)
    commands = [
        dispatch.worker_command(
            target, index, jobs=jobs, lease_ttl=CHAOS_TTL, stagger=stagger,
            extra_args=["--poll", "0.1", "--outage-grace", "60",
                        "--max-idle", "120"],
        )
        for index in range(max(1, n_workers))
    ]
    supervisor = dispatch.FleetSupervisor(
        commands, max_restarts=2, env={FAULTS_ENV: str(faults)},
        log=lambda message: print(f"[chaos] {message}", flush=True),
    )
    store = CellStore(target, lease_ttl=CHAOS_TTL)
    start = time.perf_counter()
    supervisor.start()
    try:
        deadline = time.monotonic() + timeout
        while not store.claim_names():
            supervisor.poll()
            assert not supervisor.fleet_dead(), "fleet died before claiming"
            assert time.monotonic() < deadline, "no worker ever claimed"
            time.sleep(0.05)
        victim = supervisor.processes[0]
        print(f"[chaos] SIGKILL worker pid {victim.pid}", flush=True)
        os.kill(victim.pid, signal.SIGKILL)
        # Drive the supervisor until the restart actually happens — a
        # tiny grid can otherwise finish inside the crash-loop backoff
        # window, and terminate() would cancel the pending respawn.
        restart_deadline = time.monotonic() + 60.0
        while supervisor.total_restarts() == 0:
            assert time.monotonic() < restart_deadline, (
                "SIGKILLed worker was never restarted"
            )
            supervisor.poll()
            time.sleep(0.05)

        def fleet_dead() -> bool:
            supervisor.poll()
            return supervisor.fleet_dead()

        dispatch.wait_for_grid(
            store, units, poll=0.2, timeout=timeout, should_abort=fleet_dead
        )
    finally:
        supervisor.terminate()
    wall = time.perf_counter() - start

    summary = supervisor.summary()
    restarts = supervisor.total_restarts()
    exit_codes = [entry["exit_codes"] for entry in summary]
    # Zero *unexpected* deaths: benign exits (0 done, 3 idle) plus the
    # signals this harness itself delivered are the only codes allowed.
    allowed = {0, 3, -signal.SIGKILL, -signal.SIGTERM}
    unexpected = [
        code for codes in exit_codes for code in codes if code not in allowed
    ]
    assert not unexpected, f"unexpected worker deaths: {summary}"
    assert not any(entry["gave_up"] for entry in summary), (
        f"supervisor abandoned a slot: {summary}"
    )
    assert restarts >= 1, f"SIGKILLed worker was never restarted: {summary}"
    return wall, {
        "chaos": True,
        "supervisor_restarts": restarts,
        "worker_exit_codes": exit_codes,
    }


def run_smoke(n_workers: int = 2, jobs: int = 1, timeout: float = 600.0,
              backend: str = "file", chaos: bool = False,
              elastic: bool = False, codec: str | None = None) -> dict:
    """One full distributed pass in a temp store; returns the record.

    ``backend`` is ``file`` (the historical directory store) or
    ``objectstore`` (a ``fakes3://`` bucket — the claim/lease protocol on
    conditional-put semantics); ``chaos`` layers the supervised
    fault-injection scenario on top (objectstore only — the fault seam
    lives in the fake client); ``elastic`` runs a queue-depth-autoscaled
    supervised fleet from a single starting worker instead of a fixed
    one.  ``codec`` pins the fleet's payload compression (default: the
    store's own default, zlib) — the record carries the stored-vs-raw
    byte accounting either way, and any compressing codec must land at
    ≤ 60% of the raw payload bytes.  Raises ``AssertionError`` on any
    contract violation (parity, leftover claims, leaked shared memory).
    """
    if chaos and backend != "objectstore":
        raise ValueError("--chaos needs --backend objectstore "
                         "(fault injection is an object-store seam)")
    if chaos and elastic:
        raise ValueError("--chaos and --elastic are separate scenarios")
    shm_before = set(glob.glob("/dev/shm/psm_*"))
    units = dispatch.plan_grid(SMOKE, ["table2"])
    serial = ExperimentExecutor(SMOKE, n_jobs=1, store=CellStore(None)).run(
        [u.spec for u in units]
    )
    codec_args = ["--store-codec", codec] if codec else []
    with tempfile.TemporaryDirectory(prefix="dist-smoke-") as store_root:
        if backend == "objectstore":
            target = f"fakes3://{Path(store_root) / 'bucket'}"
        elif backend == "file":
            target = store_root
        else:
            raise ValueError(f"unknown backend {backend!r}")
        dispatch.write_manifest(target, SMOKE, units)
        if chaos:
            wall, extra = _run_fleet_chaos(
                target, units, n_workers, jobs, timeout, store_root
            )
        elif elastic:
            wall, extra = _run_fleet_elastic(
                target, units, jobs, timeout, extra_args=codec_args
            )
        else:
            wall, extra = _run_fleet(
                target, units, n_workers, jobs, timeout,
                extra_args=codec_args,
            )

        store = CellStore(target, lease_ttl=CHAOS_TTL) if (chaos or elastic) \
            else CellStore(target)
        for unit, reference in zip(units, serial):
            loaded = store.get("cell", unit.key)
            assert loaded is not None, f"missing cell {unit.key}"
            assert reference.exactly_equal(loaded), (
                f"distributed result differs from serial: {unit.key}"
            )
        if chaos or elastic:
            # Claims/spools orphaned by the SIGKILL (chaos) or by a
            # mid-compute retirement SIGTERM (elastic) are not leaks —
            # they age out by TTL.  Wait them out before holding the
            # clean-store line.
            reap_deadline = time.monotonic() + 4 * CHAOS_TTL
            while store.claim_names() or store.backend.stray_spools():
                assert time.monotonic() < reap_deadline, (
                    f"orphans never aged out: claims="
                    f"{store.claim_names()} "
                    f"spools={store.backend.stray_spools()}"
                )
                time.sleep(0.2)
                store.reap_stale()
        leftover_claims = store.claim_names()
        stale = store.stale_claim_files()
        tmp_files = store.backend.stray_spools()
        assert not leftover_claims, f"leftover claims: {leftover_claims}"
        assert not stale, f"stale claims: {stale}"
        assert not tmp_files, f"torn spool files: {tmp_files}"

        codec_report = store.codec_report()
        effective_codec = (codec or default_store_codec()).lower()
        if effective_codec != "none":
            assert (codec_report["stored_bytes"]
                    <= 0.6 * codec_report["raw_bytes"]), (
                f"compressed store too large: {codec_report['stored_bytes']} "
                f"stored vs {codec_report['raw_bytes']} raw bytes"
            )

    leaked = set(glob.glob("/dev/shm/psm_*")) - shm_before
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    return {
        "bench": "distributed_smoke",
        "grid": "table2",
        "backend": backend,
        "n_cells": len(units),
        "n_workers": n_workers,
        "jobs_per_worker": jobs,
        "wall_seconds": wall,
        "bit_identical": True,
        "leaked_segments": 0,
        "stale_claims": 0,
        "store_codec": effective_codec,
        "payload_bytes_stored": codec_report["stored_bytes"],
        "payload_bytes_raw": codec_report["raw_bytes"],
        "payload_entries_by_codec": codec_report["by_codec"],
        **extra,
    }


# ----------------------------------------------------------------------
# pytest smoke
# ----------------------------------------------------------------------


def test_two_workers_share_one_store_bit_identically():
    record = run_smoke(n_workers=2)
    assert record["bit_identical"]
    assert record["n_cells"] == len(SMOKE.datasets) * 4


def test_two_workers_share_one_object_store_bit_identically():
    record = run_smoke(n_workers=2, backend="objectstore")
    assert record["bit_identical"]
    assert record["backend"] == "objectstore"
    # The default codec compresses: the record proves the footprint win.
    assert record["payload_bytes_stored"] <= 0.6 * record["payload_bytes_raw"]


def test_elastic_fleet_scales_up_and_converges_bit_identically():
    record = run_smoke(backend="objectstore", elastic=True)
    assert record["bit_identical"]
    assert record["scale_ups"] >= 1
    assert record["stale_claims"] == 0


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-worker distributed store smoke (parity + leaks)"
    )
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fold-pool processes inside each worker")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--backend", choices=("file", "objectstore"),
                        default="file",
                        help="store backend the fleet shares (objectstore "
                             "= fakes3:// conditional-put bucket)")
    parser.add_argument("--chaos", action="store_true",
                        help="supervised fleet under an injected fault "
                             "schedule (store brownout + fail-first) plus "
                             "one SIGKILL; gates on parity, a successful "
                             "restart and zero unexpected worker deaths "
                             "(objectstore only)")
    parser.add_argument("--elastic", action="store_true",
                        help="autoscaled supervised fleet: start 1 worker, "
                             "gate on an observed scale-up, lru work "
                             "stealing, parity and a clean store")
    parser.add_argument("--store-codec", default=None, metavar="CODEC",
                        help="payload compression for the fleet "
                             "(zlib | lzma | none; default zlib)")
    args = parser.parse_args(argv)

    record = run_smoke(
        n_workers=args.workers, jobs=args.jobs, timeout=args.timeout,
        backend=args.backend, chaos=args.chaos, elastic=args.elastic,
        codec=args.store_codec,
    )
    survived = ""
    if args.chaos:
        survived = (
            f", survived brownout + SIGKILL "
            f"({record['supervisor_restarts']} restart(s))"
        )
    elif args.elastic:
        survived = (
            f", elastic fleet scaled up {record['scale_ups']}x / "
            f"down {record['scale_downs']}x"
        )
    ratio = (record["payload_bytes_stored"]
             / max(1, record["payload_bytes_raw"]))
    print(
        f"distributed smoke OK [{record['backend']}]: {record['n_cells']} "
        f"cells over {record['n_workers']} workers in "
        f"{record['wall_seconds']:.1f}s, bit-identical to serial, "
        f"no leaked segments, no stale claims, "
        f"{record['store_codec']} payloads at {ratio:.0%} of raw"
        f"{survived}"
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    suffix = "_chaos" if args.chaos else "_elastic" if args.elastic else ""
    if args.store_codec:
        # An explicit codec is its own CI scenario; keep its record
        # distinct from the default-codec run's.
        suffix += f"_{args.store_codec}"
    record_path = (
        OUTPUT_DIR / f"distributed_smoke_{record['backend']}{suffix}.json"
    )
    record_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[record saved to {record_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
