"""Distributed execution smoke: N workers, one store, serial parity.

The CI ``distributed-smoke`` job (and anyone verifying a multi-node
setup) runs this as a script: it plans a small Table-II grid into a
fresh store directory, launches real worker processes
(``python -m repro.experiments.worker``) that split the grid through the
claim/lease protocol, then asserts the assembled store is

* **complete and bit-identical** to a serial run of the same grid,
* **clean** — zero claim files, zero stale leases, zero ``.tmp`` spool
  files left behind, and
* **leak-free** — no shared-memory segments added to ``/dev/shm``.

::

    PYTHONPATH=src python benchmarks/bench_distributed_smoke.py --workers 2
    PYTHONPATH=src python benchmarks/bench_distributed_smoke.py \
        --workers 2 --backend objectstore   # fakes3:// conditional-put store

``--backend objectstore`` runs the identical fleet over the fake
object-store backend (conditional-put claims, metadata-timestamp leases)
instead of the filesystem — CI exercises both.  Pytest mode runs the
same checks at the default settings.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import dispatch
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import CellStore

OUTPUT_DIR = Path(__file__).parent / "output"

SMOKE = ExperimentConfig(
    name="dist-smoke",
    size_factor=0.05,
    datasets=("S2", "S5", "S6"),
    n_splits=2,
    n_repeats=2,
    n_estimators=3,
)


def run_smoke(n_workers: int = 2, jobs: int = 1, timeout: float = 600.0,
              backend: str = "file") -> dict:
    """One full distributed pass in a temp store; returns the record.

    ``backend`` is ``file`` (the historical directory store) or
    ``objectstore`` (a ``fakes3://`` bucket — the claim/lease protocol on
    conditional-put semantics).  Raises ``AssertionError`` on any
    contract violation (parity, leftover claims, leaked shared memory).
    """
    shm_before = set(glob.glob("/dev/shm/psm_*"))
    units = dispatch.plan_grid(SMOKE, ["table2"])
    serial = ExperimentExecutor(SMOKE, n_jobs=1, store=CellStore(None)).run(
        [u.spec for u in units]
    )
    with tempfile.TemporaryDirectory(prefix="dist-smoke-") as store_root:
        if backend == "objectstore":
            target = f"fakes3://{Path(store_root) / 'bucket'}"
        elif backend == "file":
            target = store_root
        else:
            raise ValueError(f"unknown backend {backend!r}")
        dispatch.write_manifest(target, SMOKE, units)
        start = time.perf_counter()
        fleet = dispatch.spawn_workers(
            target, n_workers, jobs=jobs,
            stagger=max(1, len(units) // n_workers),
        )
        exit_codes = [p.wait(timeout=timeout) for p in fleet]
        wall = time.perf_counter() - start
        assert all(code == 0 for code in exit_codes), (
            f"worker exit codes: {exit_codes}"
        )

        store = CellStore(target)
        for unit, reference in zip(units, serial):
            loaded = store.get("cell", unit.key)
            assert loaded is not None, f"missing cell {unit.key}"
            assert reference.exactly_equal(loaded), (
                f"distributed result differs from serial: {unit.key}"
            )
        leftover_claims = store.claim_names()
        stale = store.stale_claim_files()
        tmp_files = store.backend.stray_spools()
        assert not leftover_claims, f"leftover claims: {leftover_claims}"
        assert not stale, f"stale claims: {stale}"
        assert not tmp_files, f"torn spool files: {tmp_files}"

    leaked = set(glob.glob("/dev/shm/psm_*")) - shm_before
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    return {
        "bench": "distributed_smoke",
        "grid": "table2",
        "backend": backend,
        "n_cells": len(units),
        "n_workers": n_workers,
        "jobs_per_worker": jobs,
        "wall_seconds": wall,
        "bit_identical": True,
        "leaked_segments": 0,
        "stale_claims": 0,
    }


# ----------------------------------------------------------------------
# pytest smoke
# ----------------------------------------------------------------------


def test_two_workers_share_one_store_bit_identically():
    record = run_smoke(n_workers=2)
    assert record["bit_identical"]
    assert record["n_cells"] == len(SMOKE.datasets) * 4


def test_two_workers_share_one_object_store_bit_identically():
    record = run_smoke(n_workers=2, backend="objectstore")
    assert record["bit_identical"]
    assert record["backend"] == "objectstore"


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-worker distributed store smoke (parity + leaks)"
    )
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fold-pool processes inside each worker")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--backend", choices=("file", "objectstore"),
                        default="file",
                        help="store backend the fleet shares (objectstore "
                             "= fakes3:// conditional-put bucket)")
    args = parser.parse_args(argv)

    record = run_smoke(
        n_workers=args.workers, jobs=args.jobs, timeout=args.timeout,
        backend=args.backend,
    )
    print(
        f"distributed smoke OK [{record['backend']}]: {record['n_cells']} "
        f"cells over {record['n_workers']} workers in "
        f"{record['wall_seconds']:.1f}s, bit-identical to serial, "
        "no leaked segments, no stale claims"
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    record_path = OUTPUT_DIR / f"distributed_smoke_{record['backend']}.json"
    record_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[record saved to {record_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
