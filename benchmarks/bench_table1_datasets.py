"""Table I — dataset profiles of the 13 surrogates."""

from conftest import run_once

from repro.experiments import tables


def test_table1_dataset_profiles(benchmark, cfg, save_report):
    result = run_once(benchmark, tables.table1, cfg)
    save_report("table1", tables.format_table1(result))

    rows = {r["code"]: r for r in result["rows"]}
    assert len(rows) == 13
    # Profile invariants from Table I: feature/class counts are exact,
    # the imbalance ratio tracks the target.
    assert rows["S13"]["features"] == 256 and rows["S13"]["classes"] == 10
    assert rows["S5"]["features"] == 2 and rows["S5"]["classes"] == 2
    for code, row in rows.items():
        assert row["classes"] >= 2
        if row["target_ir"] < 20:
            assert abs(row["ir"] - row["target_ir"]) / row["target_ir"] < 0.25, code
