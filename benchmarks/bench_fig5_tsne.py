"""Fig. 5 — t-SNE visualisation of the S5 / S1 / S3 / S6 surrogates."""

import numpy as np
from conftest import run_once

from repro.experiments import figures


def test_fig5_tsne(benchmark, cfg, save_report):
    result = run_once(benchmark, figures.fig5, cfg, 200, 250)
    save_report("fig5", figures.format_fig5(result))

    for code, data in result["embeddings"].items():
        emb = data["embedding"]
        assert emb.shape[1] == 2
        assert np.all(np.isfinite(emb)), code
        # The embedding must actually spread the points (not collapse).
        assert emb.std(axis=0).min() > 1e-3, code
