"""Ablation A4 — random-projection borderline scan (future-work extension).

The paper's conclusion flags the per-axis scan as the high-dimensional
bottleneck.  This bench compares the exact axis scan against the
``projection_dims=k`` variant on the high-dimensional surrogates: scan work
drops from p to k directions while downstream DT accuracy stays close.
"""

import time

import numpy as np
from conftest import run_once

from repro.classifiers import DecisionTreeClassifier
from repro.core import GBABS
from repro.evaluation import evaluate_pipeline
from repro.experiments.runner import dataset_with_noise


def _compare(cfg, code: str, k: int) -> dict:
    x, y = dataset_with_noise(code, cfg, 0.0)
    row = {"dataset": code, "p": x.shape[1], "k": k}
    for label, dims in (("axis", None), ("projected", k)):
        sampler = GBABS(rho=cfg.rho, random_state=cfg.random_state,
                        projection_dims=dims)
        start = time.perf_counter()
        sampler.fit_resample(x, y)
        row[f"{label}_seconds"] = time.perf_counter() - start
        row[f"{label}_ratio"] = sampler.report_.sampling_ratio
        result = evaluate_pipeline(
            x, y,
            classifier_factory=lambda s: DecisionTreeClassifier(),
            sampler_factory=lambda s, d=dims: GBABS(
                rho=cfg.rho, random_state=s, projection_dims=d
            ),
            n_splits=cfg.n_splits, n_repeats=cfg.n_repeats,
            random_state=cfg.random_state,
        )
        row[f"{label}_accuracy"] = result.means["accuracy"]
    return row


def test_ablation_projection_scan(benchmark, cfg, save_report):
    # The two high-dimensional Table I profiles (Gas Sensor 128-D, USPS
    # 256-D), scanned with k = 16 random directions.
    codes = ("S12", "S13")
    rows = run_once(
        benchmark, lambda: [_compare(cfg, code, k=16) for code in codes]
    )

    lines = ["Ablation A4 — projection scan (k=16) vs axis scan"]
    header = ("dataset  p    axis_ratio proj_ratio axis_acc proj_acc "
              "axis_s  proj_s")
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row['dataset']:>7}  {row['p']:<4} {row['axis_ratio']:.3f}      "
            f"{row['projected_ratio']:.3f}      {row['axis_accuracy']:.3f}    "
            f"{row['projected_accuracy']:.3f}    "
            f"{row['axis_seconds']:.2f}    {row['projected_seconds']:.2f}"
        )
    save_report("ablation_projection", "\n".join(lines))

    for row in rows:
        # The projected scan compresses at least as hard (it scans fewer
        # directions) and loses only a bounded amount of accuracy.
        assert row["projected_ratio"] <= row["axis_ratio"] + 1e-9
        assert row["projected_accuracy"] >= row["axis_accuracy"] - 0.06, row
