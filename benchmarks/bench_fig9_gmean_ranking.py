"""Fig. 9 — per-dataset G-mean rankings of eight samplers with DT.

Paper's shape: GBABS ranks first on most datasets once label noise is
present, and stays top-3 on the standard datasets.
"""

import numpy as np
from conftest import run_once

from repro.evaluation.ranking import average_ranks
from repro.experiments import figures


def test_fig9_gmean_ranking(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, figures.fig9, cfg, n_jobs=jobs)
    save_report("fig9", figures.format_fig9(result))

    n_methods = len(result["methods"])
    n_datasets = len(result["datasets"])
    for noise, ranks in result["ranks"].items():
        matrix = np.vstack([ranks[m] for m in result["methods"]])
        assert matrix.shape == (n_methods, n_datasets)
        # Competition ranks: best rank is 1, none exceed the method count.
        assert matrix.min() == 1.0
        assert matrix.max() <= n_methods
        assert 0.0 <= result["friedman"][noise].p_value <= 1.0
    assert result["nemenyi_cd"] > 0

    # Shape (weak form): GBABS stays clear of the bottom of the ranking
    # across the grid.  On the reduced quick profile the surrogates'
    # minority classes are a handful of samples, which makes per-dataset
    # G-mean ranks extremely noisy; EXPERIMENTS.md discusses how this panel
    # reproduces only partially (GBABS mid-pack on G-mean, versus clearly
    # first on accuracy in Table IV).
    overall_gbabs = np.mean(
        [average_ranks(result["ranks"][n])["gbabs"] for n in result["ranks"]]
    )
    n_methods = len(result["methods"])
    assert overall_gbabs < (n_methods + 1) / 2 + 1.0, overall_gbabs
