"""Ablation A1 — the non-overlap (conflict radius) constraint of RD-GBG."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_overlap(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, ablations.ablation_overlap, cfg, n_jobs=jobs)
    save_report("ablation_overlap", ablations.format_ablation(result))

    for row in result["rows"]:
        # With the constraint: certified overlap-free (up to float noise).
        assert row["no_overlap_max_overlap"] <= 1e-9, row["dataset"]
        # Without it: overlap genuinely appears on at least realistic data;
        # we assert the constraint is never *harmful* to the geometry.
        assert row["overlap_allowed_max_overlap"] >= row["no_overlap_max_overlap"]
