"""Table II — testing accuracy of DT under GBABS / GGBS / SRS / none.

Paper's shape: GBABS-DT has the best average accuracy and wins on most
datasets; SRS-DT trails the raw DT.
"""

import numpy as np
from conftest import run_once

from repro.experiments import tables


def test_table2_dt_accuracy(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, tables.table2, cfg, n_jobs=jobs)
    save_report("table2", tables.format_table2(result))

    acc = result["accuracy"]
    # Every pipeline produces sane accuracies.
    for method, values in acc.items():
        assert np.all((values >= 0.0) & (values <= 1.0)), method
    # Shape check (soft): GBABS average is competitive with the strongest
    # baseline — within 3 accuracy points of the best average.
    best = max(result["average"].values())
    assert result["average"]["gbabs"] >= best - 0.03
