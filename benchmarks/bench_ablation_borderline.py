"""Ablation A3 — borderline-only sampling vs sampling every ball."""

import numpy as np
from conftest import run_once

from repro.experiments import ablations


def test_ablation_borderline(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, ablations.ablation_borderline, cfg, n_jobs=jobs)
    save_report("ablation_borderline", ablations.format_ablation(result))

    rows = result["rows"]
    # Borderline-only selection never keeps more than the all-balls variant.
    for row in rows:
        assert row["borderline_ratio"] <= row["all_balls_ratio"] + 1e-9, row

    # Accuracy is preserved within a small margin despite the compression.
    acc_border = np.mean([r["borderline_accuracy"] for r in rows])
    acc_all = np.mean([r["all_balls_accuracy"] for r in rows])
    assert acc_border >= acc_all - 0.05, (acc_border, acc_all)
