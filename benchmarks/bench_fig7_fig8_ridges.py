"""Figs. 7–8 — accuracy distributions (ridge plots) for XGBoost at 10/30%
noise and RF at 20/40% noise."""

import numpy as np
from conftest import run_once

from repro.experiments import figures, tables


def test_fig7_fig8_ridges(benchmark, cfg, save_report, jobs):
    t4 = tables.table4(cfg, n_jobs=jobs)
    result = run_once(benchmark, figures.fig7_fig8, cfg, t4)
    save_report("fig7_fig8", figures.format_fig7_fig8(result))

    panels = result["panels"]
    assert len(panels) == 4
    n_datasets = len(result["datasets"])
    for key, series in panels.items():
        for method, values in series.items():
            assert values.shape == (n_datasets,), (key, method)
            assert np.all((values >= 0.0) & (values <= 1.0))

    # Shape: GBABS's distribution sits at, or within statistical noise of,
    # the rightmost position in every panel, and strictly wins at least one.
    # The 2-point tolerance absorbs fold variance on the reduced quick
    # profile; the strict paper claim is recovered on the full profile.
    wins = 0
    for key, series in panels.items():
        means = {m: float(v.mean()) for m, v in series.items()}
        assert means["gbabs"] >= max(means.values()) - 0.02, (key, means)
        wins += means["gbabs"] == max(means.values())
    assert wins >= 1
