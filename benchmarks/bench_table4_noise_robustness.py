"""Table IV — average accuracy across datasets for five classifiers under
class noise of 5–40%.

Paper's shape: the GBABS-based pipeline beats GGBS / SRS / raw for every
classifier, with the margin growing as noise increases.
"""

import numpy as np
from conftest import run_once

from repro.experiments import tables


def test_table4_noise_robustness(benchmark, cfg, save_report, jobs):
    result = run_once(benchmark, tables.table4, cfg, n_jobs=jobs)
    save_report("table4", tables.format_table4(result))

    mean_acc = result["mean_accuracy"]
    noise = result["noise_ratios"]
    for clf in result["classifiers"]:
        for method in result["methods"]:
            values = np.asarray(mean_acc[(clf, method)])
            assert values.shape == (len(noise),)
            assert np.all((values >= 0.0) & (values <= 1.0))
            # Accuracy must broadly degrade with noise (first vs last).
            assert values[0] > values[-1], (clf, method)

    # Headline shape: averaged over classifiers AND the noisier half of the
    # grid (>= 20%), GBABS is the most robust pipeline.
    hi_idx = [i for i, n in enumerate(noise) if n >= 0.2]
    robust = {
        m: np.mean(
            [mean_acc[(c, m)][i] for c in result["classifiers"] for i in hi_idx]
        )
        for m in result["methods"]
    }
    assert robust["gbabs"] == max(robust.values()), robust
