"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this file lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` code path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
