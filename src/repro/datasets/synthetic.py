"""Synthetic dataset geometries used to build the Table I surrogates.

The offline environment cannot download the paper's UCI / KEEL / Kaggle
datasets, so each of the 13 benchmark datasets is replaced by a synthetic
surrogate with matching size, dimensionality, class count and imbalance
ratio (see DESIGN.md §1.3).  This module provides the geometric building
blocks; :mod:`repro.datasets.registry` wires them to the dataset profiles.

All generators take an explicit ``numpy.random.Generator`` and are fully
deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "class_sizes_from_weights",
    "gaussian_mixture",
    "banana",
    "concentric_rings",
    "grid_categorical",
    "shuffled",
]


def class_sizes_from_weights(
    n_samples: int, weights: np.ndarray | list[float]
) -> np.ndarray:
    """Integer class sizes summing exactly to ``n_samples``.

    Fractional parts are resolved largest-remainder-first so the realised
    imbalance ratio tracks the requested weights as closely as possible,
    and every class gets at least one sample.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if (weights <= 0).any():
        raise ValueError("weights must be positive")
    weights = weights / weights.sum()
    raw = weights * n_samples
    sizes = np.floor(raw).astype(np.intp)
    sizes = np.maximum(sizes, 1)
    deficit = n_samples - int(sizes.sum())
    if deficit > 0:
        order = np.argsort(-(raw - np.floor(raw)), kind="stable")
        for i in range(deficit):
            sizes[order[i % sizes.size]] += 1
    elif deficit < 0:
        order = np.argsort(raw - np.floor(raw), kind="stable")
        i = 0
        while deficit < 0:
            j = order[i % sizes.size]
            if sizes[j] > 1:
                sizes[j] -= 1
                deficit += 1
            i += 1
    return sizes


def gaussian_mixture(
    n_samples: int,
    n_features: int,
    weights: np.ndarray | list[float],
    rng: np.random.Generator,
    class_sep: float = 2.0,
    cluster_std: float = 1.0,
    clusters_per_class: int = 1,
    informative_fraction: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian mixture classification data with controllable overlap.

    Class centres are drawn on a hypersphere of radius ``class_sep`` in the
    informative subspace; the remaining features are pure noise, which is
    how the high-dimensional surrogates (coil2000, Gas Sensor, USPS) emulate
    their redundant-feature structure.

    Parameters
    ----------
    n_samples, n_features:
        Output shape.
    weights:
        Relative class frequencies (defines the imbalance ratio).
    rng:
        Random generator.
    class_sep:
        Radius of the centre sphere; larger = cleaner boundaries.
    cluster_std:
        Isotropic standard deviation of each cluster.
    clusters_per_class:
        Multi-modal classes (>1 makes boundaries non-convex).
    informative_fraction:
        Fraction of features that carry class signal.
    """
    sizes = class_sizes_from_weights(n_samples, weights)
    n_classes = sizes.size
    n_informative = max(2, int(round(informative_fraction * n_features)))
    n_informative = min(n_informative, n_features)

    xs = []
    ys = []
    for cls, size in enumerate(sizes):
        per_cluster = class_sizes_from_weights(
            int(size), np.ones(clusters_per_class)
        )
        for c_size in per_cluster:
            direction = rng.normal(size=n_informative)
            direction /= np.linalg.norm(direction) + 1e-12
            center = direction * class_sep * (1.0 + 0.15 * rng.normal())
            block = rng.normal(
                loc=0.0, scale=cluster_std, size=(int(c_size), n_features)
            )
            block[:, :n_informative] += center
            xs.append(block)
            ys.append(np.full(int(c_size), cls, dtype=np.intp))
    return shuffled(np.vstack(xs), np.concatenate(ys), rng)


def banana(
    n_samples: int,
    weights: np.ndarray | list[float],
    rng: np.random.Generator,
    noise: float = 0.18,
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaved crescents in 2-D — the classic "banana" shape (S5)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size != 2:
        raise ValueError("banana is a binary dataset")
    sizes = class_sizes_from_weights(n_samples, weights)

    t0 = rng.uniform(0.0, np.pi, int(sizes[0]))
    x0 = np.column_stack([np.cos(t0), np.sin(t0)])
    t1 = rng.uniform(0.0, np.pi, int(sizes[1]))
    x1 = np.column_stack([1.0 - np.cos(t1), 0.5 - np.sin(t1)])

    x = np.vstack([x0, x1]) + rng.normal(scale=noise, size=(n_samples, 2))
    y = np.concatenate(
        [np.zeros(int(sizes[0]), dtype=np.intp), np.ones(int(sizes[1]), dtype=np.intp)]
    )
    return shuffled(x, y, rng)


def concentric_rings(
    n_samples: int,
    weights: np.ndarray | list[float],
    rng: np.random.Generator,
    n_features: int = 2,
    ring_gap: float = 1.5,
    noise: float = 0.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Classes as concentric hyperspherical shells (non-linear boundaries)."""
    sizes = class_sizes_from_weights(n_samples, weights)
    xs = []
    ys = []
    for cls, size in enumerate(sizes):
        direction = rng.normal(size=(int(size), n_features))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True) + 1e-12
        radius = (cls + 1) * ring_gap + rng.normal(scale=noise, size=(int(size), 1))
        xs.append(direction * radius)
        ys.append(np.full(int(size), cls, dtype=np.intp))
    return shuffled(np.vstack(xs), np.concatenate(ys), rng)


def grid_categorical(
    n_samples: int,
    n_features: int,
    weights: np.ndarray | list[float],
    rng: np.random.Generator,
    n_levels: int = 4,
    rule_noise: float = 0.35,
) -> tuple[np.ndarray, np.ndarray]:
    """Low-cardinality integer features with a noisy scoring rule (S3-like).

    Features take values ``0..n_levels-1``; a random linear scoring rule
    plus Gaussian noise is quantile-split into classes of the requested
    sizes.  With few levels and a noisy rule, samples of different classes
    share identical feature cells — reproducing the heavily overlapping
    class structure the paper observes for Car Evaluation (Fig. 5(c)).
    """
    sizes = class_sizes_from_weights(n_samples, weights)
    x = rng.integers(0, n_levels, size=(n_samples, n_features)).astype(np.float64)
    rule = rng.normal(size=n_features)
    score = x @ rule + rng.normal(scale=rule_noise * np.abs(rule).sum(), size=n_samples)

    order = np.argsort(score, kind="stable")
    y = np.empty(n_samples, dtype=np.intp)
    # Largest class occupies the lowest-score band, etc.; band order is
    # randomised so the label-score relationship is not monotone in cls id.
    band_order = rng.permutation(sizes.size)
    start = 0
    for cls in band_order:
        stop = start + int(sizes[cls])
        y[order[start:stop]] = cls
        start = stop
    return shuffled(x, y, rng)


def shuffled(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Consistent random permutation of a dataset."""
    perm = rng.permutation(x.shape[0])
    return x[perm], y[perm]
