"""Registry of the 13 benchmark dataset surrogates (Table I).

Each entry mirrors a row of the paper's Table I: same sample count, feature
count, class count and imbalance ratio (IR), with a synthetic geometry
chosen to match the paper's qualitative description of the dataset (see
DESIGN.md §1.3 and :mod:`repro.datasets.synthetic`).

The registry supports *size scaling*: ``load_dataset("S8",
size_factor=0.1)`` builds a 10% surrogate with identical geometry, which is
how the benchmark suite keeps full-grid runs laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datasets import synthetic

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_CODES",
    "get_spec",
    "load_dataset",
    "dataset_table",
    "imbalance_ratio",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Profile of one benchmark dataset surrogate.

    Attributes
    ----------
    code:
        Paper alias (``S1`` … ``S13``).
    name:
        Original dataset name from Table I.
    n_samples, n_features, n_classes, ir:
        The Table I profile being matched.
    builder:
        ``builder(n_samples, rng) -> (x, y)``.
    categorical_features:
        Column indices treated as categorical (for SMOTENC); empty tuple
        for purely continuous surrogates.
    source:
        Repository the original dataset came from.
    """

    code: str
    name: str
    n_samples: int
    n_features: int
    n_classes: int
    ir: float
    builder: Callable[[int, np.random.Generator], tuple[np.ndarray, np.ndarray]]
    categorical_features: tuple[int, ...] = field(default=())
    source: str = "UCI"


def _binary_weights(ir: float) -> np.ndarray:
    """Two-class weights realising majority/minority ratio ``ir``."""
    return np.array([ir, 1.0]) / (ir + 1.0)


def _geometric_weights(n_classes: int, ir: float) -> np.ndarray:
    """Multi-class weights with max/min ratio exactly ``ir``.

    Class frequencies interpolate geometrically between the majority and
    minority class, a reasonable stand-in for the long-tailed distributions
    of page-blocks / shuttle-like datasets.
    """
    if n_classes == 2:
        return _binary_weights(ir)
    exponents = 1.0 - np.arange(n_classes) / (n_classes - 1)
    weights = ir**exponents
    return weights / weights.sum()


def _quantize_columns(
    x: np.ndarray, columns: tuple[int, ...], n_levels: int, rng: np.random.Generator
) -> np.ndarray:
    """Convert selected continuous columns to small integer levels.

    Used to give surrogates of mixed-type datasets (Credit Approval,
    coil2000) genuine categorical columns for SMOTENC.
    """
    if not columns:
        return x
    x = x.copy()
    for col in columns:
        edges = np.quantile(x[:, col], np.linspace(0, 1, n_levels + 1)[1:-1])
        x[:, col] = np.searchsorted(edges, x[:, col]).astype(np.float64)
    return x


# --- per-dataset builders -------------------------------------------------


def _build_credit_approval(n: int, rng: np.random.Generator):
    x, y = synthetic.gaussian_mixture(
        n, 15, _binary_weights(1.25), rng,
        class_sep=2.6, cluster_std=1.0, clusters_per_class=3,
        informative_fraction=0.6,
    )
    return _quantize_columns(x, tuple(range(9, 15)), 3, rng), y


def _build_diabetes(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 8, _binary_weights(1.87), rng,
        class_sep=1.3, cluster_std=1.0, clusters_per_class=2,
    )


def _build_car_evaluation(n: int, rng: np.random.Generator):
    return synthetic.grid_categorical(
        n, 6, _geometric_weights(4, 18.62), rng, n_levels=4, rule_noise=0.08
    )


def _build_pumpkin_seeds(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 12, _binary_weights(1.08), rng,
        class_sep=2.6, cluster_std=1.0, clusters_per_class=1,
    )


def _build_banana(n: int, rng: np.random.Generator):
    return synthetic.banana(n, _binary_weights(1.23), rng, noise=0.30)


def _build_page_blocks(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 11, _geometric_weights(5, 175.46), rng,
        class_sep=4.0, cluster_std=1.0, clusters_per_class=1,
    )


def _build_coil2000(n: int, rng: np.random.Generator):
    x, y = synthetic.gaussian_mixture(
        n, 85, _binary_weights(15.76), rng,
        class_sep=1.3, cluster_std=1.0, clusters_per_class=2,
        informative_fraction=0.3,
    )
    return _quantize_columns(x, tuple(range(65, 85)), 4, rng), y


def _build_dry_bean(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 16, _geometric_weights(7, 6.79), rng,
        class_sep=4.5, cluster_std=1.0, clusters_per_class=1,
    )


def _build_htru2(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 8, _binary_weights(9.92), rng,
        class_sep=2.8, cluster_std=1.0, clusters_per_class=1,
    )


def _build_magic(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 10, _binary_weights(1.84), rng,
        class_sep=2.3, cluster_std=1.0, clusters_per_class=3,
    )


def _build_shuttle(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 9, _geometric_weights(7, 4558.6), rng,
        class_sep=6.0, cluster_std=0.7, clusters_per_class=1,
    )


def _build_gas_sensor(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 128, _geometric_weights(6, 1.83), rng,
        class_sep=8.0, cluster_std=1.0, clusters_per_class=1,
        informative_fraction=0.25,
    )


def _build_usps(n: int, rng: np.random.Generator):
    return synthetic.gaussian_mixture(
        n, 256, _geometric_weights(10, 2.19), rng,
        class_sep=10.0, cluster_std=1.0, clusters_per_class=1,
        informative_fraction=0.2,
    )


DATASETS: dict[str, DatasetSpec] = {
    spec.code: spec
    for spec in [
        DatasetSpec("S1", "Credit Approval", 690, 15, 2, 1.25,
                    _build_credit_approval, tuple(range(9, 15)), "UCI"),
        DatasetSpec("S2", "Diabetes", 768, 8, 2, 1.87, _build_diabetes),
        DatasetSpec("S3", "Car Evaluation", 1728, 6, 4, 18.62,
                    _build_car_evaluation, tuple(range(6)), "UCI"),
        DatasetSpec("S4", "Pumpkin Seeds", 2500, 12, 2, 1.08,
                    _build_pumpkin_seeds, (), "Kaggle"),
        DatasetSpec("S5", "banana", 5300, 2, 2, 1.23, _build_banana, (), "KEEL"),
        DatasetSpec("S6", "page-blocks", 5473, 11, 5, 175.46, _build_page_blocks),
        DatasetSpec("S7", "coil2000", 9822, 85, 2, 15.76,
                    _build_coil2000, tuple(range(65, 85)), "KEEL"),
        DatasetSpec("S8", "Dry Bean", 13611, 16, 7, 6.79, _build_dry_bean),
        DatasetSpec("S9", "HTRU2", 17898, 8, 2, 9.92, _build_htru2),
        DatasetSpec("S10", "magic", 19020, 10, 2, 1.84, _build_magic, (), "KEEL"),
        DatasetSpec("S11", "shuttle", 58000, 9, 7, 4558.6, _build_shuttle, (), "KEEL"),
        DatasetSpec("S12", "Gas Sensor", 13910, 128, 6, 1.83, _build_gas_sensor),
        DatasetSpec("S13", "USPS", 9298, 256, 10, 2.19, _build_usps, (), "VLDB"),
    ]
}

DATASET_CODES = tuple(DATASETS)


def get_spec(code: str) -> DatasetSpec:
    """Spec by paper alias (``"S5"``) or by original name (``"banana"``)."""
    key = code.strip()
    if key in DATASETS:
        return DATASETS[key]
    for spec in DATASETS.values():
        if spec.name.lower() == key.lower():
            return spec
    raise KeyError(f"unknown dataset {code!r}; known codes: {DATASET_CODES}")


def load_dataset(
    code: str,
    size_factor: float = 1.0,
    random_state: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the surrogate for a Table I dataset.

    Parameters
    ----------
    code:
        Dataset alias (``S1`` … ``S13``) or original name.
    size_factor:
        Multiplier on the sample count, clipped below so each class keeps a
        workable minimum (30 samples per class or the scaled size,
        whichever is larger).
    random_state:
        Seed; surrogates are fully deterministic given (code, factor, seed).
    """
    if size_factor <= 0:
        raise ValueError("size_factor must be positive")
    spec = get_spec(code)
    n = int(round(spec.n_samples * size_factor))
    n = max(n, 30 * spec.n_classes)
    rng = np.random.default_rng(random_state)
    x, y = spec.builder(n, rng)
    if x.shape[1] != spec.n_features:
        raise RuntimeError(
            f"builder for {spec.code} produced {x.shape[1]} features, "
            f"expected {spec.n_features}"
        )
    return x, y


def imbalance_ratio(y: np.ndarray) -> float:
    """Majority count over minority count (the IR of Table I)."""
    _, counts = np.unique(y, return_counts=True)
    return float(counts.max() / counts.min())


def dataset_table(size_factor: float = 1.0, random_state: int = 0) -> list[dict]:
    """Realised Table I: one row per surrogate with target vs actual stats."""
    rows = []
    for spec in DATASETS.values():
        x, y = load_dataset(spec.code, size_factor, random_state)
        rows.append(
            {
                "code": spec.code,
                "name": spec.name,
                "target_samples": spec.n_samples,
                "samples": x.shape[0],
                "features": x.shape[1],
                "classes": int(np.unique(y).size),
                "target_ir": spec.ir,
                "ir": imbalance_ratio(y),
                "source": spec.source,
            }
        )
    return rows
