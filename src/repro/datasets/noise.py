"""Class-noise injection (§V-A2 of the paper).

The paper constructs noisy variants of each dataset "by randomly selecting
samples and altering their labels" at ratios of 5%, 10%, 20%, 30% and 40%.
:func:`inject_class_noise` reproduces that: the chosen samples get a label
drawn uniformly from the *other* classes, so the requested fraction of
labels is guaranteed to be wrong.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inject_class_noise", "NOISE_RATIOS"]

#: The noise grid used throughout the paper's evaluation.
NOISE_RATIOS = (0.05, 0.10, 0.20, 0.30, 0.40)


def inject_class_noise(
    y: np.ndarray,
    ratio: float,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Flip a fraction of labels to a different random class.

    Parameters
    ----------
    y:
        Clean label vector.
    ratio:
        Fraction of samples to corrupt, in ``[0, 1)``.
    random_state:
        Seed for the sample choice and replacement labels.

    Returns
    -------
    (y_noisy, flipped_indices):
        The corrupted copy and the indices whose labels were changed.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError("ratio must be in [0, 1)")
    y = np.asarray(y)
    n = y.shape[0]
    rng = np.random.default_rng(random_state)
    n_flip = int(round(ratio * n))
    if n_flip == 0:
        return y.copy(), np.empty(0, dtype=np.intp)

    classes = np.unique(y)
    if classes.size < 2:
        raise ValueError("cannot inject class noise with fewer than 2 classes")

    flipped = rng.choice(n, size=n_flip, replace=False)
    y_noisy = y.copy()
    # Draw a replacement uniformly among the other classes: offset the
    # original label's position by 1..q-1 within the class list.
    pos = np.searchsorted(classes, y[flipped])
    offset = rng.integers(1, classes.size, size=n_flip)
    y_noisy[flipped] = classes[(pos + offset) % classes.size]
    return y_noisy, np.sort(flipped).astype(np.intp)
