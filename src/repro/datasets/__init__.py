"""Dataset surrogates for the paper's Table I benchmarks plus noise tools."""

from repro.datasets.noise import NOISE_RATIOS, inject_class_noise
from repro.datasets.registry import (
    DATASET_CODES,
    DATASETS,
    DatasetSpec,
    dataset_table,
    get_spec,
    imbalance_ratio,
    load_dataset,
)

__all__ = [
    "DATASET_CODES",
    "DATASETS",
    "DatasetSpec",
    "dataset_table",
    "get_spec",
    "imbalance_ratio",
    "load_dataset",
    "NOISE_RATIOS",
    "inject_class_noise",
]
