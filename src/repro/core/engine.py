"""Vectorised granulation engine: the execution layer under RD-GBG.

The reference implementation of Algorithm 1 (``RDGBG._generate_legacy``)
recomputes a full-pool distance scan and ``argsort`` per candidate centre and
rebuilds a ``vstack``-ed centre matrix per conflict-radius query, giving
``O(m·n·(p + log n))`` with large constant factors.  This module supplies the
engine that the default ``backend="engine"`` path runs on instead:

* :class:`GranularBallSetBuilder` — incremental struct-of-arrays ball
  storage (centre matrix, radius/label vectors, flattened member indices),
  materialised into a :class:`~repro.core.granular_ball.GranularBallSet`
  without per-ball object churn;
* :class:`ShrinkingPool` — the undivided sample set ``U`` as compacted
  ascending-index arrays with a cached squared-norm vector, so per-candidate
  distance estimates are one BLAS matrix-vector product instead of a
  gather + subtract + reduce over the whole pool;
* :class:`CandidateScan` — tie-exact *sorted-prefix* selection: squared
  distances are estimated from the norm cache, a conservatively slacked
  threshold (see :func:`_prefix_slack`) picks a candidate superset, and only
  that superset gets the exact ``distances_to`` kernel + stable sort.  The
  returned prefix is bit-identical to the head of the legacy full
  ``argsort`` — including duplicate-distance tie order — which is what makes
  the engine's output reproducible against the reference path;
* :class:`BallCenterIndex` — conflict-radius (``r_conf``, Eqs. 4–6) queries
  over existing ball centres served by a cKDTree rebuilt amortised, with the
  final gap always recomputed by the exact kernel so the clipped radii match
  the legacy floats;
* :class:`GranulationBackend` — the protocol new generation strategies
  implement, plus :func:`register_backend`/:func:`get_backend`;
* :func:`generate_in_batches` — chunked granulation for datasets that do
  not fit a single shrinking-pool pass.

Exactness argument for the prefix selection: for every pool row the
estimated squared distance ``||x_i||² - 2·x_i·c + ||c||²`` differs from the
exact kernel's ``Σ(x_i - c)²`` by at most ``slack = 16(p+4)·eps·(max‖x‖² +
‖c‖²)``.  Any row whose estimate exceeds ``t₀ + 2·slack`` (``t₀`` = k-th
smallest estimate) therefore has exact squared distance strictly above
``t₀ + slack``, while the k estimate-smallest rows sit at or below it — so
the rows with exact distance ``≤ sqrt(t₀ + slack)`` are all inside the
candidate superset, form a true prefix of the global sorted order, and
number at least ``k``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.granular_ball import GranularBallSet
from repro.core.neighbors import distances_to
from repro.core.rdgbg import RDGBGResult

__all__ = [
    "GranulationBackend",
    "GranularBallSetBuilder",
    "ShrinkingPool",
    "CandidateScan",
    "BallCenterIndex",
    "LegacyBackend",
    "VectorisedBackend",
    "register_backend",
    "get_backend",
    "generate_in_batches",
]


def _prefix_slack(n_features: int) -> float:
    """Conservative bound on |norm-cache estimate - exact squared distance|.

    Scaled by ``max‖x‖² + ‖c‖²`` at query time; covers the accumulation
    error of the cached norms, the BLAS dot product and the exact kernel's
    own reduction with an order-of-magnitude margin.
    """
    return 16.0 * (n_features + 4) * float(np.finfo(np.float64).eps)


class GranularBallSetBuilder:
    """Incrementally grows struct-of-arrays granular-ball storage.

    Centre/radius/label arrays grow by doubling; member index chunks are
    concatenated once at :meth:`build`.  Both granulation backends and the
    batch merger use this instead of accumulating ``GranularBall`` objects.
    """

    def __init__(self, n_features: int, n_source_samples: int, capacity: int = 128):
        self._p = int(n_features)
        self._n_source = int(n_source_samples)
        cap = max(int(capacity), 4)
        self._centers = np.empty((cap, self._p), dtype=np.float64)
        self._radii = np.empty(cap, dtype=np.float64)
        self._labels = np.empty(cap, dtype=np.intp)
        self._chunks: list[np.ndarray] = []
        self._m = 0

    def __len__(self) -> int:
        return self._m

    @property
    def centers(self) -> np.ndarray:
        """View of the centres added so far, shape ``(m, p)``."""
        return self._centers[: self._m]

    @property
    def radii(self) -> np.ndarray:
        """View of the radii added so far, shape ``(m,)``."""
        return self._radii[: self._m]

    def add(
        self, center: np.ndarray, radius: float, label: int, indices: np.ndarray
    ) -> int:
        """Append one ball; returns its index in generation order."""
        m = self._m
        if m == self._radii.size:
            new_cap = 2 * m
            self._centers = np.resize(self._centers, (new_cap, self._p))
            self._radii = np.resize(self._radii, new_cap)
            self._labels = np.resize(self._labels, new_cap)
        self._centers[m] = center
        self._radii[m] = radius
        self._labels[m] = label
        self._chunks.append(np.asarray(indices, dtype=np.intp))
        self._m = m + 1
        return m

    def build(self) -> GranularBallSet:
        """Materialise the accumulated balls as a :class:`GranularBallSet`."""
        m = self._m
        if m == 0:
            return GranularBallSet([], n_source_samples=self._n_source)
        sizes = np.array([c.size for c in self._chunks], dtype=np.intp)
        return GranularBallSet.from_arrays(
            centers=self._centers[:m].copy(),
            radii=self._radii[:m].copy(),
            labels=self._labels[:m].copy(),
            flat_indices=np.concatenate(self._chunks),
            offsets=np.cumsum(sizes)[:-1],
            n_source_samples=self._n_source,
        )


class ShrinkingPool:
    """The undivided sample set ``U`` as compacted ascending-index arrays.

    Rows are tombstoned on removal and physically compacted once a quarter
    of the pool is dead, so removal is O(#removed) amortised while the
    feature block stays contiguous for the BLAS estimate kernel.  The
    ascending index order is load-bearing: it is what makes stable sorts
    over pool slices reproduce the legacy tie order.
    """

    def __init__(self, x: np.ndarray):
        self.idx = np.arange(x.shape[0], dtype=np.intp)
        self.x = np.array(x, dtype=np.float64, order="C", copy=True)
        self.sq = np.einsum("ij,ij->i", self.x, self.x)
        self.alive = np.ones(x.shape[0], dtype=bool)
        self.n_alive = x.shape[0]
        self.sq_max = float(self.sq.max()) if x.shape[0] else 0.0
        self._dead: list[int] = []

    def position_of(self, global_i: int) -> int:
        """Row position of a (live) global sample index."""
        return int(np.searchsorted(self.idx, global_i))

    def dead_positions(self) -> list[int]:
        """Tombstoned row positions awaiting compaction."""
        return self._dead

    def kill(self, global_indices: np.ndarray, compact: bool = True) -> None:
        """Remove samples from the pool (ball members or detected noise).

        ``compact=False`` defers physical compaction — required while a
        :class:`CandidateScan` holds row positions into the current layout.
        """
        pos = np.searchsorted(self.idx, np.asarray(global_indices, dtype=np.intp))
        self.alive[pos] = False
        self._dead.extend(pos.tolist())
        self.n_alive -= pos.size
        if compact and len(self._dead) * 4 > self.idx.size and self.idx.size > 64:
            keep = self.alive
            self.idx = self.idx[keep]
            self.x = np.ascontiguousarray(self.x[keep])
            self.sq = self.sq[keep]
            self.alive = np.ones(self.idx.size, dtype=bool)
            self.sq_max = float(self.sq.max()) if self.idx.size else 0.0
            self._dead = []


class CandidateScan:
    """Sorted-prefix nearest-neighbour view of the pool for one candidate.

    Estimates all squared distances with the pool's norm cache (one BLAS
    matvec), then serves exact ``(distance, index)``-sorted prefixes of any
    requested length from a slack-guarded candidate superset.  Prefixes are
    bit-identical to the head of the legacy full sort (see the module
    docstring for the exactness argument).
    """

    def __init__(self, pool: ShrinkingPool, ci: int, slack_coeff: float):
        self._pool = pool
        pos = pool.position_of(ci)
        self._center = pool.x[pos]
        approx = pool.sq - 2.0 * (pool.x @ self._center) + pool.sq[pos]
        dead = pool.dead_positions()
        if dead:
            approx[dead] = np.inf
        approx[pos] = np.inf
        self._approx = approx
        self._slack = slack_coeff * (pool.sq_max + float(pool.sq[pos]))

    @property
    def n_available(self) -> int:
        """Pool rows other than the candidate itself."""
        return self._pool.n_alive - 1

    def exclude(self, global_i: int) -> None:
        """Drop one more row (e.g. a neighbour removed as noise mid-scan)."""
        self._approx[self._pool.position_of(global_i)] = np.inf

    def prefix(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact sorted prefix of length >= min(k, n_available).

        Returns ``(global_indices, distances)`` ordered exactly as the head
        of the legacy stable full ``argsort``, extended through any distance
        ties at the boundary.
        """
        navail = self.n_available
        k = min(int(k), navail)
        if k <= 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        pool = self._pool
        if k >= navail:
            cand = np.flatnonzero(self._approx < np.inf)
            cutoff = np.inf
        else:
            t0 = float(np.partition(self._approx, k - 1)[k - 1])
            cand = np.flatnonzero(self._approx <= t0 + 2.0 * self._slack)
            cutoff = float(np.sqrt(t0 + self._slack))
        # The shared exact kernel keeps the floats structurally coupled to
        # the legacy path — bit-parity must not hinge on a private copy.
        dist = distances_to(self._center, pool.x[cand])
        # cand is ascending in global index, so a stable sort on distance
        # reproduces the legacy (distance, index) tie order exactly.
        order = np.argsort(dist, kind="stable")
        dist = dist[order]
        cand = cand[order]
        if cutoff != np.inf:
            stop = int(np.searchsorted(dist, cutoff, side="right"))
            dist = dist[:stop]
            cand = cand[:stop]
        return pool.idx[cand], dist


class BallCenterIndex:
    """Existing-ball geometry for conflict-radius (``r_conf``) queries.

    Maintains struct-of-arrays centres/radii; small sets are scanned
    directly, large sets go through a cKDTree rebuilt amortised (whenever
    the unindexed tail outgrows the indexed part).  Pruned candidates are
    always re-measured with the exact kernel, so the returned minimum gap
    is bit-identical to the legacy linear scan.
    """

    _FULL_SCAN_BELOW = 192

    def __init__(self, n_features: int):
        self._centers = np.empty((64, int(n_features)), dtype=np.float64)
        self._radii = np.empty(64, dtype=np.float64)
        self._m = 0
        self._tree: cKDTree | None = None
        self._n_indexed = 0
        self._r_max_indexed = 0.0

    def __len__(self) -> int:
        return self._m

    def add(self, center: np.ndarray, radius: float) -> None:
        """Register a newly created ball."""
        m = self._m
        if m == self._radii.size:
            self._centers = np.resize(self._centers, (2 * m, self._centers.shape[1]))
            self._radii = np.resize(self._radii, 2 * m)
        self._centers[m] = center
        self._radii[m] = radius
        self._m = m + 1

    def conflict_radius(self, c: np.ndarray) -> float:
        """``min_i dist(c, c_i) - r_i`` over all registered balls.

        Exactly equals ``(distances_to(c, centers) - radii).min()`` of the
        legacy path: the tree only prunes, never measures.
        """
        m = self._m
        if m == 0:
            return np.inf
        centers = self._centers[:m]
        radii = self._radii[:m]
        if m < self._FULL_SCAN_BELOW:
            return float((distances_to(c, centers) - radii).min())

        if m - self._n_indexed > self._n_indexed:
            self._tree = cKDTree(centers.copy())
            self._n_indexed = m
            self._r_max_indexed = float(radii.max())
        assert self._tree is not None

        # Exact gaps for the unindexed tail plus the tree's nearest centre
        # give an initial bound; any indexed centre that could still improve
        # it lies within best + r_max of the query.
        best = np.inf
        tail = self._n_indexed
        if tail < m:
            best = float((distances_to(c, centers[tail:m]) - radii[tail:m]).min())
        _, i1 = self._tree.query(c, k=1)
        i1 = int(i1)
        g1 = float(distances_to(c, centers[i1 : i1 + 1])[0] - radii[i1])
        best = min(best, g1)
        bound = best + self._r_max_indexed
        if bound > 0:
            cand = self._tree.query_ball_point(c, bound * (1.0 + 1e-9) + 1e-12)
            cand_arr = np.asarray(cand, dtype=np.intp)
            if cand_arr.size:
                gaps = distances_to(c, centers[cand_arr]) - radii[cand_arr]
                best = min(best, float(gaps.min()))
        return best


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class GranulationBackend:
    """Protocol for granulation execution strategies.

    A backend turns a configured generator (the parameter object — rho,
    random_state, detect_noise, enforce_no_overlap) plus a validated
    dataset into an :class:`~repro.core.rdgbg.RDGBGResult`.  Register new
    strategies with :func:`register_backend`; ``RDGBG(backend=name)``
    resolves them by name.
    """

    name: str = "abstract"

    def run(self, generator, x: np.ndarray, y: np.ndarray) -> RDGBGResult:
        raise NotImplementedError


class LegacyBackend(GranulationBackend):
    """The reference straight-line implementation (semantic ground truth)."""

    name = "legacy"

    def run(self, generator, x: np.ndarray, y: np.ndarray) -> RDGBGResult:
        return generator._generate_legacy(x, y)


class VectorisedBackend(GranulationBackend):
    """Indexed RD-GBG on SoA state; bit-identical to :class:`LegacyBackend`."""

    name = "engine"

    # Initial prefix length; must exceed rho so the detection rules see the
    # same effective neighbourhood as the legacy full sort.
    _MIN_PREFIX = 32

    def run(self, generator, x: np.ndarray, y: np.ndarray) -> RDGBGResult:
        n, p = x.shape
        rng = np.random.default_rng(generator.random_state)
        in_u = np.ones(n, dtype=bool)
        in_l = np.zeros(n, dtype=bool)
        is_noise = np.zeros(n, dtype=bool)

        builder = GranularBallSetBuilder(p, n)
        pool = ShrinkingPool(x)
        index = BallCenterIndex(p) if generator.enforce_no_overlap else None
        slack_coeff = _prefix_slack(p)

        n_iterations = 0
        while True:
            t_idx = np.flatnonzero(in_u & ~in_l)
            if t_idx.size == 0:
                break
            n_iterations += 1
            for ci in generator._draw_candidates(t_idx, y, rng):
                if not in_u[ci] or in_l[ci]:
                    continue
                self._process_candidate(
                    generator, ci, x, y, in_u, in_l, is_noise,
                    pool, index, builder, slack_coeff,
                )

        orphan_idx = np.flatnonzero(in_u)
        for oi in orphan_idx:
            builder.add(x[oi].copy(), 0.0, int(y[oi]), np.array([oi], dtype=np.intp))

        return RDGBGResult(
            ball_set=builder.build(),
            noise_indices=np.flatnonzero(is_noise),
            orphan_indices=orphan_idx,
            n_iterations=n_iterations,
        )

    def _process_candidate(
        self,
        generator,
        ci: int,
        x: np.ndarray,
        y: np.ndarray,
        in_u: np.ndarray,
        in_l: np.ndarray,
        is_noise: np.ndarray,
        pool: ShrinkingPool,
        index: BallCenterIndex | None,
        builder: GranularBallSetBuilder,
        slack_coeff: float,
    ) -> None:
        if pool.n_alive <= 1:
            in_l[ci] = True
            return

        scan = CandidateScan(pool, ci, slack_coeff)
        k = max(generator.rho + 1, self._MIN_PREFIX)
        sorted_idx, sorted_dist = scan.prefix(k)
        y_ci = y[ci]

        if y[sorted_idx[0]] != y_ci:
            nn = int(sorted_idx[0])
            verdict, sorted_idx, sorted_dist = generator._detect_center(
                ci, y, in_u, in_l, is_noise, sorted_idx, sorted_dist
            )
            if is_noise[ci]:
                pool.kill(np.array([ci], dtype=np.intp))
                return
            if not verdict:
                return
            # h == 1: the nearest neighbour was removed as noise; the
            # shortened arrays are exactly the prefix of the updated pool.
            scan.exclude(nn)
            pool.kill(np.array([nn], dtype=np.intp), compact=False)
            if sorted_idx.size == 0:
                in_l[ci] = True
                return

        # Extend the prefix until it contains the first heterogeneous
        # neighbour (which bounds the homogeneous run ω) or covers the pool.
        while True:
            homo = y[sorted_idx] == y_ci
            if not homo.all():
                omega = int(np.argmin(homo))
                break
            if sorted_idx.size >= scan.n_available:
                omega = int(homo.size)
                break
            k = min(k * 4, scan.n_available)
            sorted_idx, sorted_dist = scan.prefix(k)

        if omega == 0:
            in_l[ci] = True
            return

        r_conf = index.conflict_radius(x[ci]) if index is not None else np.inf
        radius = generator._clip_radius(sorted_dist, omega, r_conf)
        if radius <= 0.0:
            in_l[ci] = True
            return

        members = generator._collect_members(ci, sorted_idx, sorted_dist, omega, radius)
        builder.add(x[ci].copy(), float(radius), int(y_ci), members)
        if index is not None:
            index.add(x[ci], float(radius))
        in_u[members] = False
        in_l[members] = False
        pool.kill(members)


_BACKENDS: dict[str, GranulationBackend] = {}


def register_backend(backend: GranulationBackend) -> None:
    """Make a :class:`GranulationBackend` resolvable by ``RDGBG(backend=...)``."""
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> GranulationBackend:
    """Look up a registered backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown granulation backend {name!r}; known: {known}")


register_backend(LegacyBackend())
register_backend(VectorisedBackend())


# ----------------------------------------------------------------------
# chunked generation
# ----------------------------------------------------------------------


def generate_in_batches(generator, x: np.ndarray, y: np.ndarray, *, batch_size: int) -> RDGBGResult:
    """Granulate ``(x, y)`` chunk by chunk and merge into one result.

    Chunk ``i`` runs the generator's configured backend on rows
    ``[i·batch_size, (i+1)·batch_size)`` with seed ``random_state + i``
    (when a seed is set), so memory stays bounded by the chunk size.  Member
    /noise/orphan indices are remapped to the global dataset.  Purity and
    the per-chunk partition/no-overlap invariants carry over; balls from
    different chunks may overlap.
    """
    batch_size = int(batch_size)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n, p = x.shape
    builder = GranularBallSetBuilder(p, n)
    noise_parts: list[np.ndarray] = []
    orphan_parts: list[np.ndarray] = []
    n_iterations = 0
    for bi, start in enumerate(range(0, n, batch_size)):
        stop = min(start + batch_size, n)
        seed = None if generator.random_state is None else generator.random_state + bi
        sub = type(generator)(
            rho=generator.rho,
            random_state=seed,
            detect_noise=generator.detect_noise,
            enforce_no_overlap=generator.enforce_no_overlap,
            backend=generator.backend,
        )
        result = sub.generate(x[start:stop], y[start:stop])
        ball_set = result.ball_set
        for i in range(len(ball_set)):
            builder.add(
                ball_set.centers[i],
                float(ball_set.radii[i]),
                int(ball_set.labels[i]),
                ball_set.members_of(i) + start,
            )
        noise_parts.append(result.noise_indices + start)
        orphan_parts.append(result.orphan_indices + start)
        n_iterations += result.n_iterations
    empty = np.empty(0, dtype=np.intp)
    return RDGBGResult(
        ball_set=builder.build(),
        noise_indices=np.concatenate(noise_parts) if noise_parts else empty,
        orphan_indices=np.concatenate(orphan_parts) if orphan_parts else empty,
        n_iterations=n_iterations,
    )
