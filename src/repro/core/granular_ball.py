"""Granular-ball data structures.

A *granular ball* (GB) is the information granule used throughout the paper:
a hypersphere ``gb = (O, (c, r, l))`` where ``c`` is the centre, ``r`` the
radius, ``l`` the (single, pure) class label and ``O`` the set of member
samples.  Unlike the classical GB definition (Eq. 1 of the paper) whose mean
radius can leave members outside the ball, the RD-GBG definition used here
guarantees that *every member lies inside the ball* and that all members
share the ball's label ("pure" GBs).

:class:`GranularBallSet` bundles the balls produced by a generation run and
offers vectorised geometry queries (overlap checks, coverage, nearest-ball
assignment) that the sampling stage and the test-suite invariants rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.neighbors import distances_to, pairwise_distances

__all__ = ["GranularBall", "GranularBallSet"]


@dataclass(frozen=True)
class GranularBall:
    """A single pure granular ball.

    Attributes
    ----------
    center:
        Centre coordinates, shape ``(p,)``.  For RD-GBG the centre is an
        actual sample of the dataset (the local-density centre).
    radius:
        Ball radius; ``0.0`` for orphan (single-sample) balls.
    label:
        The class label shared by every member.
    indices:
        Indices of the member samples in the source dataset, shape ``(k,)``.
        The centre's own index is included.
    """

    center: np.ndarray
    radius: float
    label: int
    indices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.intp)
        if center.ndim != 1:
            raise ValueError("center must be a 1-D array")
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("a granular ball must contain at least one sample")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "indices", indices)

    @property
    def n_samples(self) -> int:
        """Number of member samples."""
        return int(self.indices.size)

    @property
    def is_orphan(self) -> bool:
        """True for the radius-0 single-sample balls RD-GBG emits at the end."""
        return self.radius == 0.0 and self.n_samples == 1

    def contains(self, points: np.ndarray, rtol: float = 1e-9) -> np.ndarray:
        """Boolean mask of which ``points`` fall inside the ball."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dist = distances_to(self.center, points)
        return dist <= self.radius * (1.0 + rtol) + 1e-12

    def members(self, x: np.ndarray) -> np.ndarray:
        """Member feature vectors, looked up in the source matrix ``x``."""
        return np.asarray(x)[self.indices]


class GranularBallSet:
    """The result of a granular-ball generation run.

    Parameters
    ----------
    balls:
        The generated balls, in generation order.
    n_source_samples:
        Size of the dataset the balls were generated on; used by coverage
        and partition checks.
    """

    def __init__(self, balls: list[GranularBall], n_source_samples: int):
        self._balls = list(balls)
        self.n_source_samples = int(n_source_samples)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._balls)

    def __iter__(self):
        return iter(self._balls)

    def __getitem__(self, i: int) -> GranularBall:
        return self._balls[i]

    # -- vectorised views ---------------------------------------------------

    @property
    def centers(self) -> np.ndarray:
        """Matrix of ball centres, shape ``(m, p)``."""
        if not self._balls:
            return np.empty((0, 0))
        return np.vstack([b.center for b in self._balls])

    @property
    def radii(self) -> np.ndarray:
        """Vector of radii, shape ``(m,)``."""
        return np.array([b.radius for b in self._balls], dtype=np.float64)

    @property
    def labels(self) -> np.ndarray:
        """Vector of ball labels, shape ``(m,)``."""
        return np.array([b.label for b in self._balls], dtype=np.intp)

    @property
    def sizes(self) -> np.ndarray:
        """Vector of member counts, shape ``(m,)``."""
        return np.array([b.n_samples for b in self._balls], dtype=np.intp)

    @property
    def member_indices(self) -> np.ndarray:
        """Concatenated member indices over all balls (order of generation)."""
        if not self._balls:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([b.indices for b in self._balls])

    # -- derived statistics ---------------------------------------------------

    def coverage(self) -> float:
        """Fraction of source samples covered by some ball.

        RD-GBG detects and drops class noise, so coverage can be < 1 on noisy
        data; the partition invariant (each covered sample in exactly one
        ball) still holds.
        """
        if self.n_source_samples == 0:
            return 0.0
        return self.member_indices.size / self.n_source_samples

    def max_overlap(self) -> float:
        """Largest pairwise overlap depth ``(r_i + r_j) - dist(c_i, c_j)``.

        A value ``<= 0`` (up to floating-point noise) certifies that no two
        balls overlap, the headline geometric guarantee of RD-GBG.  Balls of
        radius 0 are ignored: orphan balls may legitimately sit inside the
        closure of another ball's boundary without creating ambiguity.
        """
        mask = self.radii > 0
        centers = self.centers[mask]
        radii = self.radii[mask]
        m = centers.shape[0]
        if m < 2:
            return 0.0
        dist = pairwise_distances(centers)
        depth = radii[:, None] + radii[None, :] - dist
        np.fill_diagonal(depth, -np.inf)
        return float(depth.max())

    def purity_against(self, y: np.ndarray) -> np.ndarray:
        """Per-ball purity measured against the source labels ``y``.

        RD-GBG produces pure balls, so this should be an all-ones vector; the
        method exists so tests and ablations can verify exactly that, and so
        impure baseline generators (k-division GBG) can report purity too.
        """
        y = np.asarray(y)
        out = np.empty(len(self._balls), dtype=np.float64)
        for i, ball in enumerate(self._balls):
            member_labels = y[ball.indices]
            out[i] = np.mean(member_labels == ball.label) if member_labels.size else 0.0
        return out

    def is_partition(self) -> bool:
        """True when no source sample appears in more than one ball."""
        idx = self.member_indices
        return idx.size == np.unique(idx).size

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Nearest-ball assignment used by GB-based classifiers.

        Each query point is assigned to the ball minimising
        ``dist(point, c_i) - r_i`` (distance to the ball surface, negative
        inside the ball), the standard GBC decision rule.

        Returns
        -------
        numpy.ndarray
            Ball index per query point, shape ``(n,)``.
        """
        if not self._balls:
            raise RuntimeError("cannot assign points with an empty ball set")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dist = pairwise_distances(points, self.centers) - self.radii[None, :]
        return np.argmin(dist, axis=1)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Label of the nearest ball for each query point."""
        return self.labels[self.assign(points)]

    def summary(self) -> dict:
        """Compact statistics dictionary for logging and experiments."""
        sizes = self.sizes
        return {
            "n_balls": len(self._balls),
            "n_orphans": int(sum(b.is_orphan for b in self._balls)),
            "coverage": self.coverage(),
            "max_overlap": self.max_overlap(),
            "mean_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_size": int(sizes.max()) if sizes.size else 0,
        }

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Persist the ball set to an ``.npz`` file.

        The member indices of all balls are stored flattened with split
        offsets, so arbitrarily sized sets round-trip exactly.
        """
        if self._balls:
            offsets = np.cumsum([b.indices.size for b in self._balls])[:-1]
            flat_indices = self.member_indices
            centers = self.centers
        else:
            offsets = np.empty(0, dtype=np.intp)
            flat_indices = np.empty(0, dtype=np.intp)
            centers = np.empty((0, 0))
        np.savez(
            path,
            centers=centers,
            radii=self.radii,
            labels=self.labels,
            flat_indices=flat_indices,
            offsets=offsets,
            n_source_samples=np.array([self.n_source_samples]),
        )

    @classmethod
    def load(cls, path) -> "GranularBallSet":
        """Inverse of :meth:`save`."""
        with np.load(path) as data:
            centers = data["centers"]
            radii = data["radii"]
            labels = data["labels"]
            member_chunks = np.split(data["flat_indices"], data["offsets"])
            n_source = int(data["n_source_samples"][0])
        balls = [
            GranularBall(
                center=centers[i],
                radius=float(radii[i]),
                label=int(labels[i]),
                indices=member_chunks[i],
            )
            for i in range(radii.size)
        ]
        return cls(balls, n_source_samples=n_source)
