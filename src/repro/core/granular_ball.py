"""Granular-ball data structures.

A *granular ball* (GB) is the information granule used throughout the paper:
a hypersphere ``gb = (O, (c, r, l))`` where ``c`` is the centre, ``r`` the
radius, ``l`` the (single, pure) class label and ``O`` the set of member
samples.  Unlike the classical GB definition (Eq. 1 of the paper) whose mean
radius can leave members outside the ball, the RD-GBG definition used here
guarantees that *every member lies inside the ball* and that all members
share the ball's label ("pure" GBs).

:class:`GranularBallSet` bundles the balls produced by a generation run and
offers vectorised geometry queries (overlap checks, coverage, nearest-ball
assignment) that the sampling stage and the test-suite invariants rely on.
Internally the set is stored struct-of-arrays (centre matrix, radius/label/
size vectors, flattened member indices with offsets); the per-ball
:class:`GranularBall` objects are materialised lazily so hot paths that only
touch the arrays never pay for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.neighbors import distances_to, pairwise_distances

__all__ = [
    "GranularBall",
    "GranularBallSet",
    "AssignWorkspace",
    "assign_nearest_ball",
    "ball_sq_norms",
    "DEFAULT_ASSIGN_CHUNK",
    "SCHEMA_VERSION",
]

#: Version stamp written into every persisted ball-set ``.npz``.  Bump when
#: the array layout changes; :meth:`GranularBallSet.load` rejects files with
#: a missing or unknown stamp instead of failing deep inside numpy.
SCHEMA_VERSION = 2

#: Canonical query-chunk size of the nearest-ball kernel.  Both the
#: in-memory :meth:`GranularBallSet.assign` and the frozen serving path
#: (:mod:`repro.serving`) use this value, which makes their argmin results
#: bit-identical for the same query batch: BLAS matmul low bits depend on
#: the operand row count, so "same kernel + same chunking" is the contract.
DEFAULT_ASSIGN_CHUNK = 1024


def ball_sq_norms(centers: np.ndarray) -> np.ndarray:
    """Squared L2 norm per ball centre, the cached half of the distance
    expansion ``||x - c||^2 = ||x||^2 + ||c||^2 - 2 x.c``.

    Uses the exact reduction of :func:`repro.core.neighbors.pairwise_distances`
    (``np.sum(c * c, axis=1)``) so cached and non-cached paths agree
    bit-for-bit.
    """
    centers = np.asarray(centers, dtype=np.float64)
    return np.sum(centers * centers, axis=1)


class AssignWorkspace:
    """Reusable scratch buffers for :func:`assign_nearest_ball`.

    A serving process answering millions of small predict calls should not
    pay a fresh ``(chunk, m)`` allocation per request; the workspace owns
    the buffers once and every call slices them to the live chunk size.
    """

    def __init__(self, chunk_size: int, n_balls: int, n_features: int):
        self.chunk_size = int(chunk_size)
        self.xx = np.empty((self.chunk_size, int(n_features)), dtype=np.float64)
        self.qn = np.empty(self.chunk_size, dtype=np.float64)
        self.mm = np.empty((self.chunk_size, int(n_balls)), dtype=np.float64)
        self.sq = np.empty((self.chunk_size, int(n_balls)), dtype=np.float64)

    def fits(self, chunk_size: int, n_balls: int, n_features: int) -> bool:
        """True when the buffers can serve a kernel call of this shape."""
        return (
            self.chunk_size >= chunk_size
            and self.mm.shape[1] == n_balls
            and self.xx.shape[1] == n_features
        )


def assign_nearest_ball(
    points: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    centers_sq: np.ndarray,
    *,
    chunk_size: int = DEFAULT_ASSIGN_CHUNK,
    workspace: AssignWorkspace | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Nearest-ball index per query point, chunked to bounded memory.

    Computes ``argmin_j ||x - c_j|| - r_j`` (distance to the ball surface,
    the GBC decision rule) without ever materialising the full
    ``(n_queries, n_balls)`` matrix: queries stream through in chunks of
    ``chunk_size`` rows, and ``centers_sq`` (see :func:`ball_sq_norms`)
    replaces the per-call recomputation of every ball-centre norm.

    The floating-point expression is operation-for-operation the one
    :func:`repro.core.neighbors.pairwise_distances` evaluates, so for a
    query batch that fits in one chunk the result is bit-identical to the
    historical dense path.  Across chunks, determinism is guaranteed by the
    fixed canonical chunk size: every caller that sticks with the default
    sees the same bits for the same query batch.

    Parameters
    ----------
    points:
        Query matrix ``(n, p)`` (float64, C-order).
    centers, radii, centers_sq:
        Ball geometry SoA: ``(m, p)`` centres, ``(m,)`` radii and cached
        squared centre norms.
    chunk_size:
        Rows per streamed chunk; memory is ``O(chunk_size * m)``.
    workspace:
        Optional :class:`AssignWorkspace` to reuse scratch buffers across
        calls (the hot serving path); shapes must fit or a fresh private
        workspace is used for the call.
    out:
        Optional preallocated ``(n,)`` intp output vector.

    Returns
    -------
    numpy.ndarray
        Ball index per query, shape ``(n,)``, dtype intp.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    n, m = points.shape[0], centers.shape[0]
    if m == 0:
        raise RuntimeError("cannot assign points with an empty ball set")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if out is None:
        out = np.empty(n, dtype=np.intp)
    if workspace is None or not workspace.fits(
        min(chunk_size, max(n, 1)), m, points.shape[1]
    ):
        workspace = AssignWorkspace(
            min(chunk_size, max(n, 1)), m, points.shape[1]
        )
    centers_t = centers.T
    radii_row = np.asarray(radii, dtype=np.float64)[None, :]
    centers_sq_row = np.asarray(centers_sq, dtype=np.float64)[None, :]
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        c = stop - start
        chunk = points[start:stop]
        xx = workspace.xx[:c]
        qn = workspace.qn[:c]
        mm = workspace.mm[:c]
        sq = workspace.sq[:c]
        np.multiply(chunk, chunk, out=xx)
        np.sum(xx, axis=1, out=qn)
        np.dot(chunk, centers_t, out=mm)
        # Same op order as pairwise_distances: (||x||^2 + ||c||^2) - 2 x.c
        np.add(qn[:, None], centers_sq_row, out=sq)
        np.multiply(mm, 2.0, out=mm)
        np.subtract(sq, mm, out=sq)
        np.maximum(sq, 0.0, out=sq)
        np.sqrt(sq, out=sq)
        np.subtract(sq, radii_row, out=sq)
        out[start:stop] = np.argmin(sq, axis=1)
    return out


@dataclass(frozen=True)
class GranularBall:
    """A single pure granular ball.

    Attributes
    ----------
    center:
        Centre coordinates, shape ``(p,)``.  For RD-GBG the centre is an
        actual sample of the dataset (the local-density centre).
    radius:
        Ball radius; ``0.0`` for orphan (single-sample) balls.
    label:
        The class label shared by every member.
    indices:
        Indices of the member samples in the source dataset, shape ``(k,)``.
        The centre's own index is included.
    """

    center: np.ndarray
    radius: float
    label: int
    indices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.intp)
        if center.ndim != 1:
            raise ValueError("center must be a 1-D array")
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("a granular ball must contain at least one sample")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "indices", indices)

    @property
    def n_samples(self) -> int:
        """Number of member samples."""
        return int(self.indices.size)

    @property
    def is_orphan(self) -> bool:
        """True for the radius-0 single-sample balls RD-GBG emits at the end."""
        return self.radius == 0.0 and self.n_samples == 1

    def contains(self, points: np.ndarray, rtol: float = 1e-9) -> np.ndarray:
        """Boolean mask of which ``points`` fall inside the ball."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dist = distances_to(self.center, points)
        return dist <= self.radius * (1.0 + rtol) + 1e-12

    def members(self, x: np.ndarray) -> np.ndarray:
        """Member feature vectors, looked up in the source matrix ``x``."""
        return np.asarray(x)[self.indices]


class GranularBallSet:
    """The result of a granular-ball generation run.

    The canonical representation is struct-of-arrays: ``centers`` ``(m, p)``,
    ``radii``/``labels``/``sizes`` ``(m,)`` and the member indices of all
    balls flattened into one vector with per-ball start offsets.  All array
    properties are computed once and cached; :class:`GranularBall` objects
    are views materialised on first per-ball access.

    Parameters
    ----------
    balls:
        The generated balls, in generation order.
    n_source_samples:
        Size of the dataset the balls were generated on; used by coverage
        and partition checks.
    """

    def __init__(self, balls: list[GranularBall], n_source_samples: int):
        self.n_source_samples = int(n_source_samples)
        balls = list(balls)
        self._balls: list[GranularBall] | None = balls
        if balls:
            self._centers = np.vstack([b.center for b in balls])
            self._radii = np.array([b.radius for b in balls], dtype=np.float64)
            self._labels = np.array([b.label for b in balls], dtype=np.intp)
            sizes = np.array([b.indices.size for b in balls], dtype=np.intp)
            self._flat_indices = np.concatenate([b.indices for b in balls])
        else:
            self._centers = np.empty((0, 0))
            self._radii = np.empty(0, dtype=np.float64)
            self._labels = np.empty(0, dtype=np.intp)
            sizes = np.empty(0, dtype=np.intp)
            self._flat_indices = np.empty(0, dtype=np.intp)
        self._starts = np.concatenate(([0], np.cumsum(sizes)))
        self._sizes = sizes
        self._centers_sq: np.ndarray | None = None

    @classmethod
    def from_arrays(
        cls,
        centers: np.ndarray,
        radii: np.ndarray,
        labels: np.ndarray,
        flat_indices: np.ndarray,
        offsets: np.ndarray,
        n_source_samples: int,
    ) -> "GranularBallSet":
        """Build a set directly from struct-of-arrays storage.

        ``offsets`` are the split points between consecutive balls inside
        ``flat_indices`` (the convention of :meth:`save`): ``m - 1`` values
        for ``m`` balls.
        """
        self = cls.__new__(cls)
        self.n_source_samples = int(n_source_samples)
        self._balls = None
        radii = np.asarray(radii, dtype=np.float64)
        m = radii.size
        centers = np.asarray(centers, dtype=np.float64)
        self._centers = centers if m else np.empty((0, 0))
        self._radii = radii
        self._labels = np.asarray(labels, dtype=np.intp)
        self._flat_indices = np.asarray(flat_indices, dtype=np.intp)
        offsets = np.asarray(offsets, dtype=np.intp)
        if m == 0:
            self._starts = np.zeros(1, dtype=np.intp)
        else:
            self._starts = np.concatenate(([0], offsets, [self._flat_indices.size]))
        if self._starts.size != max(m, 1) + (m > 0):
            raise ValueError("offsets do not match the number of balls")
        self._sizes = np.diff(self._starts)
        if m and (self._sizes <= 0).any():
            raise ValueError("every ball must contain at least one sample")
        self._centers_sq = None
        return self

    # -- basic container protocol ------------------------------------------

    def _ball_list(self) -> list[GranularBall]:
        """Materialise (and cache) the per-ball object views."""
        if self._balls is None:
            self._balls = [
                GranularBall(
                    center=self._centers[i],
                    radius=float(self._radii[i]),
                    label=int(self._labels[i]),
                    indices=self._flat_indices[self._starts[i] : self._starts[i + 1]],
                )
                for i in range(self._radii.size)
            ]
        return self._balls

    def __len__(self) -> int:
        return int(self._radii.size)

    def __iter__(self):
        return iter(self._ball_list())

    def __getitem__(self, i: int) -> GranularBall:
        return self._ball_list()[i]

    # -- vectorised views ---------------------------------------------------

    @property
    def centers(self) -> np.ndarray:
        """Matrix of ball centres, shape ``(m, p)``."""
        return self._centers

    @property
    def radii(self) -> np.ndarray:
        """Vector of radii, shape ``(m,)``."""
        return self._radii

    @property
    def labels(self) -> np.ndarray:
        """Vector of ball labels, shape ``(m,)``."""
        return self._labels

    @property
    def sizes(self) -> np.ndarray:
        """Vector of member counts, shape ``(m,)``."""
        return self._sizes

    @property
    def center_sq_norms(self) -> np.ndarray:
        """Cached squared centre norms (see :func:`ball_sq_norms`).

        Computed once per set and shared by every :meth:`assign` call and
        by the frozen serving artifact, so the in-memory and frozen
        prediction paths consume identical acceleration state.
        """
        if self._centers_sq is None:
            self._centers_sq = ball_sq_norms(self._centers)
        return self._centers_sq

    @property
    def member_indices(self) -> np.ndarray:
        """Concatenated member indices over all balls (order of generation)."""
        return self._flat_indices

    def members_of(self, i: int) -> np.ndarray:
        """Member indices of ball ``i`` without materialising the ball object."""
        return self._flat_indices[self._starts[i] : self._starts[i + 1]]

    def select(self, which: np.ndarray) -> "GranularBallSet":
        """Subset of balls (boolean mask or index array), preserving order."""
        which = np.asarray(which)
        keep = np.flatnonzero(which) if which.dtype == bool else which.astype(np.intp)
        if keep.size == 0:
            return GranularBallSet([], n_source_samples=self.n_source_samples)
        chunks = [self.members_of(int(i)) for i in keep]
        sizes = np.array([c.size for c in chunks], dtype=np.intp)
        return GranularBallSet.from_arrays(
            centers=self._centers[keep].copy(),
            radii=self._radii[keep].copy(),
            labels=self._labels[keep].copy(),
            flat_indices=np.concatenate(chunks),
            offsets=np.cumsum(sizes)[:-1],
            n_source_samples=self.n_source_samples,
        )

    # -- derived statistics ---------------------------------------------------

    @property
    def orphan_mask(self) -> np.ndarray:
        """Boolean mask of the radius-0 single-sample orphan balls."""
        return (self._radii == 0.0) & (self._sizes == 1)

    def coverage(self) -> float:
        """Fraction of source samples covered by some ball.

        RD-GBG detects and drops class noise, so coverage can be < 1 on noisy
        data; the partition invariant (each covered sample in exactly one
        ball) still holds.
        """
        if self.n_source_samples == 0:
            return 0.0
        return self._flat_indices.size / self.n_source_samples

    def max_overlap(self) -> float:
        """Largest pairwise overlap depth ``(r_i + r_j) - dist(c_i, c_j)``.

        A value ``<= 0`` (up to floating-point noise) certifies that no two
        balls overlap, the headline geometric guarantee of RD-GBG.  Balls of
        radius 0 are ignored: orphan balls may legitimately sit inside the
        closure of another ball's boundary without creating ambiguity.
        """
        mask = self._radii > 0
        centers = self._centers[mask]
        radii = self._radii[mask]
        m = centers.shape[0]
        if m < 2:
            return 0.0
        dist = pairwise_distances(centers)
        depth = radii[:, None] + radii[None, :] - dist
        np.fill_diagonal(depth, -np.inf)
        return float(depth.max())

    def purity_against(self, y: np.ndarray) -> np.ndarray:
        """Per-ball purity measured against the source labels ``y``.

        RD-GBG produces pure balls, so this should be an all-ones vector; the
        method exists so tests and ablations can verify exactly that, and so
        impure baseline generators (k-division GBG) can report purity too.
        """
        y = np.asarray(y)
        m = len(self)
        if m == 0:
            return np.empty(0, dtype=np.float64)
        agree = (
            y[self._flat_indices] == np.repeat(self._labels, self._sizes)
        ).astype(np.float64)
        totals = np.add.reduceat(agree, self._starts[:-1])
        return totals / self._sizes

    def is_partition(self) -> bool:
        """True when no source sample appears in more than one ball."""
        idx = self._flat_indices
        return idx.size == np.unique(idx).size

    def assign(
        self, points: np.ndarray, chunk_size: int = DEFAULT_ASSIGN_CHUNK
    ) -> np.ndarray:
        """Nearest-ball assignment used by GB-based classifiers.

        Each query point is assigned to the ball minimising
        ``dist(point, c_i) - r_i`` (distance to the ball surface, negative
        inside the ball), the standard GBC decision rule.  Queries stream
        through :func:`assign_nearest_ball` in chunks with the centre norms
        cached on the set, so memory stays ``O(chunk_size * n_balls)``
        instead of ``O(n_queries * n_balls)`` however large the batch.

        Returns
        -------
        numpy.ndarray
            Ball index per query point, shape ``(n,)``.
        """
        if len(self) == 0:
            raise RuntimeError("cannot assign points with an empty ball set")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return assign_nearest_ball(
            points,
            self._centers,
            self._radii,
            self.center_sq_norms,
            chunk_size=chunk_size,
        )

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Label of the nearest ball for each query point."""
        return self._labels[self.assign(points)]

    def summary(self) -> dict:
        """Compact statistics dictionary for logging and experiments."""
        sizes = self._sizes
        return {
            "n_balls": len(self),
            "n_orphans": int(self.orphan_mask.sum()),
            "coverage": self.coverage(),
            "max_overlap": self.max_overlap(),
            "mean_size": float(sizes.mean()) if sizes.size else 0.0,
            "max_size": int(sizes.max()) if sizes.size else 0,
        }

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Persist the ball set to an ``.npz`` file.

        The member indices of all balls are stored flattened with split
        offsets, so arbitrarily sized sets round-trip exactly.  A
        ``schema_version`` field stamps the layout; :meth:`load` refuses
        files whose stamp is missing or unknown.
        """
        np.savez(
            path,
            schema_version=np.array([SCHEMA_VERSION], dtype=np.int64),
            centers=self._centers,
            radii=self._radii,
            labels=self._labels,
            flat_indices=self._flat_indices,
            offsets=self._starts[1:-1] if len(self) else np.empty(0, dtype=np.intp),
            n_source_samples=np.array([self.n_source_samples]),
        )

    _SAVE_FIELDS = (
        "centers", "radii", "labels", "flat_indices", "offsets",
        "n_source_samples",
    )

    @classmethod
    def load(cls, path) -> "GranularBallSet":
        """Inverse of :meth:`save`.

        Raises
        ------
        ValueError
            When the file has no ``schema_version`` stamp (written by a
            pre-versioning release, or not a ball-set file at all), an
            unknown stamp (written by a newer release), or is missing any
            layout field — instead of an opaque ``KeyError`` deep inside
            numpy.
        """
        with np.load(path) as data:
            if "schema_version" not in data:
                raise ValueError(
                    f"{path}: no schema_version field — this is not a "
                    "granular-ball set file, or it was saved by a "
                    "pre-versioning release; re-granulate and save again"
                )
            version = int(data["schema_version"][0])
            if version != SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: unsupported ball-set schema version {version} "
                    f"(this build reads version {SCHEMA_VERSION}); "
                    "re-save the set with a matching release"
                )
            missing = [k for k in cls._SAVE_FIELDS if k not in data]
            if missing:
                raise ValueError(
                    f"{path}: ball-set file is missing fields {missing} — "
                    "truncated or corrupt; re-granulate and save again"
                )
            return cls.from_arrays(
                centers=data["centers"],
                radii=data["radii"],
                labels=data["labels"],
                flat_indices=data["flat_indices"],
                offsets=data["offsets"],
                n_source_samples=int(data["n_source_samples"][0]),
            )
