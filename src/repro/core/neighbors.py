"""Nearest-neighbour primitives shared by the granulation and sampling code.

Everything in this module is a thin, well-tested wrapper around numpy /
``scipy.spatial``.  The granular-ball algorithms need two access patterns:

* one-query-against-a-shrinking-pool distance scans (RD-GBG), served by
  :func:`distances_to`, and
* bulk k-NN queries over a static matrix (SMOTE, Tomek links, kNN
  classifier), served by :class:`NearestNeighbors`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "pairwise_distances",
    "distances_to",
    "NearestNeighbors",
]


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``.

    Parameters
    ----------
    a:
        Array of shape ``(n, p)``.
    b:
        Array of shape ``(m, p)``.  Defaults to ``a`` itself.

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(n, m)`` with non-negative distances.
    """
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("pairwise_distances expects 2-D arrays")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"feature dimensions differ: {a.shape[1]} != {b.shape[1]}"
        )
    # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped for numeric safety.
    sq = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def distances_to(point: np.ndarray, pool: np.ndarray) -> np.ndarray:
    """Euclidean distances from a single ``point`` to every row of ``pool``."""
    point = np.asarray(point, dtype=np.float64)
    pool = np.asarray(pool, dtype=np.float64)
    if point.ndim != 1:
        raise ValueError("point must be 1-D")
    diff = pool - point[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class NearestNeighbors:
    """k-nearest-neighbour index with a scikit-learn-like interface.

    Uses a KD-tree for low/medium dimensional data and falls back to a
    brute-force distance matrix in high dimensions, where KD-trees degrade
    to linear scans with extra overhead.

    Parameters
    ----------
    n_neighbors:
        Default number of neighbours returned by :meth:`kneighbors`.
    brute_force_dim:
        Dimensionality at or above which brute force is used.
    """

    def __init__(self, n_neighbors: int = 5, brute_force_dim: int = 30):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = int(n_neighbors)
        self.brute_force_dim = int(brute_force_dim)
        self._fit_x: np.ndarray | None = None
        self._tree: cKDTree | None = None

    def fit(self, x: np.ndarray) -> "NearestNeighbors":
        """Index the rows of ``x`` for subsequent queries."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("fit expects a 2-D array")
        if x.shape[0] == 0:
            raise ValueError("cannot index an empty dataset")
        self._fit_x = x
        if x.shape[1] < self.brute_force_dim:
            self._tree = cKDTree(x)
        else:
            self._tree = None
        return self

    @property
    def n_indexed_(self) -> int:
        """Number of indexed rows (available after :meth:`fit`)."""
        self._check_fitted()
        assert self._fit_x is not None
        return self._fit_x.shape[0]

    def kneighbors(
        self,
        query: np.ndarray | None = None,
        n_neighbors: int | None = None,
        exclude_self: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the nearest indexed rows for each query.

        Parameters
        ----------
        query:
            Array of shape ``(m, p)``; defaults to the indexed matrix itself.
        n_neighbors:
            Number of neighbours; defaults to the constructor value.
        exclude_self:
            When querying the fit matrix against itself, drop the trivial
            zero-distance self match (standard for SMOTE / Tomek links).

        Returns
        -------
        (distances, indices):
            Both of shape ``(m, k)``, rows sorted by increasing distance.
        """
        self._check_fitted()
        assert self._fit_x is not None
        if query is None:
            query = self._fit_x
        query = np.asarray(query, dtype=np.float64)
        k = self.n_neighbors if n_neighbors is None else int(n_neighbors)
        if k < 1:
            raise ValueError("n_neighbors must be >= 1")
        k_eff = k + 1 if exclude_self else k
        k_eff = min(k_eff, self.n_indexed_)

        if self._tree is not None:
            dist, idx = self._tree.query(query, k=k_eff)
            if k_eff == 1:
                dist = dist[:, None]
                idx = idx[:, None]
        else:
            full = pairwise_distances(query, self._fit_x)
            idx = np.argsort(full, axis=1, kind="stable")[:, :k_eff]
            dist = np.take_along_axis(full, idx, axis=1)

        if exclude_self:
            dist, idx = self._drop_self(dist, idx)
            dist, idx = dist[:, :k], idx[:, :k]
        return dist, idx

    @staticmethod
    def _drop_self(dist: np.ndarray, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Remove the self match (assumed at distance 0, column 0) per row.

        Handles duplicate points gracefully: the first zero-distance column is
        treated as "self" whether or not the index matches the row number.
        """
        m, k = dist.shape
        rows = np.arange(m)
        cols = np.arange(k)[None, :]
        self_col = np.where(idx == rows[:, None], cols, k)
        first_self = self_col.min(axis=1)
        # Rows where the query point is not among its own neighbours (possible
        # with duplicates) just drop the last column instead.
        first_self = np.where(first_self == k, k - 1, first_self)
        keep = cols != first_self[:, None]
        out_dist = dist[keep].reshape(m, k - 1)
        out_idx = idx[keep].reshape(m, k - 1)
        return out_dist, out_idx

    def _check_fitted(self) -> None:
        if self._fit_x is None:
            raise RuntimeError("NearestNeighbors instance is not fitted yet")
