"""Core contribution of the paper: RD-GBG generation and GBABS sampling.

The public surface of this package is:

* :class:`~repro.core.granular_ball.GranularBall` — a single pure ball.
* :class:`~repro.core.granular_ball.GranularBallSet` — the output of a
  granular-ball generation run, with geometry/consistency helpers.
* :class:`~repro.core.rdgbg.RDGBG` — restricted diffusion-based granular-ball
  generation (Algorithm 1 of the paper).
* :class:`~repro.core.gbabs.GBABS` — granular-ball approximate borderline
  sampling (Algorithm 2 of the paper).
* :mod:`repro.core.engine` — the vectorised execution layer under RD-GBG:
  :class:`~repro.core.engine.GranulationBackend` (pluggable strategies),
  :class:`~repro.core.engine.GranularBallSetBuilder` (SoA ball storage) and
  the indexed default backend shared by sampling, classifiers and the CLI.
"""

from repro.core.granular_ball import GranularBall, GranularBallSet
from repro.core.neighbors import NearestNeighbors, pairwise_distances
from repro.core.rdgbg import RDGBG, RDGBGResult
from repro.core.engine import (
    GranulationBackend,
    GranularBallSetBuilder,
    get_backend,
    register_backend,
)
from repro.core.gbabs import GBABS, BorderlineReport

__all__ = [
    "GranularBall",
    "GranularBallSet",
    "GranulationBackend",
    "GranularBallSetBuilder",
    "NearestNeighbors",
    "pairwise_distances",
    "RDGBG",
    "RDGBGResult",
    "GBABS",
    "BorderlineReport",
    "get_backend",
    "register_backend",
]
