"""Restricted diffusion-based granular-ball generation (RD-GBG, Algorithm 1).

The generator covers a labelled dataset with *pure, non-overlapping* granular
balls.  Each iteration it

1. picks one random candidate centre per class still undivided (larger
   classes first),
2. runs *local-density centre detection* (Eq. 2 and the three rules of
   §IV-B1), which doubles as class-noise detection,
3. grows a ball around each eligible centre by *restricted diffusion*: the
   radius is the locally consistent radius ``CR(c)`` (Eq. 3) clipped by the
   conflict radius ``r_conf(c)`` to the nearest existing ball (Eqs. 4–6), so
   the new ball is pure and cannot overlap any previous ball,

until every undivided sample is a low-density sample, at which point the
remaining samples become radius-0 *orphan* balls.

Two ablation switches mirror the design choices the paper motivates:
``detect_noise=False`` disables the noise-removal rules, and
``enforce_no_overlap=False`` drops the conflict-radius clipping (recovering
the overlap behaviour of earlier GBG methods).

Two execution backends produce bit-identical results under a fixed seed:

* ``backend="legacy"`` — the straight-line reference implementation below
  (full-pool distance scan + ``argsort`` per candidate, centre matrix
  rebuilt per conflict query); kept as the semantic ground truth.
* ``backend="engine"`` (default) — the vectorised engine of
  :mod:`repro.core.engine`: struct-of-arrays ball storage, a squared-norm
  cached shrinking-pool distance kernel with tie-exact prefix selection, and
  a spatial index over ball centres for conflict-radius queries.

The candidate-selection rules (`_detect_center`), the radius clipping
(`_clip_radius`) and member collection (`_collect_members`) are shared by
both backends, so the engine cannot drift from the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.granular_ball import GranularBall, GranularBallSet
from repro.core.neighbors import distances_to

__all__ = ["RDGBG", "RDGBGResult"]

# Relative slack applied when collecting members at distance exactly r.
_RADIUS_RTOL = 1e-12


@dataclass
class RDGBGResult:
    """Everything produced by one RD-GBG run.

    Attributes
    ----------
    ball_set:
        The generated balls (pure, non-overlapping, partitioning the kept
        samples).
    noise_indices:
        Indices of samples removed as detected class noise.
    orphan_indices:
        Indices that ended as radius-0 single-sample balls (the low-density
        and leftover samples of the paper's completeness criterion).
    n_iterations:
        Number of global iterations of the outer loop.
    """

    ball_set: GranularBallSet
    noise_indices: np.ndarray
    orphan_indices: np.ndarray
    n_iterations: int


class RDGBG:
    """Restricted diffusion-based granular-ball generator.

    Parameters
    ----------
    rho:
        Density tolerance ``ρ``: the neighbourhood size used by the
        local-density centre detection rules.  The paper sweeps
        ``ρ ∈ {3, 5, …, 19}`` (Figs. 10–11) and uses 5 in its examples.
    random_state:
        Seed for the per-class random centre choice; fixes the (otherwise
        randomised) output completely.
    detect_noise:
        Apply the ``h(c,l)`` noise-removal rules.  Disabling this is
        ablation A2 of DESIGN.md.
    enforce_no_overlap:
        Clip radii by the conflict radius so balls never overlap.  Disabling
        this is ablation A1.
    backend:
        Execution backend: ``"engine"`` (vectorised, default) or
        ``"legacy"`` (reference).  Both yield bit-identical results for the
        same seed; see :mod:`repro.core.engine` for registering others.
    """

    def __init__(
        self,
        rho: int = 5,
        random_state: int | None = None,
        detect_noise: bool = True,
        enforce_no_overlap: bool = True,
        backend: str = "engine",
    ):
        if rho < 2:
            raise ValueError("rho must be >= 2 so the detection rules are distinct")
        self.rho = int(rho)
        self.random_state = random_state
        self.detect_noise = bool(detect_noise)
        self.enforce_no_overlap = bool(enforce_no_overlap)
        self.backend = str(backend)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, x: np.ndarray, y: np.ndarray) -> RDGBGResult:
        """Run Algorithm 1 on the dataset ``(x, y)``.

        Parameters
        ----------
        x:
            Feature matrix of shape ``(n, p)``.
        y:
            Integer labels of shape ``(n,)``.

        Returns
        -------
        RDGBGResult
        """
        x, y = self._validate(x, y)
        from repro.core.engine import get_backend

        return get_backend(self.backend).run(self, x, y)

    def generate_batches(
        self, x: np.ndarray, y: np.ndarray, batch_size: int
    ) -> RDGBGResult:
        """Granulate ``(x, y)`` in contiguous chunks and merge the results.

        For datasets too large for a single shrinking-pool pass, each chunk
        of ``batch_size`` samples is granulated independently (chunk ``i``
        uses ``random_state + i`` when a seed is set) and the per-chunk
        results are merged with member/noise/orphan indices mapped back to
        the global dataset.  Purity and the within-chunk partition/no-overlap
        guarantees are preserved; balls from *different* chunks may overlap,
        which is the price of never holding more than one chunk's pool.
        """
        x, y = self._validate(x, y)
        from repro.core.engine import generate_in_batches

        return generate_in_batches(self, x, y, batch_size=batch_size)

    def _validate(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D feature matrix")
        if y.shape != (x.shape[0],):
            raise ValueError("y must be 1-D and aligned with x")
        if x.shape[0] == 0:
            raise ValueError("cannot granulate an empty dataset")
        if not np.isfinite(x).all():
            raise ValueError("x contains NaN or infinite values")
        return x, y

    # ------------------------------------------------------------------
    # legacy reference backend
    # ------------------------------------------------------------------

    def _generate_legacy(self, x: np.ndarray, y: np.ndarray) -> RDGBGResult:
        """The straight-line reference implementation of Algorithm 1."""
        n = x.shape[0]
        rng = np.random.default_rng(self.random_state)
        in_u = np.ones(n, dtype=bool)       # undivided sample set U
        in_l = np.zeros(n, dtype=bool)      # low-density sample set L (⊆ U)
        is_noise = np.zeros(n, dtype=bool)  # removed as class noise

        balls: list[GranularBall] = []
        # Parallel arrays of existing ball geometry for fast r_conf queries.
        centers: list[np.ndarray] = []
        radii: list[float] = []

        n_iterations = 0
        while True:
            t_idx = np.flatnonzero(in_u & ~in_l)
            if t_idx.size == 0:
                break
            n_iterations += 1
            for ci in self._draw_candidates(t_idx, y, rng):
                if not in_u[ci] or in_l[ci]:
                    # Swallowed by a ball generated earlier in this round.
                    continue
                self._process_candidate(
                    ci, x, y, in_u, in_l, is_noise, balls, centers, radii
                )

        # Completeness: leftover (all low-density) samples become orphan GBs.
        orphan_idx = np.flatnonzero(in_u)
        for oi in orphan_idx:
            balls.append(
                GranularBall(
                    center=x[oi].copy(),
                    radius=0.0,
                    label=int(y[oi]),
                    indices=np.array([oi], dtype=np.intp),
                )
            )

        return RDGBGResult(
            ball_set=GranularBallSet(balls, n_source_samples=n),
            noise_indices=np.flatnonzero(is_noise),
            orphan_indices=orphan_idx,
            n_iterations=n_iterations,
        )

    # ------------------------------------------------------------------
    # internals shared with the engine backend
    # ------------------------------------------------------------------

    @staticmethod
    def _draw_candidates(
        t_idx: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> list[int]:
        """One random candidate centre per class in T, larger classes first.

        Groups T by class with a single stable argsort: within each class
        the candidates keep ascending index order, and each class pool is
        byte-identical to the boolean-mask selection ``t_idx[y[t_idx] ==
        cls]``, so the RNG consumption (one ``choice`` per class, larger
        classes first, class value breaking count ties) is reproducible
        across engine versions.
        """
        y_t = y[t_idx]
        grouped = np.argsort(y_t, kind="stable")
        sorted_y = y_t[grouped]
        starts = np.concatenate(
            ([0], np.flatnonzero(sorted_y[1:] != sorted_y[:-1]) + 1, [y_t.size])
        )
        counts = np.diff(starts)
        order = np.argsort(-counts, kind="stable")
        candidates = []
        for j in order:
            # Stable argsort keeps ascending positions within each class.
            pool = t_idx[grouped[starts[j] : starts[j + 1]]]
            candidates.append(int(rng.choice(pool)))
        return candidates

    def _process_candidate(
        self,
        ci: int,
        x: np.ndarray,
        y: np.ndarray,
        in_u: np.ndarray,
        in_l: np.ndarray,
        is_noise: np.ndarray,
        balls: list[GranularBall],
        centers: list[np.ndarray],
        radii: list[float],
    ) -> None:
        """Centre detection + ball construction for a single candidate."""
        u_idx = np.flatnonzero(in_u)
        others = u_idx[u_idx != ci]
        if others.size == 0:
            in_l[ci] = True
            return

        dist = distances_to(x[ci], x[others])
        order = np.argsort(dist, kind="stable")
        sorted_idx = others[order]
        sorted_dist = dist[order]

        if y[sorted_idx[0]] != y[ci]:
            verdict, sorted_idx, sorted_dist = self._detect_center(
                ci, y, in_u, in_l, is_noise, sorted_idx, sorted_dist
            )
            if not verdict:
                return
            if sorted_idx.size == 0:
                in_l[ci] = True
                return

        radius, omega = self._diffusion_radius(
            ci, x, y, sorted_idx, sorted_dist, centers, radii
        )
        if radius <= 0.0:
            # Centre sits on the edge of the undivided set; defer it.
            in_l[ci] = True
            return

        members = self._collect_members(ci, sorted_idx, sorted_dist, omega, radius)
        balls.append(
            GranularBall(
                center=x[ci].copy(),
                radius=float(radius),
                label=int(y[ci]),
                indices=members,
            )
        )
        centers.append(x[ci])
        radii.append(float(radius))
        in_u[members] = False
        in_l[members] = False

    def _detect_center(
        self,
        ci: int,
        y: np.ndarray,
        in_u: np.ndarray,
        in_l: np.ndarray,
        is_noise: np.ndarray,
        sorted_idx: np.ndarray,
        sorted_dist: np.ndarray,
    ) -> tuple[bool, np.ndarray, np.ndarray]:
        """Apply the local-density centre detection rules (§IV-B1).

        Called only when the candidate's nearest neighbour is heterogeneous.
        Returns ``(eligible, sorted_idx, sorted_dist)`` with the neighbour
        arrays possibly shortened when the nearest neighbour was removed as
        noise (the ``h == 1`` rule).  ``sorted_idx`` may be any sorted prefix
        of the undivided neighbours as long as it holds at least
        ``min(rho, pool size)`` entries, which is what lets the engine
        backend reuse this rule on its partial prefixes.
        """
        if not self.detect_noise:
            # Without noise handling the candidate simply cannot anchor a
            # pure ball; treat it as low density.
            in_l[ci] = True
            return False, sorted_idx, sorted_dist

        rho_eff = min(self.rho, sorted_idx.size)
        if rho_eff < 2:
            # Too few neighbours to distinguish noise from low density;
            # defer the candidate rather than risk deleting a real sample.
            in_l[ci] = True
            return False, sorted_idx, sorted_dist
        h = int(np.sum(y[sorted_idx[:rho_eff]] != y[ci]))
        if h == rho_eff:
            # All ρ nearest neighbours disagree: the candidate is class noise.
            in_u[ci] = False
            in_l[ci] = False
            is_noise[ci] = True
            return False, sorted_idx, sorted_dist
        if h == 1:
            # Lone dissenting nearest neighbour is the noise sample.
            nn = sorted_idx[0]
            in_u[nn] = False
            in_l[nn] = False
            is_noise[nn] = True
            return True, sorted_idx[1:], sorted_dist[1:]
        # 1 < h < ρ: the candidate is a low-density sample.
        in_l[ci] = True
        return False, sorted_idx, sorted_dist

    def _diffusion_radius(
        self,
        ci: int,
        x: np.ndarray,
        y: np.ndarray,
        sorted_idx: np.ndarray,
        sorted_dist: np.ndarray,
        centers: list[np.ndarray],
        radii: list[float],
    ) -> tuple[float, int]:
        """Radius rule of §IV-B2: ``CR(c)`` clipped by ``r_conf(c)``.

        ``sorted_idx``/``sorted_dist`` list the undivided neighbours of the
        centre in increasing distance order, nearest first and guaranteed
        homogeneous.  Returns ``(radius, omega)`` where ``omega`` is the
        length of the homogeneous neighbour prefix — the caller caps ball
        membership at ``omega`` so distance ties with heterogeneous
        neighbours can never break purity.
        """
        homo = y[sorted_idx] == y[ci]
        omega = int(homo.size if homo.all() else np.argmin(homo))
        if omega == 0:
            return 0.0, 0

        if self.enforce_no_overlap and centers:
            center_mat = np.vstack(centers)
            gap = distances_to(x[ci], center_mat) - np.asarray(radii)
            r_conf = float(gap.min())
        else:
            r_conf = np.inf
        return self._clip_radius(sorted_dist, omega, r_conf), omega

    @staticmethod
    def _clip_radius(sorted_dist: np.ndarray, omega: int, r_conf: float) -> float:
        """``CR(c)`` (Eq. 3) clipped by the conflict radius (Eqs. 4–6)."""
        cr = float(sorted_dist[omega - 1])
        if cr <= r_conf:
            return cr
        # Restricted maximum consistent radius r_max (Eq. 6): the farthest
        # undivided sample not crossing into an existing ball.  Because the
        # first heterogeneous neighbour lies at distance >= CR > r_conf, any
        # sample within r_conf is homogeneous and purity is preserved.
        within = sorted_dist[:omega] <= r_conf
        if not np.any(within):
            return 0.0
        return float(sorted_dist[:omega][within].max())

    @staticmethod
    def _collect_members(
        ci: int,
        sorted_idx: np.ndarray,
        sorted_dist: np.ndarray,
        omega: int,
        radius: float,
    ) -> np.ndarray:
        """Member indices of a new ball: the centre plus the in-radius prefix.

        Membership is capped at the homogeneous prefix ω: a heterogeneous
        neighbour can sit at *exactly* the radius distance (tied distances),
        and Eq. 7 must never absorb it into a pure ball.
        """
        member_mask = (
            sorted_dist[:omega] <= radius * (1.0 + _RADIUS_RTOL) + 1e-15
        )
        return np.concatenate(
            (np.array([ci], dtype=np.intp), sorted_idx[:omega][member_mask])
        )
