"""Capped exponential backoff with jitter — the one retry-delay policy.

Two independent retry loops grew the same delay arithmetic: the serving
:class:`~repro.serving.client.PredictClient` (retrying 503/504/connection
failures against a reloading server) and the store resilience layer
(:mod:`repro.experiments.resilience`, retrying transient backend errors
against a browning-out object store).  Duplicated backoff code drifts —
one side gains jitter bounds or a ``Retry-After`` floor and the other
silently doesn't — so the policy lives here once and both consume it.

The policy is **deterministically testable**: the random source is
injected (any object with a ``random() -> [0, 1)`` method, i.e. a seeded
:class:`random.Random`), and :meth:`BackoffPolicy.delay` is a pure
function of ``(attempt, floor, rng state)``.  Nothing here sleeps — the
caller owns the clock (``time.sleep`` for threads, ``asyncio.sleep`` for
coroutines), which is what lets tests drive retry schedules without
waiting real time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["BackoffPolicy"]


@dataclass
class BackoffPolicy:
    """Delay schedule: ``base * factor**attempt``, capped, jittered.

    Parameters
    ----------
    base:
        First retry delay in seconds (attempt 0).
    factor:
        Growth per attempt (2.0 = classic doubling).
    cap:
        Ceiling applied to the un-jittered delay — also caps any
        ``floor`` a caller passes (a server-sent ``Retry-After`` must
        not stall a client for minutes).
    jitter:
        ``(low, high)`` multiplier range drawn uniformly per delay, so a
        fleet that failed in lock-step does not retry in lock-step.
        ``(1.0, 1.0)`` disables jitter.  Note the multiplier applies
        *after* the cap, matching the historical client behaviour: the
        jittered delay may exceed ``cap`` by up to ``high``.
    rng:
        Random source for the jitter draw; inject a seeded
        :class:`random.Random` for reproducible schedules.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 1.0
    jitter: tuple[float, float] = (0.5, 1.5)
    rng: random.Random = field(default_factory=random.Random)

    def delay(self, attempt: int, floor: float = 0.0) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based).

        ``floor`` raises the un-jittered delay (a server-sent
        ``Retry-After``, a lease interval) but never past ``cap``.
        """
        raw = self.base * (self.factor ** max(0, int(attempt)))
        wait = min(self.cap, max(raw, floor))
        low, high = self.jitter
        return wait * (low + (high - low) * self.rng.random())
