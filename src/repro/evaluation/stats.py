"""Wilcoxon signed-rank test, implemented from first principles.

Table III of the paper compares GBABS-DT against the other pipelines with a
two-sided Wilcoxon signed-rank test at α = 0.05.  This implementation uses
the classic formulation (Wilcoxon 1945; Pratt's zero handling optional):

* zero differences are discarded (``zero_method="wilcox"``, scipy default),
* tied absolute differences receive average ranks,
* for small samples (n ≤ 25) the exact null distribution of the rank sum —
  including tied average ranks — is enumerated by dynamic programming,
* for larger samples the normal approximation with tie correction is used.

The test suite cross-checks p-values against ``scipy.stats.wilcoxon``.  One
deliberate difference: with tied |differences| and small n, scipy's "exact"
method falls back to the classical *untied* 1..n rank table (a documented
approximation), whereas this implementation enumerates the null distribution
conditioned on the observed average ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank", "rankdata_average"]


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a Wilcoxon signed-rank test.

    Attributes
    ----------
    statistic:
        ``min(W+, W-)`` — the smaller of the signed rank sums.
    p_value:
        Two-sided (or one-sided, per ``alternative``) p-value.
    n_effective:
        Pair count after zero-difference removal.
    method:
        ``"exact"`` or ``"normal"``.
    """

    statistic: float
    p_value: float
    n_effective: int
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject the null at level ``alpha``?"""
        return self.p_value < alpha


def rankdata_average(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing their average rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg = 0.5 * (i + j) + 1.0
        ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def _exact_sf(ranks: np.ndarray, w: float) -> float:
    """P(W+ >= w) under the exact signed-rank null for the given ranks.

    Dynamic programming over the 2^n sign assignments: ``counts[s]`` is the
    number of assignments with (doubled) positive-rank sum ``s``.  Ranks are
    doubled so tied average ranks (multiples of 0.5) stay integral, which
    matches scipy's modern behaviour of computing exact p-values with ties.
    """
    scaled = np.round(2.0 * np.asarray(ranks)).astype(np.int64)
    max_sum = int(scaled.sum())
    counts = np.zeros(max_sum + 1, dtype=np.float64)
    counts[0] = 1.0
    for rank in scaled:
        shifted = np.zeros_like(counts)
        shifted[rank:] = counts[: counts.size - rank]
        counts = counts + shifted
    total = counts.sum()
    w_scaled = int(np.ceil(2.0 * w - 1e-9))
    return float(counts[w_scaled:].sum() / total)


def wilcoxon_signed_rank(
    a: np.ndarray,
    b: np.ndarray,
    alternative: str = "two-sided",
) -> WilcoxonResult:
    """Paired Wilcoxon signed-rank test of ``a`` vs ``b``.

    Parameters
    ----------
    a, b:
        Paired measurements (e.g. per-dataset accuracies of two pipelines).
    alternative:
        ``"two-sided"``, ``"greater"`` (a tends larger) or ``"less"``.

    Returns
    -------
    WilcoxonResult
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError("alternative must be two-sided, greater or less")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("a and b must be 1-D arrays of equal length")

    diff = a - b
    diff = diff[diff != 0.0]
    n = diff.size
    if n == 0:
        raise ValueError("all paired differences are zero; test undefined")

    abs_ranks = rankdata_average(np.abs(diff))
    w_plus = float(abs_ranks[diff > 0].sum())
    w_minus = float(abs_ranks[diff < 0].sum())
    statistic = min(w_plus, w_minus)

    if n <= 25:
        method = "exact"
        if alternative == "two-sided":
            p = 2.0 * _exact_sf(abs_ranks, max(w_plus, w_minus))
        elif alternative == "greater":
            p = _exact_sf(abs_ranks, w_plus)
        else:
            p = _exact_sf(abs_ranks, w_minus)
        p = min(1.0, p)
    else:
        method = "normal"
        mean = n * (n + 1) / 4.0
        # Tie correction (sum over tie groups of t^3 - t) / 48.
        _, tie_counts = np.unique(np.abs(diff), return_counts=True)
        tie_term = float(np.sum(tie_counts**3 - tie_counts)) / 48.0
        var = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term
        sd = np.sqrt(var)
        if sd == 0:
            raise ValueError("zero variance in Wilcoxon normal approximation")
        from scipy.stats import norm

        if alternative == "two-sided":
            z = (max(w_plus, w_minus) - mean) / sd
            p = min(1.0, 2.0 * norm.sf(z))
        elif alternative == "greater":
            z = (w_plus - mean) / sd
            p = float(norm.sf(z))
        else:
            z = (w_minus - mean) / sd
            p = float(norm.sf(z))

    return WilcoxonResult(
        statistic=statistic, p_value=float(p), n_effective=n, method=method
    )
