"""Evaluation harness: metrics, cross-validation, statistics and ranking."""

from repro.evaluation.cross_validation import (
    CVResult,
    FoldPlan,
    evaluate_pipeline,
    plan_folds,
    run_fold,
    stratified_kfold_indices,
)
from repro.evaluation.metrics import (
    METRICS,
    accuracy_score,
    compute_metric,
    confusion_matrix,
    g_mean_score,
    per_class_recall,
    precision_recall_f1,
)
from repro.evaluation.posthoc import (
    FriedmanResult,
    friedman_test,
    nemenyi_critical_difference,
)
from repro.evaluation.ranking import average_ranks, rank_methods
from repro.evaluation.stats import (
    WilcoxonResult,
    rankdata_average,
    wilcoxon_signed_rank,
)

__all__ = [
    "CVResult",
    "FoldPlan",
    "evaluate_pipeline",
    "plan_folds",
    "run_fold",
    "stratified_kfold_indices",
    "METRICS",
    "accuracy_score",
    "compute_metric",
    "confusion_matrix",
    "g_mean_score",
    "per_class_recall",
    "precision_recall_f1",
    "average_ranks",
    "rank_methods",
    "WilcoxonResult",
    "rankdata_average",
    "wilcoxon_signed_rank",
    "FriedmanResult",
    "friedman_test",
    "nemenyi_critical_difference",
]
