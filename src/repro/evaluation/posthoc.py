"""Friedman test and Nemenyi post-hoc analysis.

The standard companion statistics to Fig. 9-style multi-method/multi-dataset
comparisons (Demšar, 2006): the Friedman test asks whether *any* method
differs, and the Nemenyi critical difference tells which pairs of average
ranks differ significantly.  They extend the paper's Wilcoxon analysis
(Table III) to the full eight-sampler comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2, f as f_dist

from repro.evaluation.stats import rankdata_average

__all__ = ["FriedmanResult", "friedman_test", "nemenyi_critical_difference"]

# Two-tailed studentized range statistic q_alpha / sqrt(2) for the Nemenyi
# test (Demšar 2006, Table 5), indexed by the number of compared methods.
_NEMENYI_Q = {
    0.05: {2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949,
           8: 3.031, 9: 3.102, 10: 3.164},
    0.10: {2: 1.645, 3: 2.052, 4: 2.291, 5: 2.459, 6: 2.589, 7: 2.693,
           8: 2.780, 9: 2.855, 10: 2.920},
}


@dataclass(frozen=True)
class FriedmanResult:
    """Outcome of a Friedman test over a methods × datasets score matrix.

    Attributes
    ----------
    statistic:
        The Friedman chi-square statistic.
    p_value:
        Chi-square tail probability with ``k - 1`` degrees of freedom.
    iman_davenport_statistic, iman_davenport_p_value:
        The less conservative F-distributed correction.
    average_ranks:
        Mean rank per method (1 = best), in input order.
    n_methods, n_datasets:
        Shape of the comparison.
    """

    statistic: float
    p_value: float
    iman_davenport_statistic: float
    iman_davenport_p_value: float
    average_ranks: dict[str, float]
    n_methods: int
    n_datasets: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject "all methods perform alike" at level ``alpha``?"""
        return self.p_value < alpha


def friedman_test(
    scores: dict[str, np.ndarray], higher_is_better: bool = True
) -> FriedmanResult:
    """Friedman test over ``method -> scores-per-dataset``.

    Ties within a dataset get average ranks; at least two methods and two
    datasets are required.
    """
    names = list(scores)
    if len(names) < 2:
        raise ValueError("need at least two methods")
    matrix = np.vstack([np.asarray(scores[n], dtype=np.float64) for n in names])
    k, n = matrix.shape
    if n < 2:
        raise ValueError("need at least two datasets")

    signed = -matrix if higher_is_better else matrix
    ranks = np.empty_like(signed)
    for j in range(n):
        ranks[:, j] = rankdata_average(signed[:, j])
    mean_ranks = ranks.mean(axis=1)

    chi_sq = 12.0 * n / (k * (k + 1)) * (
        float(np.sum(mean_ranks**2)) * 1.0 - k * (k + 1) ** 2 / 4.0
    )
    # Guard the degenerate all-tied case against tiny negative round-off.
    chi_sq = max(chi_sq, 0.0)
    p = float(chi2.sf(chi_sq, df=k - 1))

    denominator = n * (k - 1) - chi_sq
    if denominator <= 0:
        # Perfectly consistent rankings: the F correction diverges.
        f_stat = np.inf
        f_p = 0.0
    else:
        f_stat = (n - 1) * chi_sq / denominator
        f_p = float(f_dist.sf(f_stat, k - 1, (k - 1) * (n - 1)))

    return FriedmanResult(
        statistic=float(chi_sq),
        p_value=p,
        iman_davenport_statistic=float(f_stat),
        iman_davenport_p_value=f_p,
        average_ranks={name: float(r) for name, r in zip(names, mean_ranks)},
        n_methods=k,
        n_datasets=n,
    )


def nemenyi_critical_difference(
    n_methods: int, n_datasets: int, alpha: float = 0.05
) -> float:
    """Nemenyi critical difference of average ranks.

    Two methods differ significantly when their average ranks differ by at
    least the returned value.
    """
    if alpha not in _NEMENYI_Q:
        raise ValueError(f"alpha must be one of {sorted(_NEMENYI_Q)}")
    table = _NEMENYI_Q[alpha]
    if n_methods not in table:
        raise ValueError(
            f"Nemenyi table covers 2..10 methods, got {n_methods}"
        )
    if n_datasets < 2:
        raise ValueError("need at least two datasets")
    q = table[n_methods]
    return float(q * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))
