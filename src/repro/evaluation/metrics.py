"""Classification metrics used by the paper's evaluation.

``Accuracy`` drives Tables II–IV; ``G-mean`` (the geometric mean of
per-class recalls, reducing to ``sqrt(sensitivity * specificity)`` for two
classes) drives the imbalanced comparison of Fig. 9.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "per_class_recall",
    "g_mean_score",
    "precision_recall_f1",
    "METRICS",
    "compute_metric",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be 1-D arrays of equal length")
    if y_true.size == 0:
        raise ValueError("metrics are undefined for empty inputs")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    labels: np.ndarray | None = None,
) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = true class ``labels[i]`` predicted ``labels[j]``.

    ``labels`` defaults to the sorted union of true and predicted labels, so
    predictions of classes absent from ``y_true`` still land in a column.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    k = labels.size

    # Factorise both vectors against the label vocabulary in one pass:
    # positions come from a sorted view of ``labels``, mapped back to the
    # caller's ordering, so explicit label orderings are preserved.
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]

    def _encode(values: np.ndarray) -> np.ndarray:
        if k == 0:
            raise KeyError(values[0])
        pos = np.searchsorted(sorted_labels, values)
        pos = np.minimum(pos, k - 1)
        known = sorted_labels[pos] == values
        if not np.all(known):
            raise KeyError(np.asarray(values)[~known][0])
        return order[pos]

    out = np.zeros((k, k), dtype=np.intp)
    np.add.at(out, (_encode(y_true), _encode(y_pred)), 1)
    return out


def per_class_recall(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Recall of every class present in ``y_true`` (sorted by label)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(y_true)
    recalls = np.empty(classes.size, dtype=np.float64)
    for i, cls in enumerate(classes):
        mask = y_true == cls
        recalls[i] = float(np.mean(y_pred[mask] == cls))
    return recalls


def g_mean_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Geometric mean of per-class recalls (0 if any class is fully missed)."""
    recalls = per_class_recall(y_true, y_pred)
    if np.any(recalls == 0.0):
        return 0.0
    return float(np.exp(np.mean(np.log(recalls))))


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray
) -> dict[str, np.ndarray | float]:
    """Per-class precision/recall/F1 plus macro averages."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(y_true)
    precision = np.empty(classes.size)
    recall = np.empty(classes.size)
    for i, cls in enumerate(classes):
        predicted = y_pred == cls
        actual = y_true == cls
        precision[i] = (
            float(np.mean(y_true[predicted] == cls)) if predicted.any() else 0.0
        )
        recall[i] = float(np.mean(y_pred[actual] == cls))
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.where(denom > 0, denom, 1), 0.0)
    return {
        "classes": classes,
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "macro_precision": float(precision.mean()),
        "macro_recall": float(recall.mean()),
        "macro_f1": float(f1.mean()),
    }


METRICS = {
    "accuracy": accuracy_score,
    "g_mean": g_mean_score,
}


def compute_metric(name: str, y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Metric dispatch by name (``accuracy`` or ``g_mean``)."""
    if name not in METRICS:
        raise ValueError(f"unknown metric {name!r}; available: {tuple(METRICS)}")
    return METRICS[name](y_true, y_pred)
