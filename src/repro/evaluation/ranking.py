"""Per-dataset method ranking, the presentation device of Fig. 9.

The paper ranks the eight sampling methods on every dataset by testing
G-mean (1 = best).  :func:`rank_methods` produces that rank matrix from a
``method -> scores-over-datasets`` mapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_methods", "average_ranks"]


def rank_methods(
    scores: dict[str, np.ndarray],
    higher_is_better: bool = True,
    method: str = "competition",
) -> dict[str, np.ndarray]:
    """Rank methods per dataset.

    Parameters
    ----------
    scores:
        Mapping ``method name -> scores`` where each array covers the same
        datasets in the same order.
    higher_is_better:
        G-mean and accuracy are maximised.
    method:
        ``"competition"`` ("1224"-style, ties share the best rank — this
        yields the integer ranks shown in Fig. 9) or ``"average"``.

    Returns
    -------
    dict
        ``method name -> ranks`` (same shape as the inputs, 1 = best).
    """
    if method not in ("competition", "average"):
        raise ValueError("method must be 'competition' or 'average'")
    names = list(scores)
    if not names:
        raise ValueError("scores must contain at least one method")
    matrix = np.vstack([np.asarray(scores[n], dtype=np.float64) for n in names])
    if matrix.ndim != 2:
        raise ValueError("each method needs a 1-D score array")
    signed = -matrix if higher_is_better else matrix

    n_methods, n_datasets = matrix.shape
    ranks = np.empty_like(signed)
    for j in range(n_datasets):
        col = signed[:, j]
        order = np.argsort(col, kind="stable")
        r = np.empty(n_methods, dtype=np.float64)
        i = 0
        while i < n_methods:
            k = i
            while k + 1 < n_methods and col[order[k + 1]] == col[order[i]]:
                k += 1
            if method == "competition":
                value = i + 1.0
            else:
                value = 0.5 * (i + k) + 1.0
            r[order[i : k + 1]] = value
            i = k + 1
        ranks[:, j] = r
    return {name: ranks[i] for i, name in enumerate(names)}


def average_ranks(ranks: dict[str, np.ndarray]) -> dict[str, float]:
    """Mean rank of every method across datasets (lower is better)."""
    return {name: float(np.mean(r)) for name, r in ranks.items()}
