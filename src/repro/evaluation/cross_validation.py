"""Repeated stratified cross-validation with in-fold resampling.

The paper's protocol (§V-A3): five-fold cross-validation repeated five
times, sampling applied to the *training* portion of each fold only, the
classifier trained on the resampled fold and scored on the untouched test
fold.  :func:`evaluate_pipeline` implements exactly that and returns both
per-fold values and aggregate statistics.

Fold scheduling is split into pure pieces so serial and parallel execution
are bit-identical:

* :func:`plan_folds` derives every fold's split seed and sampler/classifier
  seed from the master seed (``SeedSequence`` → per-repetition state, plus
  a global fold counter) without running anything.
* :func:`run_fold` evaluates exactly one planned fold.
* :func:`evaluate_pipeline` executes the plan — inline for ``n_jobs=1``, or
  fanned over a ``ProcessPoolExecutor`` for ``n_jobs > 1`` — and assembles
  the per-fold results *in plan order*, so the returned :class:`CVResult`
  is float-for-float identical regardless of ``n_jobs``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.evaluation.metrics import compute_metric

__all__ = [
    "stratified_kfold_indices",
    "CVResult",
    "FoldPlan",
    "plan_folds",
    "run_fold",
    "resolve_n_jobs",
    "collect_cv_result",
    "splits_for_plan",
    "run_folds_pooled",
    "evaluate_pipeline",
]


def stratified_kfold_indices(
    y: np.ndarray,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold split index pairs.

    Samples of each class are dealt round-robin over the folds (after an
    optional shuffle), so every fold's class distribution mirrors the whole
    dataset as closely as integer counts allow.  Classes smaller than
    ``n_splits`` simply appear in fewer folds — the split never fails.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    rng = np.random.default_rng(random_state)
    fold_of = np.empty(y.shape[0], dtype=np.intp)
    offset = 0
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        if shuffle:
            members = rng.permutation(members)
        fold_of[members] = (np.arange(members.size) + offset) % n_splits
        # Stagger the starting fold between classes so small classes do not
        # all pile into fold 0.
        offset += members.size
    splits = []
    for fold in range(n_splits):
        test = np.flatnonzero(fold_of == fold)
        train = np.flatnonzero(fold_of != fold)
        if test.size == 0 or train.size == 0:
            raise ValueError(
                f"n_splits={n_splits} too large for dataset of {y.size} samples"
            )
        splits.append((train, test))
    return splits


@dataclass
class CVResult:
    """Per-fold metric values plus aggregates for one pipeline."""

    metric_values: dict[str, np.ndarray]
    sampling_ratios: np.ndarray
    n_folds: int
    means: dict[str, float] = field(init=False)
    stds: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.means = {k: float(v.mean()) for k, v in self.metric_values.items()}
        self.stds = {k: float(v.std()) for k, v in self.metric_values.items()}

    @property
    def mean_sampling_ratio(self) -> float:
        """Average kept fraction of the training folds (1.0 for oversamplers)."""
        return float(self.sampling_ratios.mean())

    def exactly_equal(self, other: "CVResult") -> bool:
        """Float-for-float equality — the serial/parallel parity contract.

        ``means``/``stds`` are derived from ``metric_values``, so comparing
        the per-fold arrays (plus ratios and the fold count) is exhaustive.
        """
        if (
            self.n_folds != other.n_folds
            or set(self.metric_values) != set(other.metric_values)
        ):
            return False
        if not all(
            np.array_equal(values, other.metric_values[name])
            for name, values in self.metric_values.items()
        ):
            return False
        return bool(np.array_equal(self.sampling_ratios, other.sampling_ratios))


@dataclass(frozen=True)
class FoldPlan:
    """Everything needed to execute one CV fold, derived without running it.

    Attributes
    ----------
    rep, fold:
        Repetition index and fold index within that repetition.
    index:
        Global fold position (``rep * n_splits + fold``); per-fold results
        are always assembled in this order.
    split_seed:
        Seed of :func:`stratified_kfold_indices` for this repetition (shared
        by all folds of the repetition).
    fold_seed:
        Seed handed to the sampler and classifier factories for this fold.
    """

    rep: int
    fold: int
    index: int
    split_seed: int
    fold_seed: int


def plan_folds(
    n_splits: int, n_repeats: int, random_state: int | None
) -> list[FoldPlan]:
    """Pure seed derivation for every fold of a repeated stratified CV.

    Reproduces the historical serial derivation exactly: one
    ``SeedSequence(random_state)`` yields ``n_repeats`` split seeds and
    ``n_repeats`` fold-seed bases; fold ``index`` (counted across
    repetitions) gets ``base[rep] + index``.
    """
    seeds = np.random.SeedSequence(random_state).generate_state(n_repeats * 2 + 1)
    plans = []
    index = 0
    for rep in range(n_repeats):
        for fold in range(n_splits):
            plans.append(
                FoldPlan(
                    rep=rep,
                    fold=fold,
                    index=index,
                    split_seed=int(seeds[rep]),
                    fold_seed=int(seeds[n_repeats + rep]) + index,
                )
            )
            index += 1
    return plans


def run_fold(
    x: np.ndarray,
    y: np.ndarray,
    train: np.ndarray,
    test: np.ndarray,
    classifier_factory: Callable[[int], object],
    sampler_factory: Callable[[int], object] | None,
    fold_seed: int,
    metrics: tuple[str, ...],
) -> tuple[dict[str, float], float]:
    """Evaluate one fold; returns (metric values, realised sampling ratio)."""
    x_train, y_train = x[train], y[train]
    if sampler_factory is not None:
        sampler = sampler_factory(fold_seed)
        x_fit, y_fit = sampler.fit_resample(x_train, y_train)
        if np.unique(y_fit).size < 2 and np.unique(y_train).size >= 2:
            # A sampler must not collapse the fold to one class;
            # fall back to the raw fold (keeps the protocol total).
            x_fit, y_fit = x_train, y_train
            ratio = 1.0
        else:
            ratio = y_fit.size / y_train.size
    else:
        x_fit, y_fit = x_train, y_train
        ratio = 1.0

    clf = classifier_factory(fold_seed)
    clf.fit(x_fit, y_fit)
    y_pred = clf.predict(x[test])
    return {m: compute_metric(m, y[test], y_pred) for m in metrics}, ratio


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a positive worker count.

    ``None`` or ``0`` mean "all cores"; negative values count back from the
    core count (``-1`` = all cores, ``-2`` = all but one, …).
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return int(n_jobs)


def collect_cv_result(
    fold_results: list[tuple[dict[str, float], float]],
    metrics: tuple[str, ...],
    n_folds: int,
) -> CVResult:
    """Assemble per-fold (metrics, ratio) pairs — in plan order — into a
    :class:`CVResult`."""
    return CVResult(
        metric_values={
            m: np.asarray([fr[0][m] for fr in fold_results]) for m in metrics
        },
        sampling_ratios=np.asarray([fr[1] for fr in fold_results]),
        n_folds=n_folds,
    )


def splits_for_plan(
    y: np.ndarray, n_splits: int, plan: list[FoldPlan]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """All split index pairs of a fold plan, indexed by ``FoldPlan.index``."""
    splits: list[tuple[np.ndarray, np.ndarray]] = []
    for rep in range(len(plan) // n_splits):
        splits.extend(
            stratified_kfold_indices(
                y,
                n_splits=n_splits,
                shuffle=True,
                random_state=plan[rep * n_splits].split_seed,
            )
        )
    return splits


# ----------------------------------------------------------------------
# Process-pool fold execution, shared by evaluate_pipeline (one payload)
# and the experiment executor (one payload per grid cell).  Payload
# arrays — (x, y, splits) — live in the zero-copy shared-memory data
# plane (:mod:`repro.experiments.data_plane`): the parent publishes each
# unique block once, workers attach read-only views by block id, and a
# task stays a small (block meta, fold index, fold seed, factories,
# metrics) tuple, so per-worker shipped bytes are O(unique blocks) rather
# than O(payloads × workers).
# ----------------------------------------------------------------------


def _pool_fold_task(task) -> tuple[tuple[dict[str, float], float], float]:
    """Run one planned fold against a shared block; returns (result, secs)."""
    import time

    from repro.experiments.data_plane import cv_block_views

    meta, fold_index, fold_seed, classifier_factory, sampler_factory, metrics = task
    start = time.perf_counter()
    x, y, splits = cv_block_views(meta)
    train, test = splits[fold_index]
    result = run_fold(
        x, y, train, test, classifier_factory, sampler_factory, fold_seed, metrics
    )
    return result, time.perf_counter() - start


def run_folds_pooled(payloads, tasks, n_jobs: int, chunksize: int = 1):
    """Fan fold tasks over a worker pool; returns results in task order.

    ``payloads`` are ``(x, y, splits, classifier_factory, sampler_factory,
    metrics)`` tuples; ``tasks`` are ``(payload index, fold index, fold
    seed)`` triples.  Each payload's arrays are published to the shared
    data plane once and unlinked when all tasks have finished.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.experiments.data_plane import SharedArrayPlane, publish_cv_block

    with SharedArrayPlane() as plane:
        metas, extras = [], []
        for i, (x, y, splits, clf_factory, smp_factory, metrics) in enumerate(
            payloads
        ):
            metas.append(publish_cv_block(plane, i, x, y, splits))
            extras.append((clf_factory, smp_factory, metrics))
        pool_tasks = [
            (metas[pi], fold_index, fold_seed, *extras[pi])
            for pi, fold_index, fold_seed in tasks
        ]
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            return [
                result
                for result, _seconds in pool.map(
                    _pool_fold_task, pool_tasks, chunksize=chunksize
                )
            ]


def evaluate_pipeline(
    x: np.ndarray,
    y: np.ndarray,
    classifier_factory: Callable[[int], object],
    sampler_factory: Callable[[int], object] | None = None,
    n_splits: int = 5,
    n_repeats: int = 5,
    metrics: tuple[str, ...] = ("accuracy",),
    random_state: int | None = 0,
    n_jobs: int | None = 1,
) -> CVResult:
    """Repeated stratified CV of a (sampler → classifier) pipeline.

    Parameters
    ----------
    x, y:
        The (possibly noise-injected) dataset.
    classifier_factory:
        ``factory(seed) -> estimator`` with ``fit``/``predict``; a fresh
        estimator per fold keeps folds independent.
    sampler_factory:
        ``factory(seed) -> sampler`` with ``fit_resample``, applied to the
        training fold only; ``None`` trains on the raw fold.
    n_splits, n_repeats:
        The paper's protocol is 5 × 5.
    metrics:
        Names resolved through :mod:`repro.evaluation.metrics`.
    random_state:
        Master seed; folds, samplers and classifiers get derived seeds.
    n_jobs:
        Worker processes to fan folds over (``1`` = serial in-process,
        ``None``/``0`` = all cores).  Results are bit-identical to serial
        for any value.  For portability beyond fork-based platforms the
        factories should be picklable (module-level callables).

    Returns
    -------
    CVResult
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    plan = plan_folds(n_splits, n_repeats, random_state)
    splits = splits_for_plan(y, n_splits, plan)

    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs > 1 and len(plan) > 1:
        payloads = [(x, y, splits, classifier_factory, sampler_factory, metrics)]
        tasks = [(0, p.index, p.fold_seed) for p in plan]
        chunksize = max(1, len(tasks) // (n_jobs * 4))
        fold_results = run_folds_pooled(payloads, tasks, n_jobs, chunksize=chunksize)
    else:
        fold_results = [
            run_fold(
                x,
                y,
                splits[p.index][0],
                splits[p.index][1],
                classifier_factory,
                sampler_factory,
                p.fold_seed,
                metrics,
            )
            for p in plan
        ]

    return collect_cv_result(fold_results, metrics, n_splits * n_repeats)
