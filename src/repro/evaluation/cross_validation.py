"""Repeated stratified cross-validation with in-fold resampling.

The paper's protocol (§V-A3): five-fold cross-validation repeated five
times, sampling applied to the *training* portion of each fold only, the
classifier trained on the resampled fold and scored on the untouched test
fold.  :func:`evaluate_pipeline` implements exactly that and returns both
per-fold values and aggregate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.evaluation.metrics import compute_metric

__all__ = ["stratified_kfold_indices", "CVResult", "evaluate_pipeline"]


def stratified_kfold_indices(
    y: np.ndarray,
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold split index pairs.

    Samples of each class are dealt round-robin over the folds (after an
    optional shuffle), so every fold's class distribution mirrors the whole
    dataset as closely as integer counts allow.  Classes smaller than
    ``n_splits`` simply appear in fewer folds — the split never fails.
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    rng = np.random.default_rng(random_state)
    fold_of = np.empty(y.shape[0], dtype=np.intp)
    offset = 0
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        if shuffle:
            members = rng.permutation(members)
        fold_of[members] = (np.arange(members.size) + offset) % n_splits
        # Stagger the starting fold between classes so small classes do not
        # all pile into fold 0.
        offset += members.size
    splits = []
    for fold in range(n_splits):
        test = np.flatnonzero(fold_of == fold)
        train = np.flatnonzero(fold_of != fold)
        if test.size == 0 or train.size == 0:
            raise ValueError(
                f"n_splits={n_splits} too large for dataset of {y.size} samples"
            )
        splits.append((train, test))
    return splits


@dataclass
class CVResult:
    """Per-fold metric values plus aggregates for one pipeline."""

    metric_values: dict[str, np.ndarray]
    sampling_ratios: np.ndarray
    n_folds: int
    means: dict[str, float] = field(init=False)
    stds: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.means = {k: float(v.mean()) for k, v in self.metric_values.items()}
        self.stds = {k: float(v.std()) for k, v in self.metric_values.items()}

    @property
    def mean_sampling_ratio(self) -> float:
        """Average kept fraction of the training folds (1.0 for oversamplers)."""
        return float(self.sampling_ratios.mean())


def evaluate_pipeline(
    x: np.ndarray,
    y: np.ndarray,
    classifier_factory: Callable[[int], object],
    sampler_factory: Callable[[int], object] | None = None,
    n_splits: int = 5,
    n_repeats: int = 5,
    metrics: tuple[str, ...] = ("accuracy",),
    random_state: int | None = 0,
) -> CVResult:
    """Repeated stratified CV of a (sampler → classifier) pipeline.

    Parameters
    ----------
    x, y:
        The (possibly noise-injected) dataset.
    classifier_factory:
        ``factory(seed) -> estimator`` with ``fit``/``predict``; a fresh
        estimator per fold keeps folds independent.
    sampler_factory:
        ``factory(seed) -> sampler`` with ``fit_resample``, applied to the
        training fold only; ``None`` trains on the raw fold.
    n_splits, n_repeats:
        The paper's protocol is 5 × 5.
    metrics:
        Names resolved through :mod:`repro.evaluation.metrics`.
    random_state:
        Master seed; folds, samplers and classifiers get derived seeds.

    Returns
    -------
    CVResult
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    seeds = np.random.SeedSequence(random_state).generate_state(n_repeats * 2 + 1)

    values: dict[str, list[float]] = {m: [] for m in metrics}
    ratios: list[float] = []
    fold_counter = 0
    for rep in range(n_repeats):
        splits = stratified_kfold_indices(
            y, n_splits=n_splits, shuffle=True, random_state=int(seeds[rep])
        )
        for train, test in splits:
            fold_seed = int(seeds[n_repeats + rep]) + fold_counter
            fold_counter += 1
            x_train, y_train = x[train], y[train]
            if sampler_factory is not None:
                sampler = sampler_factory(fold_seed)
                x_fit, y_fit = sampler.fit_resample(x_train, y_train)
                if np.unique(y_fit).size < 2 and np.unique(y_train).size >= 2:
                    # A sampler must not collapse the fold to one class;
                    # fall back to the raw fold (keeps the protocol total).
                    x_fit, y_fit = x_train, y_train
                    ratios.append(1.0)
                else:
                    ratios.append(y_fit.size / y_train.size)
            else:
                x_fit, y_fit = x_train, y_train
                ratios.append(1.0)

            clf = classifier_factory(fold_seed)
            clf.fit(x_fit, y_fit)
            y_pred = clf.predict(x[test])
            for m in metrics:
                values[m].append(compute_metric(m, y[test], y_pred))

    return CVResult(
        metric_values={m: np.asarray(v) for m, v in values.items()},
        sampling_ratios=np.asarray(ratios),
        n_folds=n_splits * n_repeats,
    )
