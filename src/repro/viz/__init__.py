"""Visualisation substrate: exact t-SNE and terminal figure renderers."""

from repro.viz.ascii import bar_chart, heatmap, line_chart, ridge, scatter
from repro.viz.tsne import TSNE

__all__ = ["TSNE", "bar_chart", "heatmap", "line_chart", "ridge", "scatter"]
