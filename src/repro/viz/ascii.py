"""Terminal renderings of the paper's figures.

matplotlib is unavailable offline, so every figure is reported twice:
as the exact numeric series (the benchmark output a reader can diff against
the paper) and as a compact ASCII rendering from this module — grouped bar
charts (Fig. 6), ridge-style histograms (Figs. 7–8), rank heatmaps (Fig. 9),
line charts (Figs. 10–11) and scatter plots (Fig. 5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bar_chart", "ridge", "heatmap", "line_chart", "scatter"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _bar(value: float, vmax: float, width: int) -> str:
    """Unicode horizontal bar of proportional length."""
    if vmax <= 0:
        return ""
    filled = value / vmax * width
    n_full = int(filled)
    frac = filled - n_full
    partial = _BLOCKS[int(frac * (len(_BLOCKS) - 1))] if n_full < width else ""
    return "█" * n_full + partial


def bar_chart(
    labels: list[str],
    series: dict[str, np.ndarray],
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Grouped horizontal bar chart: one group per label, one bar per series."""
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    for name, arr in arrays.items():
        if arr.size != len(labels):
            raise ValueError(f"series {name!r} length mismatch with labels")
    vmax = max((float(a.max()) for a in arrays.values()), default=1.0)
    vmax = vmax if vmax > 0 else 1.0
    name_w = max(len(n) for n in arrays)
    lines = []
    for i, label in enumerate(labels):
        lines.append(str(label))
        for name, arr in arrays.items():
            bar = _bar(float(arr[i]), vmax, width)
            value = value_format.format(float(arr[i]))
            lines.append(f"  {name:<{name_w}} |{bar:<{width}}| {value}")
    return "\n".join(lines)


def ridge(
    series: dict[str, np.ndarray],
    bins: int = 24,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Stacked density sketches (one histogram row per series) — Figs. 7–8."""
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    values = np.concatenate(list(arrays.values()))
    lo = float(values.min()) if lo is None else lo
    hi = float(values.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    name_w = max(len(n) for n in arrays)
    lines = [f"{'':{name_w}}  {lo:.2f}{' ' * (bins - 10)}{hi:.2f}"]
    for name, arr in arrays.items():
        hist, _ = np.histogram(arr, bins=edges)
        peak = max(int(hist.max()), 1)
        row = "".join(
            _BLOCKS[int(h / peak * (len(_BLOCKS) - 1))] for h in hist
        )
        lines.append(f"{name:<{name_w}}  {row}  (n={arr.size})")
    return "\n".join(lines)


def heatmap(
    row_labels: list[str],
    col_labels: list[str],
    matrix: np.ndarray,
    cell_format: str = "{:>3.0f}",
) -> str:
    """Numeric grid (used for the Fig. 9 rank matrices)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (len(row_labels), len(col_labels)):
        raise ValueError("matrix shape must match the label lists")
    name_w = max(len(r) for r in row_labels)
    cell_w = max(len(cell_format.format(matrix.max())), *(len(c) for c in col_labels))
    header = " " * (name_w + 2) + " ".join(f"{c:>{cell_w}}" for c in col_labels)
    lines = [header]
    for i, row in enumerate(row_labels):
        cells = " ".join(
            f"{cell_format.format(matrix[i, j]):>{cell_w}}"
            for j in range(len(col_labels))
        )
        lines.append(f"{row:<{name_w}}  {cells}")
    return "\n".join(lines)


def line_chart(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    height: int = 12,
    width: int | None = None,
) -> str:
    """Multi-series line chart on a character canvas — Figs. 10–11."""
    x = np.asarray(x, dtype=np.float64)
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    width = width if width is not None else max(2 * x.size, 20)
    values = np.concatenate(list(arrays.values()))
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        hi = lo + 1e-9
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&$~^=<>?!"
    for si, (name, arr) in enumerate(arrays.items()):
        marker = markers[si % len(markers)]
        for xi, val in zip(x, arr):
            col = int((xi - x.min()) / max(x.max() - x.min(), 1e-12) * (width - 1))
            row = height - 1 - int((val - lo) / (hi - lo) * (height - 1))
            canvas[row][col] = marker
    lines = [f"{hi:8.3f} ┤" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.3f} ┤" + "".join(canvas[-1]))
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def scatter(
    points: np.ndarray,
    labels: np.ndarray,
    height: int = 20,
    width: int = 60,
) -> str:
    """2-D labelled scatter on a character canvas — Fig. 5 renderings."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    glyphs = "ox+*#@%&$~"
    classes = np.unique(labels)
    glyph_of = {int(c): glyphs[i % len(glyphs)] for i, c in enumerate(classes)}
    canvas = [[" "] * width for _ in range(height)]
    for (px, py), lab in zip(points, labels):
        col = int((px - lo[0]) / span[0] * (width - 1))
        row = height - 1 - int((py - lo[1]) / span[1] * (height - 1))
        canvas[row][col] = glyph_of[int(lab)]
    lines = ["".join(row) for row in canvas]
    legend = "  ".join(f"{glyph_of[int(c)]}=class {int(c)}" for c in classes)
    lines.append(legend)
    return "\n".join(lines)
