"""Exact t-SNE (van der Maaten & Hinton, 2008) in pure numpy.

Fig. 5 of the paper visualises four datasets with t-SNE.  scikit-learn is
unavailable offline, so this module implements the exact (non-Barnes-Hut)
algorithm: perplexity-calibrated Gaussian affinities, early exaggeration,
and momentum gradient descent on the Student-t low-dimensional similarities.
Quadratic in the sample count — intended for the few-hundred-point
subsamples the figure uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbors import pairwise_distances

__all__ = ["TSNE"]


def _binary_search_sigmas(
    sq_dist: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Conditional affinities P(j|i) whose entropy matches log(perplexity)."""
    n = sq_dist.shape[0]
    target = np.log(perplexity)
    p = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        d = np.delete(sq_dist[i], i)
        for _ in range(max_iter):
            expd = np.exp(-d * beta)
            total = expd.sum()
            if total <= 0:
                h = 0.0
                probs = np.zeros_like(expd)
            else:
                probs = expd / total
                h = float(np.log(total) + beta * np.sum(d * expd) / total)
            diff = h - target
            if abs(diff) < tol:
                break
            if diff > 0:
                beta_lo = beta
                beta = beta * 2 if beta_hi == np.inf else 0.5 * (beta + beta_hi)
            else:
                beta_hi = beta
                beta = beta / 2 if beta_lo == 0.0 else 0.5 * (beta + beta_lo)
        row = np.insert(probs, i, 0.0)
        p[i] = row
    return p


class TSNE:
    """Exact t-SNE embedding into 2-D.

    Parameters
    ----------
    perplexity:
        Effective neighbour count (the scikit-learn default 30).
    n_iter:
        Gradient descent iterations (early exaggeration for the first
        quarter of them).
    learning_rate:
        Gradient step scale.
    random_state:
        Seed of the Gaussian initialisation.
    """

    def __init__(
        self,
        perplexity: float = 30.0,
        n_iter: int = 500,
        learning_rate: float = 200.0,
        random_state: int | None = 0,
    ):
        if perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if n_iter < 50:
            raise ValueError("n_iter must be >= 50")
        self.perplexity = float(perplexity)
        self.n_iter = int(n_iter)
        self.learning_rate = float(learning_rate)
        self.random_state = random_state

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed the rows of ``x``; returns an ``(n, 2)`` array."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n = x.shape[0]
        if n < 5:
            raise ValueError("need at least 5 points for a t-SNE embedding")
        perplexity = min(self.perplexity, (n - 1) / 3.0)

        sq = pairwise_distances(x) ** 2
        cond = _binary_search_sigmas(sq, perplexity)
        p = cond + cond.T
        p /= max(p.sum(), 1e-12)
        p = np.maximum(p, 1e-12)

        rng = np.random.default_rng(self.random_state)
        emb = rng.normal(scale=1e-4, size=(n, 2))
        velocity = np.zeros_like(emb)
        exaggeration_until = self.n_iter // 4

        for it in range(self.n_iter):
            p_eff = p * 12.0 if it < exaggeration_until else p
            momentum = 0.5 if it < exaggeration_until else 0.8

            diff = emb[:, None, :] - emb[None, :, :]
            sq_low = np.einsum("ijk,ijk->ij", diff, diff)
            num = 1.0 / (1.0 + sq_low)
            np.fill_diagonal(num, 0.0)
            q = num / max(num.sum(), 1e-12)
            q = np.maximum(q, 1e-12)

            pq = (p_eff - q) * num
            grad = 4.0 * np.einsum("ij,ijk->ik", pq, diff)

            velocity = momentum * velocity - self.learning_rate * grad
            emb = emb + velocity
            emb = emb - emb.mean(axis=0)
        return emb
