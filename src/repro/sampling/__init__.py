"""Sampling methods: the paper's baselines plus the proposed GBABS.

Use :func:`make_sampler` to build any method by its paper name::

    sampler = make_sampler("gbabs", random_state=0)
    x_s, y_s = sampler.fit_resample(x, y)

Names follow the paper's abbreviations: ``gbabs``, ``ggbs``, ``igbs``,
``srs``, ``sm`` (SMOTE), ``bsm`` (Borderline-SMOTE), ``smnc`` (SMOTENC),
``tomek`` and ``ori`` (no sampling).
"""

from __future__ import annotations

from typing import Callable

from repro.core.gbabs import GBABS
from repro.sampling.base import BaseSampler, IdentitySampler, check_xy
from repro.sampling.general import (
    BootstrapSampler,
    StratifiedSampler,
    SystematicSampler,
)
from repro.sampling.gbs import GGBS, IGBS, KDivisionGBG
from repro.sampling.kmeans_gbg import KMeansGBG
from repro.sampling.smote import SMOTE, SMOTENC, BorderlineSMOTE
from repro.sampling.srs import SimpleRandomSampler
from repro.sampling.tomek import TomekLinks

__all__ = [
    "BaseSampler",
    "IdentitySampler",
    "SimpleRandomSampler",
    "SystematicSampler",
    "StratifiedSampler",
    "BootstrapSampler",
    "KDivisionGBG",
    "KMeansGBG",
    "GGBS",
    "IGBS",
    "SMOTE",
    "BorderlineSMOTE",
    "SMOTENC",
    "TomekLinks",
    "GBABS",
    "SAMPLER_NAMES",
    "make_sampler",
    "check_xy",
]

_FACTORIES: dict[str, Callable[..., object]] = {
    "gbabs": GBABS,
    "ggbs": GGBS,
    "igbs": IGBS,
    "srs": SimpleRandomSampler,
    "sm": SMOTE,
    "bsm": BorderlineSMOTE,
    "smnc": SMOTENC,
    "tomek": TomekLinks,
    "ori": IdentitySampler,
    "systematic": SystematicSampler,
    "stratified": StratifiedSampler,
    "bootstrap": BootstrapSampler,
}

SAMPLER_NAMES = tuple(_FACTORIES)


def make_sampler(name: str, **kwargs):
    """Instantiate a sampler by its paper abbreviation.

    Keyword arguments are forwarded to the constructor; arguments a given
    sampler does not accept raise ``TypeError`` (explicit is better than
    silently dropping configuration).
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown sampler {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        )
    factory = _FACTORIES[key]
    if key == "tomek":
        kwargs.pop("random_state", None)  # Tomek links are deterministic.
    if key == "ori":
        kwargs.pop("random_state", None)
    return factory(**kwargs)
