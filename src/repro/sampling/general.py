"""Other general sampling methods mentioned in the paper's introduction.

Systematic random sampling, stratified sampling and bootstrapping are not
part of the paper's comparison table, but they complete the taxonomy of §I
("general sampling methods") and are useful baselines for downstream users,
so the library ships them with the same ``fit_resample`` interface.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import BaseSampler, check_xy

__all__ = ["SystematicSampler", "StratifiedSampler", "BootstrapSampler"]


class SystematicSampler(BaseSampler):
    """Every ``k``-th sample after a random start (fixed-interval sampling).

    Parameters
    ----------
    ratio:
        Target kept fraction; the interval is ``round(1 / ratio)``.
    random_state:
        Seed controlling the random starting offset.
    """

    def __init__(self, ratio: float = 0.5, random_state: int | None = None):
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.random_state = random_state

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        n = x.shape[0]
        step = max(1, int(round(1.0 / self.ratio)))
        rng = np.random.default_rng(self.random_state)
        start = int(rng.integers(0, step))
        chosen = np.arange(start, n, step, dtype=np.intp)
        if chosen.size == 0:
            chosen = np.array([start % n], dtype=np.intp)
        self.sample_indices_ = chosen
        return x[chosen], y[chosen]


class StratifiedSampler(BaseSampler):
    """Per-class proportional random sampling (class shares preserved)."""

    def __init__(self, ratio: float = 0.5, random_state: int | None = None):
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.random_state = random_state

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        rng = np.random.default_rng(self.random_state)
        chosen_parts = []
        for cls in np.unique(y):
            pool = np.flatnonzero(y == cls)
            n_keep = max(1, int(round(self.ratio * pool.size)))
            chosen_parts.append(rng.choice(pool, size=n_keep, replace=False))
        chosen = np.sort(np.concatenate(chosen_parts)).astype(np.intp)
        self.sample_indices_ = chosen
        return x[chosen], y[chosen]


class BootstrapSampler(BaseSampler):
    """Sampling with replacement; the resample has the input's size.

    ``sample_indices_`` is ``None`` because rows can repeat — the bootstrap
    is not a subset selection.
    """

    def __init__(self, random_state: int | None = None):
        self.random_state = random_state

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        n = x.shape[0]
        rng = np.random.default_rng(self.random_state)
        chosen = rng.integers(0, n, size=n)
        self.sample_indices_ = None
        return x[chosen], y[chosen]
