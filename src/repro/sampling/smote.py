"""SMOTE-family oversamplers implemented from the original papers.

* :class:`SMOTE` — Chawla et al. (2002): synthesise minority samples on the
  segments between a minority sample and one of its k minority neighbours.
* :class:`BorderlineSMOTE` — Han et al. (2005), the "borderline-1" variant:
  synthesise only from DANGER minority samples (more than half — but not
  all — of their m nearest neighbours belong to other classes).
* :class:`SMOTENC` — Chawla et al. (2002) §6.1, for mixed
  continuous/categorical features: the neighbour metric penalises
  categorical mismatches by the median of the continuous features' standard
  deviations, and synthetic categorical values take the neighbourhood mode.

All three balance every class up to the majority-class count, matching
``imbalanced-learn``'s default ``sampling_strategy='auto'`` used by the
paper's comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbors import NearestNeighbors, pairwise_distances
from repro.sampling.base import BaseSampler, check_xy

__all__ = ["SMOTE", "BorderlineSMOTE", "SMOTENC"]


def _rowwise_mode(a: np.ndarray) -> np.ndarray:
    """Most frequent value of every row (smallest value wins ties).

    Sort each row, mark run boundaries, scatter-add run lengths and pick
    each row's first-longest run — equivalent to ``np.unique`` +
    ``argmax`` per row (unique returns ascending values, argmax takes the
    first maximum), without the per-row Python loop.
    """
    n, k = a.shape
    sorted_rows = np.sort(a, axis=1)
    change = np.ones((n, k), dtype=bool)
    change[:, 1:] = sorted_rows[:, 1:] != sorted_rows[:, :-1]
    run_id = np.cumsum(change, axis=1) - 1
    counts = np.zeros((n, k), dtype=np.intp)
    rows = np.broadcast_to(np.arange(n)[:, None], (n, k))
    np.add.at(counts, (rows, run_id), 1)
    run_values = np.zeros((n, k), dtype=sorted_rows.dtype)
    r, c = np.nonzero(change)
    run_values[r, run_id[r, c]] = sorted_rows[r, c]
    return run_values[np.arange(n), np.argmax(counts, axis=1)]


class SMOTE(BaseSampler):
    """Synthetic minority over-sampling technique.

    Parameters
    ----------
    k_neighbors:
        Number of same-class neighbours interpolation partners are drawn
        from (5 in the original paper).
    random_state:
        Seed for partner choice and interpolation coefficients.
    """

    def __init__(self, k_neighbors: int = 5, random_state: int | None = None):
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        self.k_neighbors = int(k_neighbors)
        self.random_state = random_state

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        rng = np.random.default_rng(self.random_state)
        classes, counts = np.unique(y, return_counts=True)
        n_majority = int(counts.max())

        new_x = [x]
        new_y = [y]
        for cls, count in zip(classes, counts):
            deficit = n_majority - int(count)
            if deficit <= 0:
                continue
            pool = np.flatnonzero(y == cls)
            synth = self._synthesise(x, pool, deficit, rng)
            new_x.append(synth)
            new_y.append(np.full(deficit, cls, dtype=y.dtype))

        self.sample_indices_ = None
        return np.vstack(new_x), np.concatenate(new_y)

    def _synthesise(
        self,
        x: np.ndarray,
        pool: np.ndarray,
        n_new: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Interpolate ``n_new`` synthetic rows within the class ``pool``."""
        if pool.size == 1:
            # A single sample has no neighbours; duplicate it.
            return np.repeat(x[pool], n_new, axis=0)
        k = min(self.k_neighbors, pool.size - 1)
        nn = NearestNeighbors(n_neighbors=k).fit(x[pool])
        _, neighbor_idx = nn.kneighbors(x[pool], exclude_self=True)

        base_pos = rng.integers(0, pool.size, size=n_new)
        partner_col = rng.integers(0, k, size=n_new)
        partner_pos = neighbor_idx[base_pos, partner_col]
        gap = rng.random(size=(n_new, 1))
        base = x[pool[base_pos]]
        partner = x[pool[partner_pos]]
        return base + gap * (partner - base)


class BorderlineSMOTE(SMOTE):
    """Borderline-SMOTE (borderline-1): oversample only DANGER samples.

    A minority sample is in DANGER when, among its ``m_neighbors`` nearest
    neighbours over the whole dataset, more than half — but not all — belong
    to other classes.  Samples whose neighbours are all heterogeneous are
    treated as noise and skipped; if no DANGER sample exists for a class,
    the method falls back to plain SMOTE for that class (so badly imbalanced
    folds still get balanced).

    Parameters
    ----------
    k_neighbors:
        Interpolation neighbourhood, as in :class:`SMOTE`.
    m_neighbors:
        Neighbourhood used to classify minority samples into
        SAFE / DANGER / NOISE (10 in the original paper).
    random_state:
        Seed.
    rng_compat:
        ``True`` (default) reproduces the historical RNG stream: partner
        choice and interpolation gap are drawn as interleaved *scalar*
        draws per synthetic sample, bit-identical to every result this
        repository has ever published.  ``False`` draws both in batch —
        one ``integers`` call and one ``random`` call — which is faster
        for large deficits but defines a **new, equally valid stream**:
        resampled rows differ from compat mode for the same seed (the
        distribution is unchanged).
    """

    def __init__(
        self,
        k_neighbors: int = 5,
        m_neighbors: int = 10,
        random_state: int | None = None,
        rng_compat: bool = True,
    ):
        super().__init__(k_neighbors=k_neighbors, random_state=random_state)
        if m_neighbors < 1:
            raise ValueError("m_neighbors must be >= 1")
        self.m_neighbors = int(m_neighbors)
        self.rng_compat = bool(rng_compat)

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        rng = np.random.default_rng(self.random_state)
        classes, counts = np.unique(y, return_counts=True)
        n_majority = int(counts.max())

        m = min(self.m_neighbors, x.shape[0] - 1)
        nn_all = NearestNeighbors(n_neighbors=m).fit(x)
        _, neighbor_idx = nn_all.kneighbors(x, exclude_self=True)

        new_x = [x]
        new_y = [y]
        for cls, count in zip(classes, counts):
            deficit = n_majority - int(count)
            if deficit <= 0:
                continue
            pool = np.flatnonzero(y == cls)
            het = (y[neighbor_idx[pool]] != cls).sum(axis=1)
            danger = pool[(het > m / 2) & (het < m)]
            seed_pool = danger if danger.size else pool
            synth = self._synthesise_from(x, pool, seed_pool, deficit, rng)
            new_x.append(synth)
            new_y.append(np.full(deficit, cls, dtype=y.dtype))

        self.sample_indices_ = None
        return np.vstack(new_x), np.concatenate(new_y)

    def _synthesise_from(
        self,
        x: np.ndarray,
        pool: np.ndarray,
        seed_pool: np.ndarray,
        n_new: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Interpolate from DANGER seeds toward same-class neighbours."""
        if pool.size == 1:
            return np.repeat(x[pool], n_new, axis=0)
        k = min(self.k_neighbors, pool.size - 1)
        nn = NearestNeighbors(n_neighbors=k).fit(x[pool])
        # Seeds may equal a pool member, so exclude self matches.
        _, neighbor_idx = nn.kneighbors(x[seed_pool], n_neighbors=k + 1)

        # Per-seed partner tables: drop the (at most one) self match and
        # keep the first k survivors in distance order — every row then
        # holds exactly k partner candidates.
        candidates = pool[neighbor_idx]
        keep = candidates != seed_pool[:, None]
        first_k = np.argsort(~keep, axis=1, kind="stable")[:, :k]
        partner_table = np.take_along_axis(candidates, first_k, axis=1)

        base_pos = rng.integers(0, seed_pool.size, size=n_new)
        if self.rng_compat:
            # Historical stream: partner choice and gap interleaved per
            # sample, so only these draws remain scalar — the gather and
            # blend below are fully batched either way.
            choice = np.empty(n_new, dtype=np.intp)
            gap = np.empty((n_new, 1))
            for i in range(n_new):
                choice[i] = rng.integers(0, k)
                gap[i, 0] = rng.random()
        else:
            choice = rng.integers(0, k, size=n_new)
            gap = rng.random(size=(n_new, 1))

        seeds = seed_pool[base_pos]
        partners = partner_table[base_pos, choice]
        return x[seeds] + gap * (x[partners] - x[seeds])


class SMOTENC(BaseSampler):
    """SMOTE for datasets with nominal (categorical) and continuous features.

    Parameters
    ----------
    categorical_features:
        Boolean mask (length ``p``) or integer index array marking the
        categorical columns.
    k_neighbors, random_state:
        As in :class:`SMOTE`.
    """

    def __init__(
        self,
        categorical_features: np.ndarray | list,
        k_neighbors: int = 5,
        random_state: int | None = None,
    ):
        self.categorical_features = np.asarray(categorical_features)
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        self.k_neighbors = int(k_neighbors)
        self.random_state = random_state

    def _masks(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Resolve the categorical spec into (categorical, continuous) masks."""
        spec = self.categorical_features
        if spec.dtype == bool:
            if spec.size != p:
                raise ValueError("boolean categorical mask has wrong length")
            cat = spec
        else:
            cat = np.zeros(p, dtype=bool)
            cat[spec.astype(int)] = True
        return cat, ~cat

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        rng = np.random.default_rng(self.random_state)
        p = x.shape[1]
        cat, cont = self._masks(p)

        # Median std of continuous features: the per-mismatch categorical
        # penalty from the original SMOTE-NC formulation.  With no
        # continuous features the metric degenerates to mismatch counting.
        stds = x[:, cont].std(axis=0)
        penalty = float(np.median(stds)) if stds.size else 1.0

        classes, counts = np.unique(y, return_counts=True)
        n_majority = int(counts.max())

        new_x = [x]
        new_y = [y]
        for cls, count in zip(classes, counts):
            deficit = n_majority - int(count)
            if deficit <= 0:
                continue
            pool = np.flatnonzero(y == cls)
            synth = self._synthesise_nc(x, pool, cat, cont, penalty, deficit, rng)
            new_x.append(synth)
            new_y.append(np.full(deficit, cls, dtype=y.dtype))

        self.sample_indices_ = None
        return np.vstack(new_x), np.concatenate(new_y)

    def _synthesise_nc(
        self,
        x: np.ndarray,
        pool: np.ndarray,
        cat: np.ndarray,
        cont: np.ndarray,
        penalty: float,
        n_new: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mixed-metric neighbour search + mode/interpolation synthesis."""
        if pool.size == 1:
            return np.repeat(x[pool], n_new, axis=0)
        k = min(self.k_neighbors, pool.size - 1)

        px = x[pool]
        dist = pairwise_distances(px[:, cont], px[:, cont])
        sq = dist**2
        mism = (px[:, cat][:, None, :] != px[:, cat][None, :, :]).sum(axis=2)
        mixed = np.sqrt(sq + mism * penalty**2)
        np.fill_diagonal(mixed, np.inf)
        neighbor_idx = np.argsort(mixed, axis=1, kind="stable")[:, :k]

        base_pos = rng.integers(0, pool.size, size=n_new)
        partner_col = rng.integers(0, k, size=n_new)
        partner_pos = neighbor_idx[base_pos, partner_col]
        gap = rng.random(size=(n_new, 1))

        synth = np.empty((n_new, x.shape[1]), dtype=np.float64)
        base = px[base_pos]
        partner = px[partner_pos]
        synth[:, cont] = base[:, cont] + gap * (partner[:, cont] - base[:, cont])
        # Categorical values: mode among the k neighbours of the base sample.
        # The mode depends only on the base row, so compute one mode table
        # over the pool and gather per synthetic sample.
        cat_cols = np.flatnonzero(cat)
        if cat_cols.size:
            neigh_vals = px[neighbor_idx][:, :, cat_cols]
            flat = neigh_vals.transpose(0, 2, 1).reshape(-1, neighbor_idx.shape[1])
            mode_table = _rowwise_mode(flat).reshape(pool.size, cat_cols.size)
            synth[:, cat_cols] = mode_table[base_pos]
        return synth
