"""Simple random sampling (SRS) — the unbiased general baseline.

The paper pairs SRS with GBABS by forcing SRS to the *same sampling ratio*
GBABS achieved on the dataset (§V-A3), which is exactly how the evaluation
harness uses :class:`SimpleRandomSampler`.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import BaseSampler, check_xy

__all__ = ["SimpleRandomSampler"]


class SimpleRandomSampler(BaseSampler):
    """Uniform sampling without replacement at a fixed ratio.

    Parameters
    ----------
    ratio:
        Fraction of samples to keep, in ``(0, 1]``.
    random_state:
        Seed for reproducibility.
    """

    def __init__(self, ratio: float = 0.5, random_state: int | None = None):
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = float(ratio)
        self.random_state = random_state

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        n = x.shape[0]
        # Keep at least one sample so downstream classifiers can fit.
        n_keep = max(1, int(round(self.ratio * n)))
        rng = np.random.default_rng(self.random_state)
        chosen = rng.choice(n, size=n_keep, replace=False)
        chosen.sort()
        self.sample_indices_ = chosen.astype(np.intp)
        return x[chosen], y[chosen]
