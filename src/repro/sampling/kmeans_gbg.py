"""Classic 2-means granular-ball generation (Xia et al., 2019 — §III-A).

The original GBG method the paper's related work departs from: start from
one ball holding the whole dataset and recursively split every ball whose
purity is below the threshold into two finer balls with 2-means, using the
mean-centre / mean-radius geometry of Eq. 1.  Balls may overlap and members
may lie outside their ball — precisely the two limitations RD-GBG removes —
so this generator serves as the historical baseline for the geometry
ablations and completes the GB-family substrate.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import GranularBallSetBuilder
from repro.core.granular_ball import GranularBallSet
from repro.core.neighbors import distances_to, pairwise_distances

__all__ = ["KMeansGBG"]


class KMeansGBG:
    """Purity-threshold GBG via recursive 2-means splitting.

    Parameters
    ----------
    purity_threshold:
        Balls at or above this purity stop splitting (the hyperparameter
        whose tuning cost motivates RD-GBG's adaptive design).
    min_samples:
        Balls at or below this size stop splitting regardless of purity.
    max_kmeans_iter:
        Lloyd iterations per split.
    random_state:
        Seed for the 2-means initialisation.
    """

    def __init__(
        self,
        purity_threshold: float = 1.0,
        min_samples: int = 2,
        max_kmeans_iter: int = 20,
        random_state: int | None = None,
    ):
        if not 0.0 < purity_threshold <= 1.0:
            raise ValueError("purity_threshold must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.purity_threshold = float(purity_threshold)
        self.min_samples = int(min_samples)
        self.max_kmeans_iter = int(max_kmeans_iter)
        self.random_state = random_state

    def generate(self, x: np.ndarray, y: np.ndarray) -> GranularBallSet:
        """Cover the dataset with 2-means granular balls."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (n, p) and y aligned 1-D")
        if x.shape[0] == 0:
            raise ValueError("cannot granulate an empty dataset")
        rng = np.random.default_rng(self.random_state)

        queue = [np.arange(x.shape[0], dtype=np.intp)]
        done: list[np.ndarray] = []
        while queue:
            idx = queue.pop()
            if idx.size <= self.min_samples or self._purity(y, idx) >= (
                self.purity_threshold
            ):
                done.append(idx)
                continue
            left, right = self._two_means(x, idx, rng)
            if left.size == 0 or right.size == 0:
                done.append(idx)
                continue
            queue.append(left)
            queue.append(right)

        builder = GranularBallSetBuilder(
            x.shape[1], x.shape[0], capacity=max(len(done), 4)
        )
        for idx in done:
            center, radius, label = self._ball_geometry(x, y, idx)
            builder.add(center, radius, label, idx)
        return builder.build()

    # ------------------------------------------------------------------

    @staticmethod
    def _purity(y: np.ndarray, idx: np.ndarray) -> float:
        _, counts = np.unique(y[idx], return_counts=True)
        return float(counts.max() / idx.size)

    def _two_means(
        self, x: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lloyd's algorithm with k=2 on the ball's members."""
        members = x[idx]
        seeds = rng.choice(idx.size, size=2, replace=False)
        centers = members[seeds].copy()
        if np.allclose(centers[0], centers[1]):
            # Duplicate seed points: try to find any distinct member.
            different = np.flatnonzero(np.any(members != centers[0], axis=1))
            if different.size == 0:
                return idx, np.empty(0, dtype=np.intp)
            centers[1] = members[different[0]]

        assign = np.zeros(idx.size, dtype=np.intp)
        for _ in range(self.max_kmeans_iter):
            dist = pairwise_distances(members, centers)
            new_assign = np.argmin(dist, axis=1)
            if np.array_equal(new_assign, assign) and _ > 0:
                break
            assign = new_assign
            for c in (0, 1):
                mask = assign == c
                if mask.any():
                    centers[c] = members[mask].mean(axis=0)
        return idx[assign == 0], idx[assign == 1]

    @staticmethod
    def _ball_geometry(
        x: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[np.ndarray, float, int]:
        """Eq. 1 geometry: mean centre, mean member distance, majority label."""
        members = x[idx]
        center = members.mean(axis=0)
        radius = float(distances_to(center, members).mean())
        labels, counts = np.unique(y[idx], return_counts=True)
        return center, radius, int(labels[np.argmax(counts)])
