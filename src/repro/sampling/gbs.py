"""GB-based sampling baselines of Xia et al.: GGBS and IGBS (§III-B).

Both methods share a *k-division* granular-ball generation stage:

* the whole dataset starts as one ball;
* any ball whose purity is below the threshold **and** which holds more than
  ``2·p`` samples is split into ``k`` finer balls, where ``k`` is the number
  of classes present in the ball — one random seed per class, samples
  assigned to the nearest seed;
* balls use the classical mean-centre / mean-radius definition (Eq. 1), so
  they can overlap and members can fall outside the ball — exactly the
  limitations the paper's RD-GBG removes.

The undersampling stages follow §III-B:

* **GGBS** keeps every sample of *small* balls (``≤ 2·p`` members) and, from
  each *large* ball, the ``2·p`` homogeneous members nearest to the ball's
  axis intersection points ``c ± r·e_j``.
* **IGBS** additionally keeps all minority samples of large minority balls
  and rebalances with extra random majority draws if the result is still
  skewed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import GranularBallSetBuilder
from repro.core.granular_ball import GranularBallSet
from repro.core.neighbors import distances_to
from repro.sampling.base import BaseSampler, check_xy

__all__ = ["KDivisionGBG", "GGBS", "IGBS"]


@dataclass
class _RawBall:
    """Internal k-division node: member indices plus Eq. 1 geometry."""

    indices: np.ndarray
    center: np.ndarray
    radius: float
    label: int
    purity: float


class KDivisionGBG:
    """k-division granular-ball generation (the GGBS/IGBS granulation stage).

    Parameters
    ----------
    purity_threshold:
        Minimum purity a ball must reach before it stops splitting (unless
        it is already small).  The paper notes GGBS needs this tuned; the
        default of 1.0 matches the strictest setting.
    random_state:
        Seed for the per-class random seed-sample choice.
    """

    def __init__(self, purity_threshold: float = 1.0, random_state: int | None = None):
        if not 0.0 < purity_threshold <= 1.0:
            raise ValueError("purity_threshold must be in (0, 1]")
        self.purity_threshold = float(purity_threshold)
        self.random_state = random_state

    def generate(self, x: np.ndarray, y: np.ndarray) -> GranularBallSet:
        """Split the dataset into granular balls; returns a ball set.

        Balls produced here may overlap and may be impure — by design, as
        they reproduce the baseline's behaviour.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        n, p = x.shape
        rng = np.random.default_rng(self.random_state)
        small_size = 2 * p

        queue = [self._make_ball(x, y, np.arange(n, dtype=np.intp))]
        done: list[_RawBall] = []
        while queue:
            ball = queue.pop()
            if ball.purity >= self.purity_threshold or ball.indices.size <= small_size:
                done.append(ball)
                continue
            children = self._split(x, y, ball, rng)
            if len(children) <= 1:
                # Degenerate split (duplicate points, single class left).
                done.append(ball)
                continue
            queue.extend(children)

        builder = GranularBallSetBuilder(p, n, capacity=max(len(done), 4))
        for b in done:
            builder.add(b.center, b.radius, b.label, b.indices)
        return builder.build()

    @staticmethod
    def _make_ball(x: np.ndarray, y: np.ndarray, indices: np.ndarray) -> _RawBall:
        """Eq. 1 geometry: mean centre, mean member distance as radius."""
        members = x[indices]
        center = members.mean(axis=0)
        radius = float(distances_to(center, members).mean())
        labels, counts = np.unique(y[indices], return_counts=True)
        top = int(np.argmax(counts))
        return _RawBall(
            indices=indices,
            center=center,
            radius=radius,
            label=int(labels[top]),
            purity=float(counts[top] / indices.size),
        )

    def _split(
        self,
        x: np.ndarray,
        y: np.ndarray,
        ball: _RawBall,
        rng: np.random.Generator,
    ) -> list[_RawBall]:
        """k-division: one random seed per class, assign to nearest seed.

        If every drawn seed shares the same coordinates (possible with
        duplicated rows), nearest-seed assignment cannot separate anything;
        one seed is then swapped for any member at a different location so
        the split makes progress whenever the ball is geometrically
        splittable at all.
        """
        idx = ball.indices
        classes = np.unique(y[idx])
        seeds = np.array(
            [rng.choice(idx[y[idx] == cls]) for cls in classes], dtype=np.intp
        )
        seed_x = x[seeds]
        if np.unique(seed_x, axis=0).shape[0] == 1:
            different = idx[np.any(x[idx] != seed_x[0], axis=1)]
            if different.size:
                replacement = int(rng.choice(different))
                pos = int(np.flatnonzero(classes == y[replacement])[0])
                seeds[pos] = replacement
                seed_x = x[seeds]
        diff = x[idx][:, None, :] - seed_x[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        assign = np.argmin(dist, axis=1)
        children = []
        for s in range(seeds.size):
            part = idx[assign == s]
            if part.size == 0:
                continue
            if part.size == idx.size:
                # Nearest-seed assignment made no progress.  This happens
                # when distinct members sit at distances that underflow to
                # zero (denormal coordinates): fall back to peeling off the
                # rows exactly equal to the first member so an impure ball
                # is only ever finalised when it is truly unsplittable.
                return self._identity_split(x, y, ball)
            children.append(self._make_ball(x, y, part))
        return children

    def _identity_split(self, x: np.ndarray, y: np.ndarray, ball: _RawBall) -> list[_RawBall]:
        """Last-resort split: first member's duplicates vs everything else."""
        idx = ball.indices
        same = np.all(x[idx] == x[idx[0]], axis=1)
        if same.all():
            # All members identical: genuinely indivisible.
            return []
        return [
            self._make_ball(x, y, idx[same]),
            self._make_ball(x, y, idx[~same]),
        ]


class GGBS(BaseSampler):
    """General GB-based sampling (the paper's main GB baseline).

    Parameters
    ----------
    purity_threshold, random_state:
        Forwarded to :class:`KDivisionGBG`.

    Attributes
    ----------
    ball_set_:
        Balls generated during the last ``fit_resample`` call.
    """

    def __init__(self, purity_threshold: float = 1.0, random_state: int | None = None):
        self.purity_threshold = purity_threshold
        self.random_state = random_state
        self.ball_set_: GranularBallSet | None = None

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        generator = KDivisionGBG(
            purity_threshold=self.purity_threshold, random_state=self.random_state
        )
        ball_set = generator.generate(x, y)
        self.ball_set_ = ball_set
        chosen = _ggbs_selection(x, y, ball_set)
        self.sample_indices_ = chosen
        return x[chosen], y[chosen]


class IGBS(BaseSampler):
    """GB-based sampling for imbalanced datasets (§III-B variant).

    Small balls contribute everything; large minority balls contribute all
    their minority samples; large majority balls contribute the ``2·p``
    axis-point samples; if the class ratio is still skewed, extra majority
    samples are drawn at random.

    Parameters
    ----------
    purity_threshold, random_state:
        Forwarded to :class:`KDivisionGBG`.
    balance_tolerance:
        Maximum tolerated majority/minority ratio after sampling before the
        random top-up of majority samples stops.  The paper only says the
        distribution should not remain "skewed"; 1.0 targets exact balance
        capped by availability.
    """

    def __init__(
        self,
        purity_threshold: float = 1.0,
        random_state: int | None = None,
        balance_tolerance: float = 1.0,
    ):
        self.purity_threshold = purity_threshold
        self.random_state = random_state
        self.balance_tolerance = float(balance_tolerance)
        self.ball_set_: GranularBallSet | None = None

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        rng = np.random.default_rng(self.random_state)
        generator = KDivisionGBG(
            purity_threshold=self.purity_threshold, random_state=self.random_state
        )
        ball_set = generator.generate(x, y)
        self.ball_set_ = ball_set

        p = x.shape[1]
        small_size = 2 * p
        class_counts = {int(c): int((y == c).sum()) for c in np.unique(y)}
        majority = max(class_counts, key=class_counts.get)

        sizes = ball_set.sizes
        labels = ball_set.labels
        chosen: set[int] = set()
        for bi in range(len(ball_set)):
            members = ball_set.members_of(bi)
            label = int(labels[bi])
            if sizes[bi] <= small_size:
                chosen.update(int(i) for i in members)
            elif label != majority:
                # Large minority ball: keep all samples of the minority class.
                minority_members = members[y[members] == label]
                chosen.update(int(i) for i in minority_members)
            else:
                chosen.update(
                    int(i)
                    for i in _axis_point_samples(
                        x, y, ball_set.centers[bi], float(ball_set.radii[bi]),
                        label, members, small_size,
                    )
                )

        chosen_arr = np.array(sorted(chosen), dtype=np.intp)
        chosen_arr = self._rebalance(y, chosen_arr, majority, rng)
        self.sample_indices_ = chosen_arr
        return x[chosen_arr], y[chosen_arr]

    def _rebalance(
        self,
        y: np.ndarray,
        chosen: np.ndarray,
        majority: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Randomly add majority samples while the result is still skewed."""
        sampled_y = y[chosen]
        counts = {int(c): int((sampled_y == c).sum()) for c in np.unique(y)}
        n_majority = counts.get(majority, 0)
        n_largest_minority = max(
            (v for c, v in counts.items() if c != majority), default=0
        )
        target = int(self.balance_tolerance * n_largest_minority)
        if n_majority >= target:
            return chosen
        pool = np.setdiff1d(np.flatnonzero(y == majority), chosen)
        n_extra = min(pool.size, target - n_majority)
        if n_extra <= 0:
            return chosen
        extra = rng.choice(pool, size=n_extra, replace=False)
        return np.sort(np.concatenate([chosen, extra])).astype(np.intp)


def _ggbs_selection(
    x: np.ndarray, y: np.ndarray, ball_set: GranularBallSet
) -> np.ndarray:
    """GGBS undersampling: all of small balls, axis points of large balls."""
    p = x.shape[1]
    small_size = 2 * p
    sizes = ball_set.sizes
    chosen: set[int] = set()
    for bi in range(len(ball_set)):
        members = ball_set.members_of(bi)
        if sizes[bi] <= small_size:
            chosen.update(int(i) for i in members)
        else:
            chosen.update(
                int(i)
                for i in _axis_point_samples(
                    x, y, ball_set.centers[bi], float(ball_set.radii[bi]),
                    int(ball_set.labels[bi]), members, small_size,
                )
            )
    return np.array(sorted(chosen), dtype=np.intp)


def _axis_point_samples(
    x: np.ndarray,
    y: np.ndarray,
    center: np.ndarray,
    radius: float,
    label: int,
    members: np.ndarray,
    n_target: int,
) -> np.ndarray:
    """The ``2·p`` homogeneous members nearest to the axis points ``c ± r·e_j``.

    For each feature dimension the ball surface crosses the axis-parallel
    line through the centre at two points; GGBS keeps the homogeneous sample
    closest to each crossing (§III-B).  Falls back to nearest members when a
    ball has fewer homogeneous members than target points.
    """
    homogeneous = members[y[members] == label]
    if homogeneous.size == 0:
        return members[: min(members.size, n_target)]
    hx = x[homogeneous]
    p = x.shape[1]
    picked: set[int] = set()
    for dim in range(p):
        for sign in (-1.0, 1.0):
            point = center.copy()
            point[dim] += sign * radius
            nearest = int(homogeneous[np.argmin(distances_to(point, hx))])
            picked.add(nearest)
    return np.array(sorted(picked), dtype=np.intp)
