"""Tomek links undersampling (Tomek, 1976).

A *Tomek link* is a pair of samples from different classes that are each
other's nearest neighbour.  Such pairs sit either on the class boundary or
are noise; removing the majority-class member of every link cleans the
boundary — the classic undersampling baseline the paper compares against.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbors import NearestNeighbors
from repro.sampling.base import BaseSampler, check_xy

__all__ = ["TomekLinks", "find_tomek_links"]


def find_tomek_links(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """All Tomek links in the dataset.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_links, 2)`` with each row an index pair
        ``(i, j)``, ``i < j``, that forms a link.
    """
    x, y = check_xy(x, y)
    n = x.shape[0]
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    nn = NearestNeighbors(n_neighbors=1).fit(x)
    _, idx = nn.kneighbors(x, exclude_self=True)
    nearest = idx[:, 0]
    links = []
    for i in range(n):
        j = int(nearest[i])
        if i < j and nearest[j] == i and y[i] != y[j]:
            links.append((i, j))
    return np.asarray(links, dtype=np.intp).reshape(-1, 2)


class TomekLinks(BaseSampler):
    """Remove the majority-class member of every Tomek link.

    Parameters
    ----------
    remove_both:
        When True, both members of each link are dropped (the "cleaning"
        variant); the default removes only the sample whose class is more
        frequent in the dataset, matching the paper's usage of Tomek links
        as a majority undersampler.
    """

    def __init__(self, remove_both: bool = False):
        self.remove_both = bool(remove_both)

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        links = find_tomek_links(x, y)
        classes, counts = np.unique(y, return_counts=True)
        freq = dict(zip(classes.tolist(), counts.tolist()))

        drop: set[int] = set()
        for i, j in links:
            if self.remove_both:
                drop.add(int(i))
                drop.add(int(j))
            elif freq[int(y[i])] >= freq[int(y[j])]:
                drop.add(int(i))
            else:
                drop.add(int(j))

        keep = np.setdiff1d(np.arange(x.shape[0], dtype=np.intp), sorted(drop))
        if keep.size == 0:
            # Never return an empty dataset; pathological tiny inputs only.
            keep = np.arange(x.shape[0], dtype=np.intp)
        self.sample_indices_ = keep
        return x[keep], y[keep]
