"""Common sampler interface and input validation.

Every sampler in this package — including :class:`repro.core.gbabs.GBABS` —
exposes ``fit_resample(x, y) -> (x_resampled, y_resampled)``.  Undersamplers
additionally publish ``sample_indices_`` (indices into the input) after a
call; oversamplers leave it as ``None`` because synthetic rows have no source
index.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["BaseSampler", "IdentitySampler", "check_xy"]


def check_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise a labelled dataset.

    Returns float64 features and an integer label vector; raises
    ``ValueError`` on shape mismatches or empty input.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError("x must be a 2-D feature matrix")
    if y.ndim != 1 or y.shape[0] != x.shape[0]:
        raise ValueError("y must be 1-D and aligned with x")
    if x.shape[0] == 0:
        raise ValueError("cannot sample an empty dataset")
    if not np.isfinite(x).all():
        raise ValueError("x contains NaN or infinite values")
    if not np.issubdtype(y.dtype, np.integer):
        y = y.astype(np.intp)
    return x, y


class BaseSampler(abc.ABC):
    """Abstract sampler with the ``fit_resample`` contract.

    Attributes
    ----------
    sample_indices_:
        For undersamplers, sorted indices of the kept input rows; ``None``
        for oversamplers.
    """

    sample_indices_: np.ndarray | None = None

    @abc.abstractmethod
    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resample ``(x, y)`` and return the new dataset."""

    def sampling_ratio(self, n_input: int) -> float:
        """Kept fraction for undersamplers (requires ``sample_indices_``)."""
        if self.sample_indices_ is None:
            raise RuntimeError(
                "sampling_ratio is only defined for fitted undersamplers"
            )
        return self.sample_indices_.size / max(n_input, 1)


class IdentitySampler(BaseSampler):
    """The no-op sampler ("Ori" in Fig. 9): returns the dataset unchanged."""

    def fit_resample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = check_xy(x, y)
        self.sample_indices_ = np.arange(x.shape[0], dtype=np.intp)
        return x, y
