"""Minimal estimator protocol mirroring the scikit-learn conventions.

The paper evaluates its sampling methods through five scikit-learn-style
classifiers.  scikit-learn is not available in this build, so this module
defines the small API surface the evaluation harness relies on:

* ``fit(x, y) -> self`` and ``predict(x) -> labels``;
* ``get_params()`` / ``set_params(**p)`` introspected from ``__init__``;
* :func:`clone` producing an unfitted copy with identical hyperparameters;
* ``classes_`` listing the labels seen during fit.

Fitted state uses the trailing-underscore convention so ``clone`` can tell
hyperparameters from learned attributes.
"""

from __future__ import annotations

import inspect

import numpy as np

__all__ = ["BaseClassifier", "clone", "check_fit_inputs", "validate_fitted"]


def check_fit_inputs(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalise training inputs: float64 features, intp labels."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError("x must be a 2-D feature matrix")
    if y.ndim != 1 or y.shape[0] != x.shape[0]:
        raise ValueError("y must be 1-D and aligned with x")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.isfinite(x).all():
        raise ValueError("x contains NaN or infinite values")
    if not np.issubdtype(y.dtype, np.integer):
        y = y.astype(np.intp)
    return x, y


def validate_fitted(estimator: "BaseClassifier") -> None:
    """Raise if ``estimator`` has not been fitted yet."""
    if getattr(estimator, "classes_", None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} must be fitted before calling predict"
        )


class BaseClassifier:
    """Base class providing parameter introspection and scoring."""

    classes_: np.ndarray | None = None

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, param in sig.parameters.items()
            if name != "self"
            and param.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        ]

    def get_params(self) -> dict:
        """Constructor hyperparameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseClassifier":
        """Update hyperparameters in place; unknown names raise."""
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"invalid parameter {key!r} for {type(self).__name__}"
                )
            setattr(self, key, value)
        return self

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(x, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(x) == y))

    # Internal helpers shared by subclasses ------------------------------

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return labels re-encoded as 0..K-1."""
        classes, encoded = np.unique(y, return_inverse=True)
        self.classes_ = classes
        return encoded.astype(np.intp)


def clone(estimator: BaseClassifier) -> BaseClassifier:
    """Unfitted copy of ``estimator`` with the same hyperparameters."""
    return type(estimator)(**estimator.get_params())
