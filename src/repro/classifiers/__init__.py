"""From-scratch classifiers standing in for the paper's scikit-learn /
XGBoost / LightGBM models.

:func:`make_classifier` builds any of the five evaluation classifiers by the
names used in Tables II–IV: ``dt``, ``knn``, ``rf``, ``xgboost``,
``lightgbm``.
"""

from __future__ import annotations

from repro.classifiers.base import BaseClassifier, clone
from repro.classifiers.boosting import LightGBMClassifier, XGBoostClassifier
from repro.classifiers.forest import RandomForestClassifier
from repro.classifiers.gb_classifier import GranularBallClassifier
from repro.classifiers.knn import KNeighborsClassifier
from repro.classifiers.tree import DecisionTreeClassifier

__all__ = [
    "BaseClassifier",
    "clone",
    "DecisionTreeClassifier",
    "KNeighborsClassifier",
    "RandomForestClassifier",
    "XGBoostClassifier",
    "LightGBMClassifier",
    "GranularBallClassifier",
    "CLASSIFIER_NAMES",
    "make_classifier",
]

_FACTORIES = {
    "dt": DecisionTreeClassifier,
    "knn": KNeighborsClassifier,
    "rf": RandomForestClassifier,
    "xgboost": XGBoostClassifier,
    "lightgbm": LightGBMClassifier,
    "gb": GranularBallClassifier,
}

CLASSIFIER_NAMES = tuple(_FACTORIES)


def make_classifier(name: str, **kwargs) -> BaseClassifier:
    """Instantiate an evaluation classifier by its paper name."""
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown classifier {name!r}; available: {', '.join(sorted(_FACTORIES))}"
        )
    return _FACTORIES[key](**kwargs)
