"""Granular-ball classifier — the GBC decision rule (§III-A related work).

Granular-ball computing replaces per-sample computation with per-ball
computation: a query point is assigned the label of the ball whose *surface*
it is closest to, i.e. the ball minimising ``dist(x, c_i) - r_i`` (Xia et
al., 2019).  Pairing this with RD-GBG balls gives the library a native
GB-based classifier alongside the scikit-learn-style substrates, and makes
the compression story measurable end-to-end: ``m`` balls stand in for ``n``
samples at prediction time.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted
from repro.core.rdgbg import RDGBG

__all__ = ["GranularBallClassifier"]


class GranularBallClassifier(BaseClassifier):
    """Nearest-ball-surface classifier over RD-GBG granular balls.

    Parameters
    ----------
    rho:
        Density tolerance of the internal :class:`RDGBG` generator.
    random_state:
        Seed for the generator's centre selection.
    include_orphans:
        Keep the radius-0 orphan balls in the decision rule.  Orphans carry
        low-density/leftover samples; excluding them (the default keeps
        them) yields a smoother but less complete decision surface.
    backend:
        Granulation backend forwarded to :class:`RDGBG` (``"engine"`` or
        ``"legacy"``; see :mod:`repro.core.engine`).

    Attributes
    ----------
    ball_set_:
        The granular balls backing the decision rule.
    n_balls_:
        Number of balls used (the model's "size").
    """

    def __init__(
        self,
        rho: int = 5,
        random_state: int | None = None,
        include_orphans: bool = True,
        backend: str = "engine",
    ):
        self.rho = int(rho)
        self.random_state = random_state
        self.include_orphans = bool(include_orphans)
        self.backend = str(backend)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GranularBallClassifier":
        x, y = check_fit_inputs(x, y)
        self._encode_labels(y)
        result = RDGBG(
            rho=self.rho, random_state=self.random_state, backend=self.backend
        ).generate(x, y)
        ball_set = result.ball_set
        if not self.include_orphans:
            keep = ~ball_set.orphan_mask
            # Never drop every ball (single-class or all-orphan sets).
            if keep.any() and not keep.all():
                ball_set = ball_set.select(keep)
        self.ball_set_ = ball_set
        self.n_balls_ = len(self.ball_set_)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        validate_fitted(self)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return self.ball_set_.predict(x)

    def compression_ratio(self) -> float:
        """Balls per training sample — the GBC efficiency measure."""
        validate_fitted(self)
        return self.n_balls_ / max(self.ball_set_.n_source_samples, 1)

    def freeze(self, path) -> dict:
        """Freeze the fitted model into an mmap-able serving artifact.

        Writes the versioned, checksummed artifact consumed by
        :class:`repro.serving.FrozenPredictor` and ``repro serve``; the
        frozen predict path is bit-identical to :meth:`predict`.  Returns
        the artifact header (layout + metadata).
        """
        from repro.serving.artifact import freeze_classifier

        return freeze_classifier(self, path)
