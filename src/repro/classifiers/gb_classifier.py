"""Granular-ball classifier — the GBC decision rule (§III-A related work).

Granular-ball computing replaces per-sample computation with per-ball
computation: a query point is assigned the label of the ball whose *surface*
it is closest to, i.e. the ball minimising ``dist(x, c_i) - r_i`` (Xia et
al., 2019).  Pairing this with RD-GBG balls gives the library a native
GB-based classifier alongside the scikit-learn-style substrates, and makes
the compression story measurable end-to-end: ``m`` balls stand in for ``n``
samples at prediction time.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted
from repro.core.granular_ball import GranularBallSet
from repro.core.rdgbg import RDGBG

__all__ = ["GranularBallClassifier"]


class GranularBallClassifier(BaseClassifier):
    """Nearest-ball-surface classifier over RD-GBG granular balls.

    Parameters
    ----------
    rho:
        Density tolerance of the internal :class:`RDGBG` generator.
    random_state:
        Seed for the generator's centre selection.
    include_orphans:
        Keep the radius-0 orphan balls in the decision rule.  Orphans carry
        low-density/leftover samples; excluding them (the default keeps
        them) yields a smoother but less complete decision surface.

    Attributes
    ----------
    ball_set_:
        The granular balls backing the decision rule.
    n_balls_:
        Number of balls used (the model's "size").
    """

    def __init__(
        self,
        rho: int = 5,
        random_state: int | None = None,
        include_orphans: bool = True,
    ):
        self.rho = int(rho)
        self.random_state = random_state
        self.include_orphans = bool(include_orphans)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GranularBallClassifier":
        x, y = check_fit_inputs(x, y)
        self._encode_labels(y)
        result = RDGBG(rho=self.rho, random_state=self.random_state).generate(x, y)
        balls = list(result.ball_set)
        if not self.include_orphans:
            non_orphans = [b for b in balls if not b.is_orphan]
            # Never drop every ball (single-class or all-orphan sets).
            balls = non_orphans or balls
        self.ball_set_ = GranularBallSet(balls, n_source_samples=x.shape[0])
        self.n_balls_ = len(self.ball_set_)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        validate_fitted(self)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return self.ball_set_.predict(x)

    def compression_ratio(self) -> float:
        """Balls per training sample — the GBC efficiency measure."""
        validate_fitted(self)
        return self.n_balls_ / max(self.ball_set_.n_source_samples, 1)
