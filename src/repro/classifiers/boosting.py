"""Histogram-based gradient boosting with the two growth policies the paper
evaluates through XGBoost and LightGBM.

Both classifiers share the same machinery — quantile feature binning,
second-order (gradient/hessian) histogram split finding, softmax multiclass
objective — and differ exactly where the original systems differ:

* :class:`XGBoostClassifier` grows trees **depth-wise** to ``max_depth`` with
  XGBoost's defaults (``eta=0.3``, ``max_depth=6``, ``lambda=1``);
* :class:`LightGBMClassifier` grows trees **leaf-wise** (best-gain-first) to
  ``num_leaves`` with LightGBM's defaults (``lr=0.1``, ``num_leaves=31``,
  ``min_child_samples=20``).

These are clean-room reproductions of the algorithms (Chen & Guestrin 2016;
Ke et al. 2017), not bindings: the offline environment has neither library.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted

__all__ = ["XGBoostClassifier", "LightGBMClassifier"]

_LEAF = -1
_HESS_EPS = 1e-9


class _Binner:
    """Quantile feature binning shared by training and prediction.

    Each feature gets at most ``max_bins`` bins delimited by unique
    quantile edges of the training column; transform maps values to uint
    codes with ``searchsorted`` so train/test binning is identical.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = int(max_bins)
        self.edges_: list[np.ndarray] | None = None

    def fit(self, x: np.ndarray) -> "_Binner":
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        # One quantile call over the whole matrix; each row of ``table``
        # is one feature's ascending quantile sequence.
        table = np.quantile(x, quantiles, axis=0).T
        # Dedupe each row in place of the per-column np.unique: keep first
        # occurrences, pack them left (stable sort preserves ascending
        # order) and pad the tail with +inf so padded slots never match a
        # finite value in transform.
        keep = np.ones(table.shape, dtype=bool)
        keep[:, 1:] = table[:, 1:] != table[:, :-1]
        counts = keep.sum(axis=1)
        packed = np.take_along_axis(
            table, np.argsort(~keep, axis=1, kind="stable"), axis=1
        )
        packed[np.arange(table.shape[1])[None, :] >= counts[:, None]] = np.inf
        self._edge_matrix = packed
        self._edge_counts = counts
        self.edges_ = [packed[f, : counts[f]] for f in range(table.shape[0])]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        # searchsorted(edges, v, "left") == number of edges strictly below
        # v, computed for all features at once via a broadcast compare
        # (row-chunked to bound the boolean temporary).
        edges = self._edge_matrix
        n, p = x.shape
        codes = np.empty((n, p), dtype=np.int32)
        step = max(1, (1 << 24) // max(1, p * edges.shape[1]))
        for start in range(0, n, step):
            stop = min(n, start + step)
            codes[start:stop] = (
                x[start:stop, :, None] > edges[None, :, :]
            ).sum(axis=2, dtype=np.int32)
        return codes

    @property
    def n_bins(self) -> int:
        """Upper bound on codes + 1 (uniform across features for hists)."""
        return self.max_bins


@dataclass
class _SplitParams:
    """Regularisation and constraint knobs for histogram split finding."""

    reg_lambda: float
    gamma: float
    min_child_samples: int
    min_child_weight: float


class _HistTree:
    """One regression tree over binned features, predicting leaf weights."""

    def __init__(self, n_bins: int, params: _SplitParams):
        self.n_bins = n_bins
        self.params = params
        self.feature: list[int] = []
        self.bin_thr: list[int] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []

    # -- construction helpers -------------------------------------------

    def new_node(self, g_sum: float, h_sum: float) -> int:
        """Append a leaf with the optimal second-order weight."""
        self.feature.append(_LEAF)
        self.bin_thr.append(0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(-g_sum / (h_sum + self.params.reg_lambda + _HESS_EPS))
        return len(self.feature) - 1

    def best_split(
        self, codes: np.ndarray, g: np.ndarray, h: np.ndarray, idx: np.ndarray
    ):
        """Best (gain, feature, bin, left_idx, right_idx) for a node, or None.

        Builds per-feature gradient/hessian/count histograms with a single
        flattened ``bincount`` and scans every bin boundary at once.
        """
        p = codes.shape[1]
        n_bins = self.n_bins
        node_codes = codes[idx]
        offsets = (np.arange(p, dtype=np.int64) * n_bins)[None, :]
        flat = (node_codes.astype(np.int64) + offsets).ravel()

        gw = np.repeat(g[idx], p)
        hw = np.repeat(h[idx], p)
        hist_g = np.bincount(flat, weights=gw, minlength=p * n_bins).reshape(p, n_bins)
        hist_h = np.bincount(flat, weights=hw, minlength=p * n_bins).reshape(p, n_bins)
        hist_n = np.bincount(flat, minlength=p * n_bins).reshape(p, n_bins)

        cum_g = np.cumsum(hist_g, axis=1)[:, :-1]
        cum_h = np.cumsum(hist_h, axis=1)[:, :-1]
        cum_n = np.cumsum(hist_n, axis=1)[:, :-1]
        g_total = float(g[idx].sum())
        h_total = float(h[idx].sum())
        n_total = idx.size

        lam = self.params.reg_lambda
        right_g = g_total - cum_g
        right_h = h_total - cum_h
        right_n = n_total - cum_n

        gain = 0.5 * (
            cum_g**2 / (cum_h + lam + _HESS_EPS)
            + right_g**2 / (right_h + lam + _HESS_EPS)
            - g_total**2 / (h_total + lam + _HESS_EPS)
        ) - self.params.gamma

        mcs = self.params.min_child_samples
        mcw = self.params.min_child_weight
        valid = (
            (cum_n >= mcs)
            & (right_n >= mcs)
            & (cum_h >= mcw)
            & (right_h >= mcw)
        )
        gain = np.where(valid, gain, -np.inf)
        best = np.argmax(gain)
        feat, b = np.unravel_index(best, gain.shape)
        best_gain = float(gain[feat, b])
        if not np.isfinite(best_gain) or best_gain <= 1e-12:
            return None

        go_left = node_codes[:, feat] <= b
        return best_gain, int(feat), int(b), idx[go_left], idx[~go_left]

    def make_internal(self, node: int, feat: int, b: int, left: int, right: int):
        self.feature[node] = feat
        self.bin_thr[node] = b
        self.left[node] = left
        self.right[node] = right

    def finalize(self) -> None:
        """Freeze list buffers into prediction-ready arrays."""
        self.feature_ = np.asarray(self.feature, dtype=np.intp)
        self.bin_thr_ = np.asarray(self.bin_thr, dtype=np.int32)
        self.left_ = np.asarray(self.left, dtype=np.intp)
        self.right_ = np.asarray(self.right, dtype=np.intp)
        self.value_ = np.asarray(self.value, dtype=np.float64)

    # -- inference --------------------------------------------------------

    def predict(self, codes: np.ndarray) -> np.ndarray:
        node = np.zeros(codes.shape[0], dtype=np.intp)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return self.value_[node]
            rows = np.flatnonzero(active)
            f = feat[rows]
            go_left = codes[rows, f] <= self.bin_thr_[node[rows]]
            node[rows] = np.where(
                go_left, self.left_[node[rows]], self.right_[node[rows]]
            )


def _grow_depthwise(
    tree: _HistTree,
    codes: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    max_depth: int,
) -> _HistTree:
    """XGBoost-style growth: split every eligible node, level by level."""
    root_idx = np.arange(codes.shape[0], dtype=np.intp)
    stack = [(root_idx, 0, _LEAF, False)]
    while stack:
        idx, depth, parent, is_right = stack.pop()
        node = tree.new_node(float(g[idx].sum()), float(h[idx].sum()))
        if parent != _LEAF:
            if is_right:
                tree.right[parent] = node
            else:
                tree.left[parent] = node
        if depth >= max_depth:
            continue
        split = tree.best_split(codes, g, h, idx)
        if split is None:
            continue
        _, feat, b, left_idx, right_idx = split
        tree.feature[node] = feat
        tree.bin_thr[node] = b
        stack.append((right_idx, depth + 1, node, True))
        stack.append((left_idx, depth + 1, node, False))
    tree.finalize()
    return tree


def _grow_leafwise(
    tree: _HistTree,
    codes: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    num_leaves: int,
) -> _HistTree:
    """LightGBM-style growth: always split the leaf with the largest gain."""
    root_idx = np.arange(codes.shape[0], dtype=np.intp)
    root = tree.new_node(float(g[root_idx].sum()), float(h[root_idx].sum()))
    heap: list = []
    counter = 0  # tie-breaker so numpy arrays never get compared

    def push(node: int, idx: np.ndarray) -> None:
        nonlocal counter
        split = tree.best_split(codes, g, h, idx)
        if split is not None:
            gain, feat, b, left_idx, right_idx = split
            heapq.heappush(
                heap, (-gain, counter, node, feat, b, left_idx, right_idx)
            )
            counter += 1

    push(root, root_idx)
    n_leaves = 1
    while heap and n_leaves < num_leaves:
        _, _, node, feat, b, left_idx, right_idx = heapq.heappop(heap)
        left = tree.new_node(float(g[left_idx].sum()), float(h[left_idx].sum()))
        right = tree.new_node(float(g[right_idx].sum()), float(h[right_idx].sum()))
        tree.make_internal(node, feat, b, left, right)
        n_leaves += 1
        push(left, left_idx)
        push(right, right_idx)
    tree.finalize()
    return tree


class _GradientBoostingBase(BaseClassifier):
    """Shared softmax boosting loop; subclasses choose the growth policy."""

    n_estimators: int
    learning_rate: float
    max_bins: int
    reg_lambda: float
    gamma: float
    min_child_samples: int
    min_child_weight: float

    def _grow(self, tree: _HistTree, codes, g, h) -> _HistTree:
        raise NotImplementedError

    def fit(self, x: np.ndarray, y: np.ndarray):
        x, y = check_fit_inputs(x, y)
        encoded = self._encode_labels(y)
        n = x.shape[0]
        k = self.classes_.size

        self._binner = _Binner(max_bins=self.max_bins).fit(x)
        codes = self._binner.transform(x)

        onehot = np.zeros((n, k), dtype=np.float64)
        onehot[np.arange(n), encoded] = 1.0
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self._base_score = np.log(priors)

        raw = np.tile(self._base_score, (n, 1))
        params = _SplitParams(
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            min_child_samples=self.min_child_samples,
            min_child_weight=self.min_child_weight,
        )
        self._trees: list[list[_HistTree]] = []
        for _ in range(self.n_estimators):
            prob = _softmax(raw)
            grad = prob - onehot
            hess = np.clip(prob * (1.0 - prob), 1e-6, None)
            round_trees = []
            for cls in range(k):
                tree = _HistTree(self._binner.n_bins, params)
                tree = self._grow(tree, codes, grad[:, cls], hess[:, cls])
                raw[:, cls] += self.learning_rate * tree.predict(codes)
                round_trees.append(tree)
            self._trees.append(round_trees)
        return self

    def _raw_scores(self, x: np.ndarray) -> np.ndarray:
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        codes = self._binner.transform(x)
        raw = np.tile(self._base_score, (x.shape[0], 1))
        for round_trees in self._trees:
            for cls, tree in enumerate(round_trees):
                raw[:, cls] += self.learning_rate * tree.predict(codes)
        return raw

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return _softmax(self._raw_scores(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        raw = self._raw_scores(x)
        return self.classes_[np.argmax(raw, axis=1)]


def _softmax(raw: np.ndarray) -> np.ndarray:
    shifted = raw - raw.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class XGBoostClassifier(_GradientBoostingBase):
    """Depth-wise second-order boosting with XGBoost's default knobs.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth, reg_lambda, gamma,
    min_child_weight:
        Match the XGBoost defaults (100, 0.3, 6, 1.0, 0.0, 1.0).
    max_bins:
        Histogram resolution (``tree_method=hist`` analogue).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 6,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        max_bins: int = 64,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.min_child_weight = float(min_child_weight)
        self.min_child_samples = 1
        self.max_bins = int(max_bins)

    def _grow(self, tree, codes, g, h):
        return _grow_depthwise(tree, codes, g, h, self.max_depth)


class LightGBMClassifier(_GradientBoostingBase):
    """Leaf-wise histogram boosting with LightGBM's default knobs.

    Parameters
    ----------
    n_estimators, learning_rate, num_leaves, min_child_samples, reg_lambda:
        Match the LightGBM defaults (100, 0.1, 31, 20, 0.0).
    max_bins:
        Histogram resolution.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        num_leaves: int = 31,
        min_child_samples: int = 20,
        reg_lambda: float = 0.0,
        max_bins: int = 64,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.num_leaves = int(num_leaves)
        self.min_child_samples = int(min_child_samples)
        self.reg_lambda = float(reg_lambda)
        self.gamma = 0.0
        self.min_child_weight = 1e-3
        self.max_bins = int(max_bins)

    def _grow(self, tree, codes, g, h):
        return _grow_leafwise(tree, codes, g, h, self.num_leaves)
