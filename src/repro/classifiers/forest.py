"""Random forest classifier (Breiman, 2001).

Bootstrap-aggregated CART trees with per-node random feature subsets
(``sqrt(p)`` by default) and soft voting (averaged leaf class
distributions), matching scikit-learn's ``RandomForestClassifier``
behaviour used by the paper.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted
from repro.classifiers.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Ensemble of randomised CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (scikit-learn default: 100).
    max_depth, min_samples_split, min_samples_leaf:
        Forwarded to each tree.
    max_features:
        Per-node feature subset size; default ``"sqrt"``.
    bootstrap:
        Draw each tree's training set with replacement.
    random_state:
        Seed for bootstrap draws and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x, y = check_fit_inputs(x, y)
        self._encode_labels(y)
        n = x.shape[0]
        rng = np.random.default_rng(self.random_state)

        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(x[sample], y[sample])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Averaged per-tree leaf class distributions (soft voting).

        Trees fitted on bootstrap folds may have seen fewer classes than the
        forest; their probabilities are re-aligned onto ``classes_``.
        """
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        n_classes = self.classes_.size
        agg = np.zeros((x.shape[0], n_classes), dtype=np.float64)
        class_pos = {int(c): i for i, c in enumerate(self.classes_)}
        for tree in self.estimators_:
            proba = tree.predict_proba(x)
            cols = [class_pos[int(c)] for c in tree.classes_]
            agg[:, cols] += proba
        agg /= len(self.estimators_)
        return agg

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]
