"""k-nearest-neighbour classifier (Cover & Hart, 1967).

Matches scikit-learn's ``KNeighborsClassifier`` defaults used by the paper:
``k = 5``, uniform weights, Euclidean metric, ties broken toward the
smallest class label (the argmax of the vote count vector).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted
from repro.core.neighbors import NearestNeighbors

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseClassifier):
    """Majority-vote nearest-neighbour classifier.

    Parameters
    ----------
    n_neighbors:
        Vote neighbourhood size; clipped to the training-set size at fit
        time so small resampled folds never crash.
    """

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = int(n_neighbors)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        x, y = check_fit_inputs(x, y)
        self._y_encoded = self._encode_labels(y)
        self._k = min(self.n_neighbors, x.shape[0])
        self._nn = NearestNeighbors(n_neighbors=self._k).fit(x)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        _, idx = self._nn.kneighbors(x, n_neighbors=self._k)
        votes = self._y_encoded[idx]
        n_classes = self.classes_.size
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=n_classes), 1, votes
        )
        return self.classes_[np.argmax(counts, axis=1)]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Vote shares per class, ordered as ``classes_``."""
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        _, idx = self._nn.kneighbors(x, n_neighbors=self._k)
        votes = self._y_encoded[idx]
        n_classes = self.classes_.size
        counts = np.apply_along_axis(
            lambda row: np.bincount(row, minlength=n_classes), 1, votes
        )
        return counts / counts.sum(axis=1, keepdims=True)
