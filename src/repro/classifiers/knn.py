"""k-nearest-neighbour classifier (Cover & Hart, 1967).

Matches scikit-learn's ``KNeighborsClassifier`` defaults used by the paper:
``k = 5``, uniform weights, Euclidean metric, ties broken toward the
smallest class label (the argmax of the vote count vector).
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted
from repro.core.neighbors import NearestNeighbors

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseClassifier):
    """Majority-vote nearest-neighbour classifier.

    Parameters
    ----------
    n_neighbors:
        Vote neighbourhood size; clipped to the training-set size at fit
        time so small resampled folds never crash.
    """

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = int(n_neighbors)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        x, y = check_fit_inputs(x, y)
        self._y_encoded = self._encode_labels(y)
        self._k = min(self.n_neighbors, x.shape[0])
        self._nn = NearestNeighbors(n_neighbors=self._k).fit(x)
        return self

    def _vote_counts(self, x: np.ndarray) -> np.ndarray:
        """Per-query class vote counts, shape ``(n_queries, n_classes)``.

        One flattened ``bincount`` over ``query_index * n_classes + vote``
        scatter-adds every neighbour vote at once (no per-row Python work).
        """
        _, idx = self._nn.kneighbors(x, n_neighbors=self._k)
        votes = self._y_encoded[idx]
        n_queries = votes.shape[0]
        n_classes = self.classes_.size
        flat = np.arange(n_queries, dtype=np.intp)[:, None] * n_classes + votes
        return np.bincount(
            flat.ravel(), minlength=n_queries * n_classes
        ).reshape(n_queries, n_classes)

    def predict(self, x: np.ndarray) -> np.ndarray:
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        counts = self._vote_counts(x)
        return self.classes_[np.argmax(counts, axis=1)]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Vote shares per class, ordered as ``classes_``."""
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        counts = self._vote_counts(x)
        return counts / counts.sum(axis=1, keepdims=True)
