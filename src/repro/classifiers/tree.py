"""CART decision tree (Breiman et al., 1984) with Gini impurity.

This is the workhorse classifier of the paper's evaluation (Tables II–IV and
Figs. 9–11 all use DT), so the split search is fully vectorised: at each
node every candidate feature is argsorted once and all candidate thresholds
are scored simultaneously through one-hot label cumsums.  Defaults mirror
scikit-learn's ``DecisionTreeClassifier`` (unbounded depth, Gini, two-sample
minimum split).

The fitted tree is stored as flat arrays (``feature``, ``threshold``,
``children_left``, ``children_right``, ``value``) so prediction is a
vectorised level-synchronous descent rather than per-sample recursion.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, check_fit_inputs, validate_fitted

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


class DecisionTreeClassifier(BaseClassifier):
    """Gini CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or ``min_samples_*``
        stops (the scikit-learn default the paper uses).
    min_samples_split:
        Minimum node size eligible for splitting.
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        ``None`` (all features), ``"sqrt"``, ``"log2"`` or an int — the
        per-node random feature subset used by random forests.
    random_state:
        Seed for the feature subsampling (only relevant with
        ``max_features``).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ):
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = check_fit_inputs(x, y)
        encoded = self._encode_labels(y)
        n, p = x.shape
        k = self.classes_.size
        onehot = np.zeros((n, k), dtype=np.float64)
        onehot[np.arange(n), encoded] = 1.0
        self._rng = np.random.default_rng(self.random_state)
        self._n_subset_features = self._resolve_max_features(p)

        # Growable flat node arrays.
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[np.ndarray] = []

        max_depth = np.inf if self.max_depth is None else self.max_depth
        stack = [(np.arange(n, dtype=np.intp), 0, _LEAF, False)]
        while stack:
            idx, depth, parent, is_right = stack.pop()
            node_id = self._new_node(onehot[idx].sum(axis=0))
            if parent != _LEAF:
                if is_right:
                    self._right[parent] = node_id
                else:
                    self._left[parent] = node_id

            counts = self._value[node_id]
            pure = np.count_nonzero(counts) <= 1
            if (
                pure
                or depth >= max_depth
                or idx.size < self.min_samples_split
            ):
                continue
            split = self._best_split(x, onehot, idx)
            if split is None:
                continue
            feat, thr = split
            self._feature[node_id] = feat
            self._threshold[node_id] = thr
            go_left = x[idx, feat] <= thr
            stack.append((idx[~go_left], depth + 1, node_id, True))
            stack.append((idx[go_left], depth + 1, node_id, False))

        self.feature_ = np.asarray(self._feature, dtype=np.intp)
        self.threshold_ = np.asarray(self._threshold, dtype=np.float64)
        self.children_left_ = np.asarray(self._left, dtype=np.intp)
        self.children_right_ = np.asarray(self._right, dtype=np.intp)
        self.value_ = np.vstack(self._value)
        self.n_nodes_ = self.feature_.size
        del self._feature, self._threshold, self._left, self._right, self._value
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class distribution of the reached leaf, per query row."""
        validate_fitted(self)
        leaf = self.apply(x)
        counts = self.value_[leaf]
        return counts / counts.sum(axis=1, keepdims=True)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf node index reached by each query row (vectorised descent)."""
        validate_fitted(self)
        x = np.asarray(x, dtype=np.float64)
        node = np.zeros(x.shape[0], dtype=np.intp)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return node
            rows = np.flatnonzero(active)
            f = feat[rows]
            go_left = x[rows, f] <= self.threshold_[node[rows]]
            node[rows] = np.where(
                go_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        validate_fitted(self)
        if not self.n_nodes_:
            return 0
        # Level-order frontier walk: one array pass per level instead of a
        # Python loop over every node.
        depth = 0
        frontier = np.array([0], dtype=np.intp)
        while True:
            internal = frontier[self.feature_[frontier] != _LEAF]
            if internal.size == 0:
                return depth
            frontier = np.concatenate(
                (self.children_left_[internal], self.children_right_[internal])
            )
            depth += 1

    # ------------------------------------------------------------------

    def _resolve_max_features(self, p: int) -> int:
        spec = self.max_features
        if spec is None:
            return p
        if spec == "sqrt":
            return max(1, int(np.sqrt(p)))
        if spec == "log2":
            return max(1, int(np.log2(p)))
        if isinstance(spec, (int, np.integer)):
            if not 1 <= spec <= p:
                raise ValueError("integer max_features out of range")
            return int(spec)
        raise ValueError(f"unsupported max_features spec: {spec!r}")

    def _new_node(self, counts: np.ndarray) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(np.nan)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(counts)
        return len(self._feature) - 1

    def _best_split(
        self, x: np.ndarray, onehot: np.ndarray, idx: np.ndarray
    ) -> tuple[int, float] | None:
        """Best (feature, threshold) by weighted Gini decrease, or None.

        All features in the (possibly subsampled) candidate set are scored
        at once: labels are sorted along each feature, left-side class
        counts come from a single cumsum, and the split objective
        ``n_l·gini_l + n_r·gini_r = n - Σ l²/n_l - Σ r²/n_r`` is minimised
        over every valid boundary between distinct values.
        """
        n_node = idx.size
        p = x.shape[1]
        if self._n_subset_features < p:
            feats = self._rng.choice(p, size=self._n_subset_features, replace=False)
        else:
            feats = np.arange(p)

        sub_x = x[np.ix_(idx, feats)]                    # (n, f)
        order = np.argsort(sub_x, axis=0, kind="stable")  # (n, f)
        sorted_vals = np.take_along_axis(sub_x, order, axis=0)
        sorted_onehot = onehot[idx][order]                # (n, f, K)

        left_counts = np.cumsum(sorted_onehot, axis=0)    # (n, f, K)
        total = left_counts[-1]                           # (f, K)

        boundaries = left_counts[:-1]                     # split after row i
        n_left = np.arange(1, n_node, dtype=np.float64)[:, None]
        n_right = n_node - n_left
        sum_l2 = np.einsum("ifk,ifk->if", boundaries, boundaries)
        right_counts = total[None, :, :] - boundaries
        sum_r2 = np.einsum("ifk,ifk->if", right_counts, right_counts)
        # Weighted impurity up to the constant n_node; lower is better.
        objective = -sum_l2 / n_left - sum_r2 / n_right

        distinct = sorted_vals[1:] > sorted_vals[:-1]
        msl = self.min_samples_leaf
        if msl > 1:
            pos_ok = (n_left >= msl) & (n_right >= msl)
            valid = distinct & pos_ok
        else:
            valid = distinct
        if not valid.any():
            return None

        # Like scikit-learn, any impure node with a valid boundary is split,
        # even at zero Gini gain (required for XOR-like structure where the
        # first cut alone does not reduce impurity).
        objective = np.where(valid, objective, np.inf)
        flat_best = np.argmin(objective)
        row, col = np.unravel_index(flat_best, objective.shape)

        thr = 0.5 * (sorted_vals[row, col] + sorted_vals[row + 1, col])
        # Midpoints can round onto the upper value; keep the comparison
        # consistent with `<= thr` partitioning.
        if thr >= sorted_vals[row + 1, col]:
            thr = sorted_vals[row, col]
        return int(feats[col]), float(thr)
