"""repro — reproduction of "Approximate Borderline Sampling using
Granular-Ball for Classification Tasks" (Xie, Zhang & Xia, ICDE 2025).

The package splits into the paper's contribution and its substrates:

* :mod:`repro.core` — RD-GBG granular-ball generation and GBABS sampling.
* :mod:`repro.sampling` — every baseline sampler of the evaluation.
* :mod:`repro.classifiers` — from-scratch stand-ins for the five
  scikit-learn / XGBoost / LightGBM classifiers.
* :mod:`repro.datasets` — synthetic surrogates of the 13 Table I datasets.
* :mod:`repro.evaluation` — metrics, cross-validation, Wilcoxon, ranking.
* :mod:`repro.viz` — exact t-SNE and ASCII figure renderers.
* :mod:`repro.experiments` — regenerators for every table and figure.

Quickstart::

    from repro import GBABS
    sampler = GBABS(rho=5, random_state=0)
    x_border, y_border = sampler.fit_resample(x, y)
"""

from repro.core import GBABS, RDGBG, GranularBall, GranularBallSet
from repro.pipeline import SamplingPipeline

__version__ = "1.0.0"

__all__ = [
    "GBABS",
    "RDGBG",
    "GranularBall",
    "GranularBallSet",
    "SamplingPipeline",
    "__version__",
]
