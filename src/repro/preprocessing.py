"""Preprocessing utilities: scalers, label encoding, dataset splitting.

Distance-based samplers (every granular-ball method, SMOTE, Tomek links,
kNN) are sensitive to feature scales, so real deployments normalise first.
These are the minimal scikit-learn-style tools a downstream user needs, with
the same fit/transform contract as the rest of the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "train_test_split",
]


def _check_matrix(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    if x.shape[0] == 0:
        raise ValueError("expected at least one sample")
    return x


class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    Constant features (zero variance) are centred but left unscaled, so
    transform never divides by zero.
    """

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = _check_matrix(x)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        x = _check_matrix(x)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        x = _check_matrix(x)
        return x * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into ``[lo, hi]`` (default ``[0, 1]``).

    Constant features map to the lower bound.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(lo), float(hi))
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = _check_matrix(x)
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        x = _check_matrix(x)
        lo, hi = self.feature_range
        unit = (x - self.min_) / self.range_
        return unit * (hi - lo) + lo

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        x = _check_matrix(x)
        lo, hi = self.feature_range
        unit = (x - lo) / (hi - lo)
        return unit * self.range_ + self.min_


class LabelEncoder:
    """Map arbitrary hashable labels to ``0..K-1`` integer codes."""

    def __init__(self):
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        if self.classes_.size == 0:
            raise ValueError("cannot fit on empty labels")
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        valid = (codes < self.classes_.size) & (self.classes_[
            np.minimum(codes, self.classes_.size - 1)
        ] == y)
        if not valid.all():
            unseen = np.unique(y[~valid])
            raise ValueError(f"labels not seen during fit: {unseen.tolist()}")
        return codes.astype(np.intp)

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted")
        codes = np.asarray(codes, dtype=np.intp)
        if codes.size and (codes.min() < 0 or codes.max() >= self.classes_.size):
            raise ValueError("codes out of range")
        return self.classes_[codes]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.25,
    stratify: bool = True,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Single stratified (by default) train/test split.

    Returns ``(x_train, x_test, y_train, y_test)``.  With ``stratify`` each
    class contributes ``round(test_size * count)`` test samples (at least
    one when the class has two or more members).
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    x = _check_matrix(x)
    y = np.asarray(y)
    if y.shape != (x.shape[0],):
        raise ValueError("y must align with x")
    rng = np.random.default_rng(random_state)

    if stratify:
        test_parts = []
        for cls in np.unique(y):
            members = rng.permutation(np.flatnonzero(y == cls))
            n_test = int(round(test_size * members.size))
            if members.size >= 2:
                n_test = min(max(n_test, 1), members.size - 1)
            test_parts.append(members[:n_test])
        test_idx = np.sort(np.concatenate(test_parts))
    else:
        order = rng.permutation(x.shape[0])
        n_test = max(1, int(round(test_size * x.shape[0])))
        test_idx = np.sort(order[:n_test])

    train_idx = np.setdiff1d(np.arange(x.shape[0]), test_idx)
    if train_idx.size == 0:
        raise ValueError("split left no training samples")
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]
