"""Shared experiment machinery: pipeline construction and result caching.

Several tables and figures reuse the same (dataset, noise, sampler,
classifier) cross-validation cells — e.g. Figs. 7–8 re-plot slices of
Table IV.  :func:`run_cell` computes one cell; results are memoised
in-process so a benchmark session never recomputes a cell.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import make_classifier
from repro.core.gbabs import GBABS
from repro.datasets import get_spec, inject_class_noise, load_dataset
from repro.evaluation.cross_validation import CVResult, evaluate_pipeline
from repro.experiments.config import ExperimentConfig
from repro.sampling import make_sampler

__all__ = [
    "dataset_with_noise",
    "reference_gbabs_ratio",
    "sampler_factory_for",
    "classifier_factory_for",
    "run_cell",
    "clear_cache",
]

_CELL_CACHE: dict[tuple, CVResult] = {}
_RATIO_CACHE: dict[tuple, float] = {}
_DATA_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def clear_cache() -> None:
    """Drop all memoised cells (used by tests)."""
    _CELL_CACHE.clear()
    _RATIO_CACHE.clear()
    _DATA_CACHE.clear()


def dataset_with_noise(
    code: str, cfg: ExperimentConfig, noise_ratio: float
) -> tuple[np.ndarray, np.ndarray]:
    """Load a surrogate and corrupt its labels at ``noise_ratio``.

    Matches the paper's setup: noisy variants are constructed on the whole
    dataset (train *and* test folds carry noise), which is why reported
    accuracies at 40% noise sit near 0.55 rather than near the clean rate.
    """
    key = (code, cfg.size_factor, cfg.random_state, round(noise_ratio, 4))
    if key not in _DATA_CACHE:
        x, y = load_dataset(code, cfg.size_factor, cfg.random_state)
        if noise_ratio > 0:
            y, _ = inject_class_noise(
                y, noise_ratio, random_state=cfg.random_state + 9173
            )
        _DATA_CACHE[key] = (x, y)
    return _DATA_CACHE[key]


def reference_gbabs_ratio(
    code: str, cfg: ExperimentConfig, noise_ratio: float
) -> float:
    """GBABS sampling ratio on the full (noisy) dataset.

    §V-A3: "the sampling ratio of the SRS on each dataset is consistent
    with that of GBABS" — this reference ratio parameterises SRS.
    """
    key = (code, cfg.size_factor, cfg.random_state, round(noise_ratio, 4), cfg.rho)
    if key not in _RATIO_CACHE:
        x, y = dataset_with_noise(code, cfg, noise_ratio)
        sampler = GBABS(rho=cfg.rho, random_state=cfg.random_state)
        sampler.fit_resample(x, y)
        # Guard: SRS needs a ratio in (0, 1].
        ratio = min(1.0, max(sampler.report_.sampling_ratio, 1.0 / x.shape[0]))
        _RATIO_CACHE[key] = ratio
    return _RATIO_CACHE[key]


def sampler_factory_for(
    method: str,
    code: str,
    cfg: ExperimentConfig,
    noise_ratio: float,
    rho: int | None = None,
):
    """Seedable sampler factory for one (method, dataset, noise) cell.

    Returns ``None`` for the un-sampled baseline (``"ori"``), which
    :func:`evaluate_pipeline` interprets as training on the raw fold.
    """
    method = method.lower()
    rho = cfg.rho if rho is None else rho
    if method == "ori":
        return None
    if method == "gbabs":
        return lambda seed: make_sampler("gbabs", rho=rho, random_state=seed)
    if method == "srs":
        ratio = reference_gbabs_ratio(code, cfg, noise_ratio)
        return lambda seed: make_sampler("srs", ratio=ratio, random_state=seed)
    if method == "smnc":
        cats = get_spec(code).categorical_features
        return lambda seed: make_sampler(
            "smnc", categorical_features=list(cats), random_state=seed
        )
    if method in ("ggbs", "igbs", "sm", "bsm", "tomek"):
        return lambda seed: make_sampler(method, random_state=seed)
    raise ValueError(f"no factory rule for sampler {method!r}")


def classifier_factory_for(name: str, cfg: ExperimentConfig):
    """Seedable classifier factory with profile-scaled ensemble sizes."""
    name = name.lower()
    if name == "dt":
        return lambda seed: make_classifier("dt")
    if name == "knn":
        return lambda seed: make_classifier("knn")
    if name == "rf":
        return lambda seed: make_classifier(
            "rf", n_estimators=cfg.n_estimators, random_state=seed
        )
    if name == "xgboost":
        return lambda seed: make_classifier(
            "xgboost", n_estimators=cfg.n_estimators
        )
    if name == "lightgbm":
        return lambda seed: make_classifier(
            "lightgbm", n_estimators=cfg.n_estimators
        )
    raise ValueError(f"no factory rule for classifier {name!r}")


def run_cell(
    code: str,
    method: str,
    classifier: str,
    cfg: ExperimentConfig,
    noise_ratio: float = 0.0,
    metrics: tuple[str, ...] = ("accuracy",),
    rho: int | None = None,
) -> CVResult:
    """One memoised CV evaluation of (dataset, noise, sampler, classifier)."""
    key = (
        code,
        method,
        classifier,
        cfg.name,
        cfg.size_factor,
        cfg.n_splits,
        cfg.n_repeats,
        cfg.n_estimators,
        cfg.random_state,
        round(noise_ratio, 4),
        metrics,
        rho if rho is not None else cfg.rho,
    )
    if key not in _CELL_CACHE:
        x, y = dataset_with_noise(code, cfg, noise_ratio)
        _CELL_CACHE[key] = evaluate_pipeline(
            x,
            y,
            classifier_factory=classifier_factory_for(classifier, cfg),
            sampler_factory=sampler_factory_for(method, code, cfg, noise_ratio, rho),
            n_splits=cfg.n_splits,
            n_repeats=cfg.n_repeats,
            metrics=metrics,
            random_state=cfg.random_state,
        )
    return _CELL_CACHE[key]
