"""Shared experiment machinery: pipeline construction and result caching.

Several tables and figures reuse the same (dataset, noise, sampler,
classifier) cross-validation cells — e.g. Figs. 7–8 re-plot slices of
Table IV.  :func:`run_cell` computes one cell; results are cached in the
process-wide :class:`~repro.experiments.store.CellStore` (an in-memory
layer plus a persistent content-keyed disk layer), so a benchmark session
never recomputes a cell and an *interrupted* session resumes where it
stopped instead of starting over.

Sampler and classifier factories are picklable spec objects
(:class:`SamplerSpec` / :class:`ClassifierSpec`), so the parallel executor
can ship them to worker processes on any platform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.classifiers import make_classifier
from repro.core.gbabs import GBABS
from repro.datasets import get_spec, inject_class_noise, load_dataset
from repro.evaluation.cross_validation import CVResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.store import (
    CellStore,
    ClaimHeartbeat,
    default_claim_owner,
    default_store_root,
    stable_key,
)
from repro.sampling import make_sampler

__all__ = [
    "SamplerSpec",
    "ClassifierSpec",
    "dataset_key",
    "dataset_with_noise",
    "gbabs_ratio_key",
    "reference_gbabs_ratio",
    "resolve_dataset_task",
    "resolve_ratio_task",
    "sampler_factory_for",
    "classifier_factory_for",
    "run_cell",
    "cell_key",
    "get_store",
    "configure_store",
    "clear_cache",
]

_STORE: CellStore | None = None


def get_store() -> CellStore:
    """The process-wide result store (created lazily from the environment)."""
    global _STORE
    if _STORE is None:
        _STORE = CellStore(default_store_root())
    return _STORE


def configure_store(
    root: str | None | object = ...,
    persist: bool | None = None,
    store: CellStore | None = None,
    codec: str | None = None,
) -> CellStore:
    """Replace or adjust the process-wide store.

    ``configure_store(store=s)`` installs ``s`` as-is;
    ``configure_store(root=target)`` rebuilds the store over ``target`` —
    a directory, a ``file:// | mem:// | fakes3:// | s3://`` store URL or
    ``None`` for memory-only; ``configure_store(persist=False)`` keeps
    the current location but disables durable writes/reads (the
    ``--no-cache`` path).  ``codec`` selects the payload compression
    codec for new writes (``None`` keeps the default resolution — the
    ``REPRO_STORE_CODEC`` environment knob, then zlib).
    """
    global _STORE
    if store is not None:
        _STORE = store
    elif root is not ...:
        _STORE = CellStore(root, persist=True if persist is None else persist,
                           codec=codec)
    elif persist is not None or codec is not None:
        current = get_store()
        _STORE = CellStore(
            current.source,
            persist=current.persist if persist is None else persist,
            codec=codec or current.codec_name,
        )
    return get_store()


def clear_cache() -> None:
    """Drop the in-memory layer (used by tests; disk entries survive)."""
    get_store().clear_memory()


# ----------------------------------------------------------------------
# Picklable factories
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SamplerSpec:
    """Picklable ``factory(seed) -> sampler`` for one experiment cell."""

    method: str
    params: tuple[tuple[str, Any], ...] = ()

    def __call__(self, seed: int):
        kwargs = {k: list(v) if isinstance(v, tuple) else v for k, v in self.params}
        return make_sampler(self.method, random_state=seed, **kwargs)


@dataclass(frozen=True)
class ClassifierSpec:
    """Picklable ``factory(seed) -> classifier``; seeds only when asked."""

    name: str
    params: tuple[tuple[str, Any], ...] = ()
    seeded: bool = False

    def __call__(self, seed: int):
        kwargs = dict(self.params)
        if self.seeded:
            kwargs["random_state"] = seed
        return make_classifier(self.name, **kwargs)


# ----------------------------------------------------------------------
# Cached inputs: datasets (memory-only) and GBABS reference ratios
# (persisted — each one costs a full-dataset granulation)
# ----------------------------------------------------------------------


def dataset_key(code: str, cfg: ExperimentConfig, noise_ratio: float) -> str:
    """Store key of one (dataset, noise) variant."""
    return stable_key(
        {
            "kind": "dataset",
            "code": code,
            "size_factor": cfg.size_factor,
            "random_state": cfg.random_state,
            "noise_ratio": round(noise_ratio, 4),
        }
    )


def gbabs_ratio_key(code: str, cfg: ExperimentConfig, noise_ratio: float) -> str:
    """Store key of one GBABS reference sampling ratio."""
    return stable_key(
        {
            "kind": "gbabs-ratio",
            "code": code,
            "size_factor": cfg.size_factor,
            "random_state": cfg.random_state,
            "noise_ratio": round(noise_ratio, 4),
            "rho": cfg.rho,
        }
    )


def _generate_dataset(
    code: str, size_factor: float, random_state: int, noise_ratio: float
) -> tuple[np.ndarray, np.ndarray]:
    """The deterministic dataset construction behind the store layer."""
    x, y = load_dataset(code, size_factor, random_state)
    if noise_ratio > 0:
        y, _ = inject_class_noise(y, noise_ratio, random_state=random_state + 9173)
    return x, y


def _guarded_ratio(sampling_ratio: float, n_samples: int) -> float:
    """Clamp a GBABS report ratio into (0, 1] (SRS rejects 0 and > 1)."""
    return min(1.0, max(sampling_ratio, 1.0 / n_samples))


def dataset_with_noise(
    code: str, cfg: ExperimentConfig, noise_ratio: float
) -> tuple[np.ndarray, np.ndarray]:
    """Load a surrogate and corrupt its labels at ``noise_ratio``.

    Matches the paper's setup: noisy variants are constructed on the whole
    dataset (train *and* test folds carry noise), which is why reported
    accuracies at 40% noise sit near 0.55 rather than near the clean rate.
    """
    key = dataset_key(code, cfg, noise_ratio)
    store = get_store()
    cached = store.get("data", key)
    if cached is None:
        cached = _generate_dataset(
            code, cfg.size_factor, cfg.random_state, noise_ratio
        )
        # Datasets are cheap to regenerate and large on disk: memory-only.
        store.put("data", key, cached, persist=False)
    return cached


def reference_gbabs_ratio(
    code: str, cfg: ExperimentConfig, noise_ratio: float
) -> float:
    """GBABS sampling ratio on the full (noisy) dataset.

    §V-A3: "the sampling ratio of the SRS on each dataset is consistent
    with that of GBABS" — this reference ratio parameterises SRS.
    """
    key = gbabs_ratio_key(code, cfg, noise_ratio)
    store = get_store()
    cached = store.get("ratio", key)
    if cached is not None:
        return cached
    # Several distributed workers can need the same reference ratio at
    # once (it costs a full-dataset granulation); the store's lease makes
    # one compute it while the rest poll for the value.  Without a disk
    # layer try_claim always succeeds and this reduces to the plain path.
    owner = default_claim_owner("ratio")
    while not store.try_claim("ratio", key, owner):
        time.sleep(min(store.lease_ttl / 10.0, 0.2))
        cached = store.get("ratio", key)
        if cached is not None:
            return cached
    try:
        cached = store.get("ratio", key)  # may have landed before our claim
        if cached is None:
            with ClaimHeartbeat(store, "ratio", key, owner):
                x, y = dataset_with_noise(code, cfg, noise_ratio)
                sampler = GBABS(rho=cfg.rho, random_state=cfg.random_state)
                sampler.fit_resample(x, y)
                cached = _guarded_ratio(
                    sampler.report_.sampling_ratio, x.shape[0]
                )
            store.put("ratio", key, cached)
    finally:
        store.release_claim("ratio", key, owner)
    return cached


# ----------------------------------------------------------------------
# Pool payload tasks.  The executor's scheduler dispatches these to the
# worker pool so a cold run resolves datasets and GBABS reference ratios
# *in parallel* instead of as a serial prefix in the parent; the parent
# flushes the returned values through the store, so serial paths and
# resumed runs keep seeing identical cached inputs.
# ----------------------------------------------------------------------


def resolve_dataset_task(
    code: str, size_factor: float, random_state: int, noise_ratio: float
):
    """Worker task: generate one (dataset, noise) variant.

    Returns ``((x, y), seconds)`` — identical arrays to what
    :func:`dataset_with_noise` would construct in the parent.
    """
    import time

    start = time.perf_counter()
    x, y = _generate_dataset(code, size_factor, random_state, noise_ratio)
    return (x, y), time.perf_counter() - start


def resolve_ratio_task(block_meta, rho: int, random_state: int):
    """Worker task: GBABS reference ratio over a shared dataset block.

    Attaches the block published by the parent (zero-copy) and runs the
    same granulation :func:`reference_gbabs_ratio` would run, so the
    returned value is bit-identical to the serial path.
    """
    import time

    from repro.experiments.data_plane import cv_block_views

    start = time.perf_counter()
    x, y, _splits = cv_block_views(block_meta)
    sampler = GBABS(rho=rho, random_state=random_state)
    sampler.fit_resample(x, y)
    ratio = _guarded_ratio(sampler.report_.sampling_ratio, x.shape[0])
    return ratio, time.perf_counter() - start


def sampler_factory_for(
    method: str,
    code: str,
    cfg: ExperimentConfig,
    noise_ratio: float,
    rho: int | None = None,
) -> SamplerSpec | None:
    """Seedable sampler factory for one (method, dataset, noise) cell.

    Returns ``None`` for the un-sampled baseline (``"ori"``), which
    :func:`evaluate_pipeline` interprets as training on the raw fold.
    """
    method = method.lower()
    rho = cfg.rho if rho is None else rho
    if method == "ori":
        return None
    if method == "gbabs":
        return SamplerSpec("gbabs", params=(("rho", rho),))
    if method == "srs":
        ratio = reference_gbabs_ratio(code, cfg, noise_ratio)
        return SamplerSpec("srs", params=(("ratio", ratio),))
    if method == "smnc":
        cats = tuple(get_spec(code).categorical_features)
        return SamplerSpec("smnc", params=(("categorical_features", cats),))
    if method in ("ggbs", "igbs", "sm", "bsm", "tomek"):
        return SamplerSpec(method)
    raise ValueError(f"no factory rule for sampler {method!r}")


def classifier_factory_for(name: str, cfg: ExperimentConfig) -> ClassifierSpec:
    """Seedable classifier factory with profile-scaled ensemble sizes."""
    name = name.lower()
    if name in ("dt", "knn"):
        return ClassifierSpec(name)
    if name == "rf":
        return ClassifierSpec(
            "rf", params=(("n_estimators", cfg.n_estimators),), seeded=True
        )
    if name in ("xgboost", "lightgbm"):
        return ClassifierSpec(name, params=(("n_estimators", cfg.n_estimators),))
    raise ValueError(f"no factory rule for classifier {name!r}")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------


def cell_key(
    code: str,
    method: str,
    classifier: str,
    cfg: ExperimentConfig,
    noise_ratio: float = 0.0,
    metrics: tuple[str, ...] = ("accuracy",),
    rho: int | None = None,
) -> str:
    """Stable JSON key identifying one CV cell's full parameterisation."""
    return stable_key(
        {
            "kind": "cv-cell",
            "code": code,
            "method": method,
            "classifier": classifier,
            "profile": cfg.name,
            "size_factor": cfg.size_factor,
            "n_splits": cfg.n_splits,
            "n_repeats": cfg.n_repeats,
            "n_estimators": cfg.n_estimators,
            "random_state": cfg.random_state,
            "noise_ratio": round(noise_ratio, 4),
            "metrics": list(metrics),
            "rho": rho if rho is not None else cfg.rho,
        }
    )


def run_cell(
    code: str,
    method: str,
    classifier: str,
    cfg: ExperimentConfig,
    noise_ratio: float = 0.0,
    metrics: tuple[str, ...] = ("accuracy",),
    rho: int | None = None,
    n_jobs: int | None = 1,
) -> CVResult:
    """One cached CV evaluation of (dataset, noise, sampler, classifier).

    ``n_jobs > 1`` fans the cell's folds over worker processes; results are
    bit-identical to serial execution.
    """
    from repro.experiments.executor import CellSpec, ExperimentExecutor

    spec = CellSpec(
        code=code,
        method=method,
        classifier=classifier,
        noise_ratio=noise_ratio,
        metrics=tuple(metrics),
        rho=rho,
    )
    return ExperimentExecutor(cfg, n_jobs=n_jobs, store=get_store()).run([spec])[0]
