"""Plain-text table formatting shared by benchmarks and the CLI."""

from __future__ import annotations

from typing import Iterable

__all__ = ["format_table", "format_kv"]


def format_table(
    headers: list[str],
    rows: Iterable[Iterable],
    float_format: str = "{:.4f}",
) -> str:
    """Fixed-width text table with a header rule.

    Floats are rendered with ``float_format``; everything else with
    ``str``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str]) -> str:
        return "  ".join(f"{c:>{w}}" for c, w in zip(cells, widths))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_kv(title: str, pairs: dict) -> str:
    """Titled key/value block."""
    width = max(len(str(k)) for k in pairs) if pairs else 0
    lines = [title, "-" * len(title)]
    for key, value in pairs.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        lines.append(f"{str(key):<{width}}  {value}")
    return "\n".join(lines)
