"""Distributed grid dispatch: serialise experiments into work manifests.

The paper's evaluation protocol is a grid of content-keyed CV *cells*
(see :mod:`repro.experiments.executor`).  This module turns the grids
behind the tables and figures into durable **work manifests** that any
number of worker processes — on one machine, on many machines sharing
the store directory over a network filesystem, or on a fleet sharing an
object-store bucket — can split.  Manifests live in the same
:class:`~repro.experiments.backends.StoreBackend` as the results they
describe, so every function here accepts a store target in any form
(directory path, ``file:// | mem:// | fakes3:// | s3://`` URL, a
:class:`~repro.experiments.store.CellStore` or a raw backend):

* :func:`grid_specs` single-sources the cell grid of each named
  experiment (``table2``, ``table4``, ``fig9`` …) from the same spec
  builders the in-process prefetch uses, so every execution mode computes
  exactly the same cells;
* :func:`plan_grid` pairs each deduplicated spec with its store key,
  yielding :class:`WorkUnit` values — the unit of claimable work;
* :func:`write_manifest` persists a plan as ``plan-<digest>.plan`` inside
  the store (atomic put, content-keyed name, so re-planning an identical
  grid is idempotent); :func:`load_manifests` is the worker side,
  deleting any manifest that fails to parse (same self-heal policy as
  corrupt results: a torn manifest is rewritten by the next coordinator
  run);
* :func:`wait_for_grid` is the coordinator's barrier: poll the store
  until every unit has a result, then assemble tables/figures from pure
  store hits;
* :func:`spawn_workers` launches local worker processes
  (``python -m repro.experiments.worker``) for the single-node
  convenience path — multi-node runs start workers out-of-band and point
  them at the shared directory;
* :class:`FleetSupervisor` keeps a spawned fleet alive: it logs every
  worker exit with its exit code as it happens, restarts crashed workers
  with crash-loop backoff up to a ``max_restarts`` cap, and reports
  per-worker status (restarts, exit-code history) in a final summary —
  so one SIGKILLed or browned-out worker no longer silently shrinks the
  fleet until nothing is left.

Experiments without a cell-backed grid (Table I, Figs. 5–6, the
ablations) have nothing to distribute; the coordinator computes them
locally during assembly.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.backoff import BackoffPolicy
from repro.experiments.backends import (
    LocalFSBackend,
    StoreBackend,
    resolve_backend,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import CellSpec, cell_key_for
from repro.experiments.store import CellStore, SCHEMA_VERSION

__all__ = [
    "GRID_EXPERIMENTS",
    "WorkUnit",
    "grid_specs",
    "plan_grid",
    "manifest_name",
    "manifest_path",
    "write_manifest",
    "load_manifests",
    "prune_manifests",
    "pending_units",
    "wait_for_grid",
    "worker_command",
    "spawn_workers",
    "FleetSupervisor",
]

#: Manifest files live next to the results they describe.
MANIFEST_SUFFIX = ".plan"


@dataclass(frozen=True)
class WorkUnit:
    """One claimable unit of distributed work: a cell plus its identity.

    ``key`` is the cell's content key (what the store files and claim
    files are named after); ``cfg`` rides along so a worker process can
    execute the unit without any out-of-band profile configuration.
    """

    key: str
    spec: CellSpec
    cfg: ExperimentConfig


def _spec_payload(spec: CellSpec) -> dict:
    payload = asdict(spec)
    payload["metrics"] = list(payload["metrics"])
    return payload


def _spec_from_payload(payload: dict) -> CellSpec:
    payload = dict(payload)
    payload["metrics"] = tuple(payload["metrics"])
    return CellSpec(**payload)


def _grid_experiment_specs():
    """name -> spec-list builder for every cell-backed experiment.

    Derived experiments map to the grid they read: Table III consumes the
    Table-II cells, Figs. 7–8 re-plot Table-IV slices.
    """
    from repro.experiments import figures, tables

    return {
        "table2": tables.table2_specs,
        "table3": tables.table2_specs,
        "table4": tables.table4_specs,
        "fig7_fig8": tables.table4_specs,
        "fig9": figures.fig9_specs,
        "fig10_fig11": figures.fig10_fig11_specs,
    }


#: Names of experiments whose computation is a cell grid (distributable).
GRID_EXPERIMENTS = tuple(sorted(_grid_experiment_specs()))


def grid_specs(
    cfg: ExperimentConfig, experiments: list[str] | None = None
) -> list[CellSpec]:
    """Deduplicated cell specs behind ``experiments`` (default: all grids).

    Order is deterministic: experiments in the requested order, each
    grid's specs in definition order, first occurrence wins.
    """
    builders = _grid_experiment_specs()
    names = list(experiments) if experiments is not None else list(GRID_EXPERIMENTS)
    unknown = sorted(set(names) - set(builders))
    if unknown:
        raise ValueError(
            f"not cell-backed experiments: {unknown}; known: {GRID_EXPERIMENTS}"
        )
    seen: set[CellSpec] = set()
    specs: list[CellSpec] = []
    for name in names:
        for spec in builders[name](cfg):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


def plan_grid(
    cfg: ExperimentConfig, experiments: list[str] | None = None
) -> list[WorkUnit]:
    """Serialise the selected experiments into content-keyed work units."""
    units = []
    seen: set[str] = set()
    for spec in grid_specs(cfg, experiments):
        key = cell_key_for(cfg, spec)
        # Distinct specs can share a key (rho=None vs rho=cfg.rho).
        if key not in seen:
            seen.add(key)
            units.append(WorkUnit(key=key, spec=spec, cfg=cfg))
    return units


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------


def _backend_of(target) -> StoreBackend | None:
    """Backend behind any accepted store target (see module docstring)."""
    if isinstance(target, CellStore):
        return target.backend
    return resolve_backend(target)


def manifest_name(units: list[WorkUnit]) -> str:
    """Content-keyed manifest entry name for this exact set of unit keys."""
    digest = hashlib.sha256(
        "\n".join(sorted(u.key for u in units)).encode("utf-8")
    ).hexdigest()[:16]
    return f"plan-{digest}{MANIFEST_SUFFIX}"


def manifest_path(store_root: str | Path, units: list[WorkUnit]) -> Path:
    """Filesystem location of a manifest (filesystem stores only)."""
    return Path(store_root) / manifest_name(units)


def write_manifest(
    store_target, cfg: ExperimentConfig, units: list[WorkUnit]
):
    """Atomically persist a work manifest into the store.

    The entry name is content-keyed over the unit keys, so re-planning an
    identical grid rewrites the same entry with the same bytes
    (idempotent); two racing coordinators converge the same way results
    do.  Returns the manifest's filesystem path for filesystem-backed
    stores, its entry name otherwise.
    """
    if not units:
        raise ValueError("refusing to write an empty manifest")
    backend = _backend_of(store_target)
    payload = {
        "schema": SCHEMA_VERSION,
        "profile": cfg.to_dict(),
        "units": [{"key": u.key, "spec": _spec_payload(u.spec)} for u in units],
    }
    name = manifest_name(units)
    backend.put_atomic(name, json.dumps(payload, indent=1).encode("utf-8"))
    if isinstance(backend, LocalFSBackend):
        return backend.path(name)
    return name


#: Parse cache: manifests are immutable once published, so re-parsing
#: them on every worker poll round would cost O(grid) JSON decoding per
#: poll.  Keyed by (backend url, name), invalidated by mtime.
_MANIFEST_CACHE: dict[tuple[str, str], tuple[float, list[WorkUnit]]] = {}


def _manifest_names(backend: StoreBackend) -> list[str]:
    # Prefix-filtered and paginated: workers poll this every round, and
    # object stores list server-side in bounded pages — never scan the
    # whole store (or hold an unbounded listing) for a few manifests.
    names: list[str] = []
    token = None
    while True:
        page, token = backend.list_page(prefix="plan-", token=token)
        names.extend(n for n in page if n.endswith(MANIFEST_SUFFIX))
        if token is None:
            return names


def _parse_manifest(backend: StoreBackend, name: str) -> list[WorkUnit] | None:
    """Parse one manifest (cached); ``None`` when corrupt or vanished."""
    stamp = backend.mtime(name)
    if stamp is None:
        return None
    cache_key = (backend.url, name)
    cached = _MANIFEST_CACHE.get(cache_key)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        raw = backend.get(name)
        if raw is None:
            return None
        payload = json.loads(raw)
        if payload["schema"] != SCHEMA_VERSION:
            raise ValueError("manifest schema mismatch")
        cfg = ExperimentConfig.from_dict(payload["profile"])
        parsed = [
            WorkUnit(
                key=entry["key"],
                spec=_spec_from_payload(entry["spec"]),
                cfg=cfg,
            )
            for entry in payload["units"]
        ]
    except Exception:
        return None
    _MANIFEST_CACHE[cache_key] = (stamp, parsed)
    return parsed


def load_manifests(store_target) -> list[WorkUnit]:
    """Every work unit described by manifests in the store.

    Corrupt manifests (torn writes, stale schema) are deleted — the
    self-heal contract: the coordinator that produced them rewrites the
    identical content-keyed entry on its next run.  Units are
    deduplicated by key across manifests.
    """
    backend = _backend_of(store_target)
    if backend is None:
        return []
    units: list[WorkUnit] = []
    seen: set[str] = set()
    for name in _manifest_names(backend):
        parsed = _parse_manifest(backend, name)
        if parsed is None:
            backend.delete(name)
            _MANIFEST_CACHE.pop((backend.url, name), None)
            continue
        for unit in parsed:
            if unit.key not in seen:
                seen.add(unit.key)
                units.append(unit)
    return units


def prune_manifests(store: CellStore) -> int:
    """Delete manifests whose every cell has landed; returns the count.

    Without pruning, a reused store accumulates every grid ever planned
    and workers would adopt all of them as their exit condition
    (recomputing stale grids nobody asked about).  Workers and
    coordinators prune on completion; a worker that later observes its
    previously-seen plan gone treats the grid as finished.  Manifests are
    the only entries this function may delete — results are immutable.
    """
    backend = store.backend
    if backend is None:
        return 0
    pruned = 0
    for name in _manifest_names(backend):
        parsed = _parse_manifest(backend, name)
        if parsed is None:
            continue  # load_manifests owns corrupt-entry healing
        if all(store.has("cell", unit.key) for unit in parsed):
            backend.delete(name)
            _MANIFEST_CACHE.pop((backend.url, name), None)
            pruned += 1
    return pruned


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def pending_units(store: CellStore, units: list[WorkUnit]) -> list[WorkUnit]:
    """Units whose result has not landed in the store yet.

    Uses the store's *batched* existence probe — one backend listing per
    call, not one round trip per unit: polling loops call this every few
    hundred milliseconds over whole grids, and per-key HEAD probes on an
    object-store backend would blow the poll interval.  Nothing is
    deserialised (loading every landed cell in every poller would cost
    O(grid) memory per process).
    """
    missing = set(store.filter_missing("cell", [u.key for u in units]))
    return [u for u in units if u.key in missing]


def wait_for_grid(
    store: CellStore,
    units: list[WorkUnit],
    poll: float = 0.5,
    timeout: float | None = None,
    should_abort=None,
    on_progress=None,
    on_poll=None,
) -> None:
    """Block until every unit's result is in the store.

    ``should_abort`` (optional callable) is consulted each poll; a truthy
    return raises ``RuntimeError`` — the coordinator passes a "did every
    spawned worker die?" probe so a crashed fleet fails fast instead of
    hanging on an empty queue.  ``on_progress(done, total)`` fires
    whenever the completed count changes.  ``on_poll(remaining)`` fires
    every poll round with the still-pending units — the elastic
    coordinator feeds this queue depth to
    :meth:`FleetSupervisor.autoscale`.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    total = len(units)
    last_done = -1
    while True:
        remaining = pending_units(store, units)
        done = total - len(remaining)
        if done != last_done and on_progress is not None:
            on_progress(done, total)
            last_done = done
        if on_poll is not None:
            on_poll(remaining)
        if not remaining:
            return
        if should_abort is not None and should_abort():
            raise RuntimeError(
                f"distributed run aborted with {len(remaining)} cells pending "
                "(no live workers left)"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"grid incomplete after {timeout:.0f}s: "
                f"{len(remaining)}/{total} cells pending"
            )
        time.sleep(poll)


def worker_command(
    store_root: str | Path,
    index: int = 0,
    jobs: int = 1,
    lease_ttl: float | None = None,
    claim_order: str | None = None,
    stagger: int = 0,
    extra_args: list[str] | None = None,
) -> list[str]:
    """The ``python -m repro.experiments.worker`` argv for fleet slot
    ``index``.

    Factored out of :func:`spawn_workers` so the supervisor can respawn
    a crashed slot with *exactly* the command that started it (same
    claim order, same flags) — a restarted worker must be
    indistinguishable from the original.
    """
    command = [sys.executable, "-m", "repro.experiments.worker",
               "--store", str(store_root), "--jobs", str(jobs)]
    if lease_ttl is not None:
        command += ["--ttl", str(lease_ttl)]
    if claim_order is not None:
        command += ["--claim-order", claim_order]
    elif stagger > 0:
        command += ["--claim-order", f"rotate:{index * stagger}"]
    if extra_args:
        command += list(extra_args)
    return command


def spawn_workers(
    store_root: str | Path,
    n_workers: int,
    jobs: int = 1,
    lease_ttl: float | None = None,
    claim_order: str | None = None,
    stagger: int = 0,
    extra_args: list[str] | None = None,
    env: dict | None = None,
) -> list[subprocess.Popen]:
    """Launch local worker processes against a shared store.

    ``store_root`` may be a directory or any store URL that resolves
    across processes (``file://`` / ``fakes3://`` / ``s3://`` —
    ``mem://`` buckets are per-process and cannot be shared with spawned
    workers).  With ``stagger > 0`` (and no explicit ``claim_order``)
    worker ``i`` claims in ``rotate:i*stagger`` order, so a fleet starts
    spread over the grid instead of racing for the same first cell.
    ``env`` adds/overrides environment variables in the workers only —
    the chaos suites use it to point ``REPRO_STORE_FAULTS`` at a fault
    schedule the coordinator itself must not see.
    """
    worker_env = None
    if env:
        worker_env = dict(os.environ)
        worker_env.update({k: str(v) for k, v in env.items()})
    return [
        subprocess.Popen(
            worker_command(store_root, index, jobs=jobs, lease_ttl=lease_ttl,
                           claim_order=claim_order, stagger=stagger,
                           extra_args=extra_args),
            env=worker_env,
        )
        for index in range(max(1, n_workers))
    ]


# ----------------------------------------------------------------------
# Fleet supervision
# ----------------------------------------------------------------------


@dataclass
class _WorkerSlot:
    """Lifecycle record of one fleet position (survives its processes)."""

    index: int
    command: list[str]
    process: subprocess.Popen | None = None
    restarts: int = 0
    exit_codes: list[int] = field(default_factory=list)
    restart_at: float | None = None
    gave_up: bool = False
    retired: bool = False


class FleetSupervisor:
    """Keep a worker fleet alive: observe exits, restart crashes.

    Before supervision existed the coordinator only noticed worker
    deaths when *all* of them had died (``fleet_dead``), so a single
    OOM-kill quietly halved a two-worker fleet for the rest of the grid.
    The supervisor polls each slot, logs every exit with its exit code
    the moment it happens, and classifies it by the worker exit-code
    contract:

    * ``0`` (grid done) and ``3`` (idle timeout) are *benign* — the
      worker finished; nothing to restart;
    * ``2`` (permanent store error) is *fatal* — a restarted worker
      fails identically, so the slot is abandoned immediately;
    * anything else (signal deaths like ``-SIGKILL``, exit ``4`` after
      an outage outlasted the grace window, crashes) is *restartable*:
      the slot respawns with its original command after a crash-loop
      backoff delay (:class:`~repro.backoff.BackoffPolicy`, so a worker
      dying instantly on start cannot hot-loop), up to ``max_restarts``
      restarts per slot.

    The coordinator drives :meth:`poll` from its wait loop and uses
    :meth:`fleet_dead` as the abort probe; :meth:`summary` is the
    per-worker status block for the final report.  Restarts never spawn
    *extra* workers — one process per slot, always — so claim-owner
    cardinality stays bounded by the requested fleet size.

    **Elasticity.**  With a ``command_factory`` the fleet autoscales:
    the coordinator feeds pending-queue depth to :meth:`autoscale`,
    which spawns a new slot while depth exceeds ``scale_threshold``
    cells per active worker (up to ``max_workers``) and retires the
    newest slots (SIGTERM; exit recorded as retirement, never
    restarted) when the queue drains below the threshold (down to
    ``min_workers``).  A retired worker's orphaned claims simply age
    out by lease TTL and are stolen by survivors — claims are an
    efficiency device, never a correctness one, so scaling down
    mid-grid cannot lose results.
    """

    BENIGN_EXITS = frozenset({0, 3})
    FATAL_EXITS = frozenset({2})

    def __init__(
        self,
        commands: list[list[str]],
        max_restarts: int = 2,
        backoff: BackoffPolicy | None = None,
        env: dict | None = None,
        clock=time.monotonic,
        log=None,
        command_factory=None,
        min_workers: int | None = None,
        max_workers: int | None = None,
        scale_threshold: int = 4,
    ):
        self._slots = [
            _WorkerSlot(index=i, command=list(cmd))
            for i, cmd in enumerate(commands)
        ]
        self.max_restarts = int(max_restarts)
        self._backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.5, factor=2.0, cap=10.0
        )
        self._env = None
        if env:
            self._env = dict(os.environ)
            self._env.update({k: str(v) for k, v in env.items()})
        self._clock = clock
        self._log = log or (lambda message: None)
        self._command_factory = command_factory
        self.min_workers = max(1, int(min_workers if min_workers is not None
                                      else len(self._slots)))
        self.max_workers = max(self.min_workers,
                               int(max_workers if max_workers is not None
                                   else len(self._slots)))
        self.scale_threshold = max(1, int(scale_threshold))
        self.scale_ups = 0
        self.scale_downs = 0

    def start(self) -> None:
        for slot in self._slots:
            slot.process = subprocess.Popen(slot.command, env=self._env)
            self._log(f"worker {slot.index} started (pid {slot.process.pid})")

    def poll(self) -> None:
        """Observe exits, schedule and perform due restarts (non-blocking)."""
        now = self._clock()
        for slot in self._slots:
            if slot.process is not None:
                code = slot.process.poll()
                if code is None:
                    continue
                slot.process = None
                slot.exit_codes.append(code)
                if slot.retired:
                    # An asked-for exit (scale-down SIGTERM usually lands
                    # as a signal death) — never restarted.
                    self._log(f"worker {slot.index} retired (exit {code})")
                elif code in self.BENIGN_EXITS:
                    self._log(f"worker {slot.index} finished (exit {code})")
                elif code in self.FATAL_EXITS:
                    slot.gave_up = True
                    self._log(
                        f"worker {slot.index} hit a permanent store error "
                        f"(exit {code}); not restarting"
                    )
                elif slot.restarts >= self.max_restarts:
                    slot.gave_up = True
                    self._log(
                        f"worker {slot.index} died (exit {code}) after "
                        f"{slot.restarts} restart(s); giving up on this slot"
                    )
                else:
                    delay = self._backoff.delay(slot.restarts)
                    slot.restart_at = now + delay
                    self._log(
                        f"worker {slot.index} died (exit {code}); "
                        f"restarting in {delay:.1f}s "
                        f"({slot.restarts + 1}/{self.max_restarts})"
                    )
            if slot.restart_at is not None and now >= slot.restart_at:
                slot.restart_at = None
                slot.restarts += 1
                slot.process = subprocess.Popen(slot.command, env=self._env)
                self._log(
                    f"worker {slot.index} restarted "
                    f"(pid {slot.process.pid}, restart {slot.restarts})"
                )

    def _active_slots(self) -> list[_WorkerSlot]:
        """Slots still participating: running, or with a restart pending."""
        return [
            s for s in self._slots
            if not s.gave_up and not s.retired
            and ((s.process is not None and s.process.poll() is None)
                 or s.restart_at is not None)
        ]

    def autoscale(self, pending: int) -> None:
        """Resize the fleet to the queue depth (no-op on fixed fleets).

        Desired size is one worker per ``scale_threshold`` pending
        cells, clamped to ``[min_workers, max_workers]``.  Scaling up
        appends fresh slots from ``command_factory``; scaling down
        SIGTERMs the *newest* active slots (their exits are recorded as
        retirements by :meth:`poll`, never restarted).  Call after
        :meth:`poll` so freshly-dead slots are not counted active.
        """
        if self._command_factory is None:
            return
        active = self._active_slots()
        desired = -(-int(pending) // self.scale_threshold)  # ceil division
        desired = max(self.min_workers, min(self.max_workers, desired))
        if pending <= 0 and len(active) < desired:
            # A drained queue never spawns: workers that already exited
            # benignly (grid done) must not be replaced at shutdown.
            desired = len(active)
        if len(active) < desired:
            for _ in range(desired - len(active)):
                index = len(self._slots)
                slot = _WorkerSlot(
                    index=index, command=list(self._command_factory(index))
                )
                self._slots.append(slot)
                slot.process = subprocess.Popen(slot.command, env=self._env)
                self.scale_ups += 1
                self._log(
                    f"scaled up: worker {index} started "
                    f"(pid {slot.process.pid}; {pending} cells pending)"
                )
        elif len(active) > desired:
            for slot in reversed(active[desired - len(active):]):
                slot.retired = True
                slot.restart_at = None
                if slot.process is not None and slot.process.poll() is None:
                    slot.process.terminate()
                self.scale_downs += 1
                self._log(
                    f"scaling down: worker {slot.index} retiring "
                    f"({pending} cells pending)"
                )

    @property
    def processes(self) -> list[subprocess.Popen]:
        """Live worker processes (one per running slot)."""
        return [s.process for s in self._slots if s.process is not None]

    def live_count(self) -> int:
        return sum(
            1 for s in self._slots
            if s.process is not None and s.process.poll() is None
        )

    def fleet_dead(self) -> bool:
        """No live process, no restart pending: the fleet cannot recover.

        The coordinator's abort probe — call :meth:`poll` first so
        freshly-died slots get their restart scheduled before being
        counted dead.
        """
        return all(
            (s.process is None or s.process.poll() is not None)
            and s.restart_at is None
            for s in self._slots
        )

    def total_restarts(self) -> int:
        return sum(s.restarts for s in self._slots)

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop every live worker (grid finished or coordinator aborting)."""
        for slot in self._slots:
            slot.restart_at = None  # no respawns after shutdown begins
            if slot.process is not None and slot.process.poll() is None:
                slot.process.terminate()
        for slot in self._slots:
            if slot.process is not None:
                try:
                    slot.process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    slot.process.kill()
                    slot.process.wait()
                slot.exit_codes.append(slot.process.returncode)
                slot.process = None

    def summary(self) -> list[dict]:
        """Per-slot status for the coordinator's final report."""
        report = []
        for slot in self._slots:
            running = slot.process is not None and slot.process.poll() is None
            report.append({
                "worker": slot.index,
                "restarts": slot.restarts,
                "exit_codes": list(slot.exit_codes),
                "running": running,
                "gave_up": slot.gave_up,
                "retired": slot.retired,
            })
        return report
