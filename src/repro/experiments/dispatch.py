"""Distributed grid dispatch: serialise experiments into work manifests.

The paper's evaluation protocol is a grid of content-keyed CV *cells*
(see :mod:`repro.experiments.executor`).  This module turns the grids
behind the tables and figures into on-disk **work manifests** that any
number of worker processes — on one machine or on many machines sharing
the store directory over a network filesystem — can split:

* :func:`grid_specs` single-sources the cell grid of each named
  experiment (``table2``, ``table4``, ``fig9`` …) from the same spec
  builders the in-process prefetch uses, so every execution mode computes
  exactly the same cells;
* :func:`plan_grid` pairs each deduplicated spec with its store key,
  yielding :class:`WorkUnit` values — the unit of claimable work;
* :func:`write_manifest` persists a plan as ``plan-<digest>.plan`` inside
  the store directory (atomic rename, content-keyed name, so re-planning
  an identical grid is idempotent); :func:`load_manifests` is the worker
  side, deleting any manifest that fails to parse (same self-heal policy
  as corrupt results: a torn manifest is rewritten by the next
  coordinator run);
* :func:`wait_for_grid` is the coordinator's barrier: poll the store
  until every unit has a result, then assemble tables/figures from pure
  store hits;
* :func:`spawn_workers` launches local worker processes
  (``python -m repro.experiments.worker``) for the single-node
  convenience path — multi-node runs start workers out-of-band and point
  them at the shared directory.

Experiments without a cell-backed grid (Table I, Figs. 5–6, the
ablations) have nothing to distribute; the coordinator computes them
locally during assembly.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import CellSpec, cell_key_for
from repro.experiments.store import CellStore, SCHEMA_VERSION

__all__ = [
    "GRID_EXPERIMENTS",
    "WorkUnit",
    "grid_specs",
    "plan_grid",
    "manifest_path",
    "write_manifest",
    "load_manifests",
    "prune_manifests",
    "pending_units",
    "wait_for_grid",
    "spawn_workers",
]

#: Manifest files live next to the results they describe.
MANIFEST_SUFFIX = ".plan"


@dataclass(frozen=True)
class WorkUnit:
    """One claimable unit of distributed work: a cell plus its identity.

    ``key`` is the cell's content key (what the store files and claim
    files are named after); ``cfg`` rides along so a worker process can
    execute the unit without any out-of-band profile configuration.
    """

    key: str
    spec: CellSpec
    cfg: ExperimentConfig


def _spec_payload(spec: CellSpec) -> dict:
    payload = asdict(spec)
    payload["metrics"] = list(payload["metrics"])
    return payload


def _spec_from_payload(payload: dict) -> CellSpec:
    payload = dict(payload)
    payload["metrics"] = tuple(payload["metrics"])
    return CellSpec(**payload)


def _grid_experiment_specs():
    """name -> spec-list builder for every cell-backed experiment.

    Derived experiments map to the grid they read: Table III consumes the
    Table-II cells, Figs. 7–8 re-plot Table-IV slices.
    """
    from repro.experiments import figures, tables

    return {
        "table2": tables.table2_specs,
        "table3": tables.table2_specs,
        "table4": tables.table4_specs,
        "fig7_fig8": tables.table4_specs,
        "fig9": figures.fig9_specs,
        "fig10_fig11": figures.fig10_fig11_specs,
    }


#: Names of experiments whose computation is a cell grid (distributable).
GRID_EXPERIMENTS = tuple(sorted(_grid_experiment_specs()))


def grid_specs(
    cfg: ExperimentConfig, experiments: list[str] | None = None
) -> list[CellSpec]:
    """Deduplicated cell specs behind ``experiments`` (default: all grids).

    Order is deterministic: experiments in the requested order, each
    grid's specs in definition order, first occurrence wins.
    """
    builders = _grid_experiment_specs()
    names = list(experiments) if experiments is not None else list(GRID_EXPERIMENTS)
    unknown = sorted(set(names) - set(builders))
    if unknown:
        raise ValueError(
            f"not cell-backed experiments: {unknown}; known: {GRID_EXPERIMENTS}"
        )
    seen: set[CellSpec] = set()
    specs: list[CellSpec] = []
    for name in names:
        for spec in builders[name](cfg):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


def plan_grid(
    cfg: ExperimentConfig, experiments: list[str] | None = None
) -> list[WorkUnit]:
    """Serialise the selected experiments into content-keyed work units."""
    units = []
    seen: set[str] = set()
    for spec in grid_specs(cfg, experiments):
        key = cell_key_for(cfg, spec)
        # Distinct specs can share a key (rho=None vs rho=cfg.rho).
        if key not in seen:
            seen.add(key)
            units.append(WorkUnit(key=key, spec=spec, cfg=cfg))
    return units


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------


def manifest_path(store_root: str | Path, units: list[WorkUnit]) -> Path:
    """Content-keyed manifest location for this exact set of unit keys."""
    digest = hashlib.sha256(
        "\n".join(sorted(u.key for u in units)).encode("utf-8")
    ).hexdigest()[:16]
    return Path(store_root) / f"plan-{digest}{MANIFEST_SUFFIX}"


def write_manifest(
    store_root: str | Path, cfg: ExperimentConfig, units: list[WorkUnit]
) -> Path:
    """Atomically persist a work manifest into the store directory."""
    if not units:
        raise ValueError("refusing to write an empty manifest")
    store_root = Path(store_root)
    store_root.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "profile": cfg.to_dict(),
        "units": [{"key": u.key, "spec": _spec_payload(u.spec)} for u in units],
    }
    path = manifest_path(store_root, units)
    # Unique spool name: two coordinators planning the same grid target
    # the same content-keyed path, and a shared fixed .tmp would let one
    # rename the other's half-written file into place.
    fd, tmp = tempfile.mkstemp(dir=store_root, prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload, indent=1))
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise
    return path


#: Parse cache: manifest files are immutable once renamed into place, so
#: re-parsing them on every worker poll round would cost O(grid) JSON
#: decoding per poll.  Keyed by path, invalidated by (mtime_ns, size).
_MANIFEST_CACHE: dict[str, tuple[tuple[int, int], list[WorkUnit]]] = {}


def _parse_manifest(path: Path) -> list[WorkUnit] | None:
    """Parse one manifest (cached); ``None`` when corrupt."""
    try:
        stat = path.stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None
    cached = _MANIFEST_CACHE.get(str(path))
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        payload = json.loads(path.read_text())
        if payload["schema"] != SCHEMA_VERSION:
            raise ValueError("manifest schema mismatch")
        cfg = ExperimentConfig.from_dict(payload["profile"])
        parsed = [
            WorkUnit(
                key=entry["key"],
                spec=_spec_from_payload(entry["spec"]),
                cfg=cfg,
            )
            for entry in payload["units"]
        ]
    except Exception:
        return None
    _MANIFEST_CACHE[str(path)] = (stamp, parsed)
    return parsed


def load_manifests(store_root: str | Path) -> list[WorkUnit]:
    """Every work unit described by manifests under ``store_root``.

    Corrupt manifests (torn writes, stale schema) are deleted — the
    self-heal contract: the coordinator that produced them rewrites the
    identical content-keyed file on its next run.  Units are deduplicated
    by key across manifests.
    """
    store_root = Path(store_root)
    if not store_root.is_dir():
        return []
    units: list[WorkUnit] = []
    seen: set[str] = set()
    for path in sorted(store_root.glob(f"plan-*{MANIFEST_SUFFIX}")):
        parsed = _parse_manifest(path)
        if parsed is None:
            path.unlink(missing_ok=True)
            _MANIFEST_CACHE.pop(str(path), None)
            continue
        for unit in parsed:
            if unit.key not in seen:
                seen.add(unit.key)
                units.append(unit)
    return units


def prune_manifests(store: CellStore, store_root: str | Path) -> int:
    """Delete manifests whose every cell has landed; returns the count.

    Without pruning, a reused store directory accumulates every grid
    ever planned and workers would adopt all of them as their exit
    condition (recomputing stale grids nobody asked about).  Workers and
    coordinators prune on completion; a worker that later observes its
    previously-seen plan gone treats the grid as finished.
    """
    store_root = Path(store_root)
    if not store_root.is_dir():
        return 0
    pruned = 0
    for path in sorted(store_root.glob(f"plan-*{MANIFEST_SUFFIX}")):
        parsed = _parse_manifest(path)
        if parsed is None:
            continue  # load_manifests owns corrupt-file healing
        if all(store.has("cell", unit.key) for unit in parsed):
            path.unlink(missing_ok=True)
            _MANIFEST_CACHE.pop(str(path), None)
            pruned += 1
    return pruned


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def pending_units(store: CellStore, units: list[WorkUnit]) -> list[WorkUnit]:
    """Units whose result has not landed in the store yet.

    Uses the store's stat-level existence probe: polling loops call this
    every few hundred milliseconds, and deserialising every landed cell
    in every poller would cost O(grid) memory per process.
    """
    return [u for u in units if not store.has("cell", u.key)]


def wait_for_grid(
    store: CellStore,
    units: list[WorkUnit],
    poll: float = 0.5,
    timeout: float | None = None,
    should_abort=None,
    on_progress=None,
) -> None:
    """Block until every unit's result is in the store.

    ``should_abort`` (optional callable) is consulted each poll; a truthy
    return raises ``RuntimeError`` — the coordinator passes a "did every
    spawned worker die?" probe so a crashed fleet fails fast instead of
    hanging on an empty queue.  ``on_progress(done, total)`` fires
    whenever the completed count changes.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    total = len(units)
    last_done = -1
    while True:
        remaining = pending_units(store, units)
        done = total - len(remaining)
        if done != last_done and on_progress is not None:
            on_progress(done, total)
            last_done = done
        if not remaining:
            return
        if should_abort is not None and should_abort():
            raise RuntimeError(
                f"distributed run aborted with {len(remaining)} cells pending "
                "(no live workers left)"
            )
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"grid incomplete after {timeout:.0f}s: "
                f"{len(remaining)}/{total} cells pending"
            )
        time.sleep(poll)


def spawn_workers(
    store_root: str | Path,
    n_workers: int,
    jobs: int = 1,
    lease_ttl: float | None = None,
    claim_order: str | None = None,
    stagger: int = 0,
    extra_args: list[str] | None = None,
) -> list[subprocess.Popen]:
    """Launch local worker processes against a shared store directory.

    With ``stagger > 0`` (and no explicit ``claim_order``) worker ``i``
    claims in ``rotate:i*stagger`` order, so a fleet starts spread over
    the grid instead of racing for the same first cell.
    """
    processes = []
    for index in range(max(1, n_workers)):
        command = [sys.executable, "-m", "repro.experiments.worker",
                   "--store", str(store_root), "--jobs", str(jobs)]
        if lease_ttl is not None:
            command += ["--ttl", str(lease_ttl)]
        if claim_order is not None:
            command += ["--claim-order", claim_order]
        elif stagger > 0:
            command += ["--claim-order", f"rotate:{index * stagger}"]
        if extra_args:
            command += list(extra_args)
        processes.append(subprocess.Popen(command))
    return processes
