"""Persistent, content-keyed result store for experiment cells.

Every expensive intermediate of the benchmark protocol — a cross-validated
(dataset, noise, sampler, classifier, rho) *cell*, a GBABS reference
sampling ratio, a generated dataset — is identified by a **stable JSON
key**: a ``json.dumps(..., sort_keys=True)`` rendering of every parameter
that influences the value.  The :class:`CellStore` maps such keys to
values through two layers:

* an in-process **memory layer** (a plain dict), which preserves the old
  ``_CELL_CACHE``-style object identity within a session, and
* a **durable layer** behind a pluggable
  :class:`~repro.experiments.backends.StoreBackend` (one entry per key,
  named ``<kind>-<sha256 prefix>.npz|.json``), which lets an interrupted
  table/figure regeneration *resume* instead of recompute and lets
  parallel workers share results across runs and machines.

The default backend is the local filesystem under
``benchmarks/output/cellstore/`` with a byte-identical layout to every
earlier release (existing stores resume without migration); ``mem://``,
``fakes3://`` and ``s3://`` URLs select object-store backends where
atomic rename becomes an atomic per-key put — see
:mod:`repro.experiments.backends`.  Writes are atomic either way, so
concurrent writers can never expose a torn entry; unreadable/corrupt
entries are deleted and treated as misses, so a damaged store heals
itself by recomputation.

**Claims and leases.**  The durable layer doubles as a work queue for
distributed execution (many worker processes — possibly on many machines
sharing a network filesystem directory or an object-store bucket —
splitting one grid).  ``try_claim(kind, key, owner)`` creates
``<kind>-<digest>.claim`` exclusively (``O_CREAT | O_EXCL`` on
filesystems, a conditional put on object stores), so exactly one worker
wins each entry; the holder heartbeats via :meth:`refresh_claim` (an
atomic rewrite that advances the entry's modification timestamp) and
removes the claim with :meth:`release_claim` when the result has been
written.  A claim whose timestamp is older than the store's
``lease_ttl`` is *stale* — its owner is presumed dead — and is reaped by
the next claimer, so a SIGKILLed worker delays its cell by at most one
TTL.  Truncated or otherwise unreadable claim files (a crash between the
exclusive create and the payload write leaves a zero-byte file on the
filesystem backend) carry no owner information but still age by
timestamp, so they too expire and can never deadlock the grid.

The invariant that makes all of this safe: **claims are an efficiency
device, not a correctness device**.  Results are content-keyed and every
computation is deterministic, so if two workers ever compute the same
entry (a lease reaped from a live-but-stalled owner, a heartbeat lost to
a reap race), both write byte-identical entries through the backend's
atomic put and the store still converges to the single correct value.

**Compressed payloads.**  Result entries are written through a
*compress-once / decode-many* codec (``zlib`` by default — cells are
computed once and polled/read many times, so one compression pays for
itself across every later read).  Each entry carries a small
self-describing envelope naming the codec that produced it, which is
what keeps a store readable forever: legacy pre-envelope entries (raw
``.npz``/``.json`` bytes) pass through untouched, and entries written
with different codecs coexist in one store.  A truncated or corrupt
compressed payload fails its decode exactly like a torn legacy entry
and heals the same way — deleted, recomputed, rewritten.  All workers
sharing a store should agree on the codec (like ``lease_ttl``): mixed
codecs stay *readable* but duplicated computations then converge in
value rather than byte-for-byte.

Environment knobs: ``REPRO_CELLSTORE_DIR`` overrides the store location
(a directory or any ``file:// | mem:// | fakes3:// | s3://`` URL),
``REPRO_CELLSTORE=off`` disables the durable layer entirely,
``REPRO_STORE_CODEC`` selects the payload codec (``zlib`` | ``lzma`` |
``none``; the ``--store-codec`` flags override it).
"""

from __future__ import annotations

import hashlib
import io
import json
import lzma
import os
import socket
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.evaluation.cross_validation import CVResult
from repro.experiments.backends import (
    LocalFSBackend,
    StoreBackend,
    entry_paths,
    resolve_backend,
)

__all__ = [
    "CellStore",
    "ClaimHeartbeat",
    "stable_key",
    "cellstore_disabled",
    "default_store_root",
    "default_claim_owner",
    "default_store_codec",
    "encode_envelope",
    "decode_envelope",
    "CODECS",
    "DEFAULT_CODEC",
    "DEFAULT_LEASE_TTL",
]

#: Bump when the on-disk layout of stored values changes incompatibly.
SCHEMA_VERSION = 1

#: Default lease duration: a claim not heartbeat within this many seconds
#: is presumed orphaned (its owner crashed) and may be reaped.
DEFAULT_LEASE_TTL = 30.0

# ----------------------------------------------------------------------
# Payload codec (compress once on put, decode on every get/verify)
# ----------------------------------------------------------------------

#: codec name -> (encode, decode).  Every encoder must be deterministic
#: for a given input (fixed level/preset): identical recomputations must
#: keep producing identical stored bytes, the property the distributed
#: convergence argument rests on.  Registry is extensible — a zstd pair
#: would slot in here if the dependency were available.
CODECS: dict[str, tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
    "none": (lambda data: data, lambda data: data),
    "zlib": (lambda data: zlib.compress(data, 6), zlib.decompress),
    "lzma": (lambda data: lzma.compress(data, preset=1), lzma.decompress),
}

#: Cells are written once and read many times, so the cheap-to-decode
#: codec wins by default.
DEFAULT_CODEC = "zlib"

#: Envelope prefix of codec-wrapped entries.  The first byte collides
#: with neither legacy representation — raw ``.npz`` payloads start with
#: ``PK\x03\x04`` (zip), raw ``.json`` payloads with ``{`` — so legacy
#: entries are recognised unambiguously and keep reading forever.
_ENVELOPE_MAGIC = b"\xabRS1\x00"


def default_store_codec() -> str:
    """Codec selected by ``REPRO_STORE_CODEC`` (default: ``zlib``)."""
    return os.environ.get("REPRO_STORE_CODEC", "").strip().lower() or DEFAULT_CODEC


def encode_envelope(codec: str, raw: bytes) -> bytes:
    """Wrap ``raw`` in the self-describing codec envelope."""
    name = codec.encode("ascii")
    return _ENVELOPE_MAGIC + bytes([len(name)]) + name + CODECS[codec][0](raw)


def decode_envelope(payload: bytes) -> tuple[str | None, bytes]:
    """``(codec name, raw bytes)`` of a stored entry payload.

    Legacy pre-envelope entries return ``(None, payload)`` untouched.
    Raises (``KeyError`` for an unknown codec, the codec's own error for
    a truncated/garbage body) so the caller's heal path can treat the
    entry as corrupt.
    """
    if not payload.startswith(_ENVELOPE_MAGIC):
        return None, payload
    offset = len(_ENVELOPE_MAGIC)
    name_len = payload[offset]
    name = payload[offset + 1:offset + 1 + name_len].decode("ascii")
    body = payload[offset + 1 + name_len:]
    return name, CODECS[name][1](body)


def default_claim_owner(tag: str = "") -> str:
    """Claim-owner identity, unique across every machine sharing a store.

    Must be host-qualified: pid-only identities collide across machines
    on a network filesystem, which would defeat ``release_claim``'s
    owner guard.
    """
    prefix = f"{tag}-" if tag else ""
    return f"{prefix}{socket.gethostname()}:{os.getpid()}"


def stable_key(params: dict) -> str:
    """Canonical JSON rendering of a parameter dict (stable across runs)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cellstore_disabled() -> bool:
    """Whether the ``REPRO_CELLSTORE`` kill switch turns the durable
    layer off.  The single source of the accepted off-values — every
    path that might (re-)enable persistence must consult this."""
    return os.environ.get("REPRO_CELLSTORE", "").lower() in (
        "off", "0", "false"
    )


def default_store_root() -> str | Path | None:
    """Store location: ``$REPRO_CELLSTORE_DIR`` or benchmarks/output/cellstore.

    ``REPRO_CELLSTORE_DIR`` may be a directory or a store URL
    (``file:// | mem:// | fakes3:// | s3://``).  The directory default is
    anchored to the source checkout (three levels above this file), not
    the current working directory, so resumed runs find the same store no
    matter where the process was launched; outside a checkout (installed
    package) it falls back to the working directory.  Returns ``None``
    when ``REPRO_CELLSTORE`` is ``off``/``0`` (durable layer disabled).
    """
    if cellstore_disabled():
        return None
    env_dir = os.environ.get("REPRO_CELLSTORE_DIR")
    if env_dir:
        return env_dir if "://" in env_dir else Path(env_dir)
    checkout = Path(__file__).resolve().parents[3]
    if (checkout / "benchmarks").is_dir():
        return checkout / "benchmarks" / "output" / "cellstore"
    return Path("benchmarks") / "output" / "cellstore"


class CellStore:
    """Two-layer (memory + durable backend) store of content-keyed results.

    Parameters
    ----------
    root:
        Durable-layer target: a directory path, a store URL
        (``file:// | mem:// | fakes3:// | s3://``), a ready-made
        :class:`~repro.experiments.backends.StoreBackend`, or ``None``
        for a memory-only store.
    persist:
        Master switch for the durable layer (``False`` keeps only the
        memory layer even when ``root`` is set) — this is what
        ``--no-cache`` toggles.
    lease_ttl:
        Seconds a claim may go without a heartbeat before other workers
        may reap it.  All workers sharing one store must agree on this
        value.
    clock:
        Time source leases age against (tests inject a fake clock so
        lease-expiry scenarios advance time instead of sleeping).  Must
        share an epoch with the backend's modification timestamps; the
        default — and the only sensible production value — is
        ``time.time``.
    codec:
        Payload codec new entries are written with (``zlib`` | ``lzma``
        | ``none``; default: ``REPRO_STORE_CODEC`` or ``zlib``).  Reads
        are codec-agnostic — the per-entry envelope says how to decode —
        so this only shapes *new* writes.
    """

    #: kind -> file extension of the durable representation.
    _EXT = {"cell": ".npz", "ratio": ".json"}

    #: Pending-key count at or below which the batched probes pay
    #: per-key round trips instead of a listing sweep, so steady-state
    #: polling cost scales with *pending* work — never with how many
    #: cells have already landed in the store.
    PROBE_LIMIT = 16

    def __init__(
        self,
        root: str | Path | StoreBackend | None,
        persist: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.time,
        codec: str | None = None,
    ):
        self.backend = resolve_backend(root)
        #: Original constructor target, so a derived store (e.g. the
        #: ``--no-cache`` copy) can be rebuilt over the same location.
        self.source = root
        self.persist = bool(persist) and self.backend is not None
        self.lease_ttl = float(lease_ttl)
        self.clock = clock
        self.codec_name = (codec or default_store_codec()).lower()
        if self.codec_name not in CODECS:
            raise ValueError(
                f"unknown store codec {self.codec_name!r}; "
                f"known: {sorted(CODECS)}"
            )
        self._memory: dict[tuple[str, str], Any] = {}
        #: kind -> entry names this process has observed landed.  Valid
        #: as a positive cache because results are immutable once
        #: written — the only removal is corrupt-entry healing, which
        #: evicts here too.  This is what keeps polling cost independent
        #: of store size: known-landed keys never pay another round trip.
        self._landed: dict[str, set[str]] = {}
        self.probe_limit = self.PROBE_LIMIT
        self.page_limit = StoreBackend.DEFAULT_PAGE_LIMIT
        self.stats = self._fresh_stats()

    def _fresh_stats(self) -> dict:
        return {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "reaped_claims": 0,
            # codec accounting (what this process wrote/read)
            "codec": self.codec_name,
            "encoded_raw_bytes": 0,
            "encoded_stored_bytes": 0,
            "decoded_by_codec": {},
            "healed_entries": 0,
            # pagination accounting (listing pages fetched / key probes)
            "list_pages": 0,
            "landed_probes": 0,
        }

    @property
    def root(self) -> Path | None:
        """Directory of a filesystem-backed store; ``None`` otherwise.

        Object-store backends have no filesystem root — use :attr:`url`
        for a location that round-trips through worker command lines.
        """
        if isinstance(self.backend, LocalFSBackend):
            return self.backend.root
        return None

    @property
    def url(self) -> str | None:
        """Backend URL (``file://…``, ``mem://…``, …); ``None`` if memory-only.

        This is the form the coordinator hands to spawned workers: any
        process that resolves the same URL reaches the same store
        (``mem://`` only within one process).
        """
        return None if self.backend is None else self.backend.url

    # -- public API ----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the hit/miss/put counters (benchmark phase accounting)."""
        self.stats = self._fresh_stats()

    def get(self, kind: str, key: str) -> Any | None:
        """Look up ``key`` in memory, then durably; ``None`` on miss.

        A durable hit is decode-checked: corrupt entries are deleted
        (healed) and reported as misses, so callers recompute and rewrite
        rather than ever consuming a torn value.
        """
        mem_key = (kind, key)
        if mem_key in self._memory:
            self.stats["hits"] += 1
            return self._memory[mem_key]
        if not self.persist or kind not in self._EXT:
            self.stats["misses"] += 1
            return None
        value = self._read(kind, key)
        if value is not None:
            self._memory[mem_key] = value
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
        return value

    def has(self, kind: str, key: str) -> bool:
        """Cheap existence probe: memory layer, then a backend ``stat``.

        Unlike :meth:`get` this never deserialises (polling loops — the
        coordinator's grid wait, the workers' pending scans — would
        otherwise load every landed cell into every process).  The cost:
        a torn durable entry reports ``True`` here; the reader that later
        fails to decode it heals by recomputation, so ``has`` is only
        ever optimistic by a corrupt entry's lifetime.
        """
        if (kind, key) in self._memory:
            return True
        if not self.persist or kind not in self._EXT:
            return False
        return self.backend.exists(self._entry_name(kind, key))

    def filter_missing(self, kind: str, keys) -> list[str]:
        """Subset of ``keys`` with no entry in memory or durable storage.

        The batched form of :meth:`has` — and a polling hot path: the
        coordinator's grid wait and the workers' pending scans call this
        every few hundred milliseconds.  Keys already observed landed
        (the per-process delta cache, maintained by :meth:`put` and
        every probe) cost nothing; the remaining *unknown* keys pay
        per-key ``exists`` probes when few (≤ :attr:`probe_limit` —
        steady-state cost then scales with pending work, never with how
        many cells have landed), or one bounded-page listing sweep when
        many (which also reseeds the cache).  Same optimism as
        :meth:`has`: a torn entry counts as present until a decode heals
        it — healing evicts it from the cache.
        """
        keys = list(keys)
        if not self.persist or kind not in self._EXT or self.backend is None:
            return [k for k in keys if (kind, k) not in self._memory]
        landed = self._landed.setdefault(kind, set())
        unknown = [
            k for k in keys
            if (kind, k) not in self._memory
            and self._entry_name(kind, k) not in landed
        ]
        if not unknown:
            return []
        if len(unknown) <= self.probe_limit:
            missing = []
            for key in unknown:
                name = self._entry_name(kind, key)
                self.stats["landed_probes"] += 1
                if self.backend.exists(name):
                    landed.add(name)
                else:
                    missing.append(key)
            return missing
        suffix = self._EXT[kind]
        fresh = {
            n for n in self._list_all(prefix=f"{kind}-")
            if n.endswith(suffix)
        }
        self._landed[kind] = fresh
        return [k for k in unknown if self._entry_name(kind, k) not in fresh]

    def verify(self, kind: str, key: str) -> bool:
        """:meth:`has`, but decode-checked and without memory caching.

        A torn durable entry is healed (deleted) and reported missing
        instead of optimistically present.  Workers run this as a final
        integrity sweep before declaring a grid complete: polling stays
        stat-cheap, yet no torn entry can survive to assembly.
        """
        if (kind, key) in self._memory:
            return True
        if not self.persist or kind not in self._EXT:
            return False
        return self._read(kind, key) is not None

    def put(self, kind: str, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` in memory and (for persistable kinds) durably.

        The durable write is atomic (temp file + rename, or a single
        object put), so a concurrent reader sees the previous entry or
        the new one — never a mix.  Identical recomputations overwrite
        with identical bytes, which is what lets duplicated distributed
        work converge instead of conflict.
        """
        self.stats["puts"] += 1
        self._memory[(kind, key)] = value
        if persist and self.persist and kind in self._EXT:
            self._write(kind, key, value)

    def clear_memory(self) -> None:
        """Drop the in-process layer (durable entries survive)."""
        self._memory.clear()

    def clear_disk(self) -> None:
        """Delete every durable entry, claim and spool (memory survives)."""
        if self.backend is None:
            return
        for name in self._list_all():
            if name.endswith((".npz", ".json", ".claim")):
                self.backend.delete(name)
        for name in self.backend.stray_spools():
            self.backend.delete(name)
        self._landed.clear()

    def disk_entries(self) -> list:
        """Path-like names of all persisted entries (diagnostics, tests).

        Filesystem stores return real :class:`~pathlib.Path` objects;
        object stores return :class:`~pathlib.PurePosixPath` entry names
        (``.name``/``.suffix`` work, filesystem access does not).
        """
        if self.backend is None:
            return []
        names = [n for n in self._list_all() if n.endswith((".npz", ".json"))]
        return entry_paths(self.backend, names)

    # -- claims / leases -----------------------------------------------

    def claim_name(self, kind: str, key: str) -> str:
        """Backend entry name of the claim guarding ``(kind, key)``."""
        return f"{kind}-{self._digest(key)}.claim"

    def claim_path(self, kind: str, key: str) -> Path | None:
        """Filesystem path of a claim; ``None`` for non-filesystem stores."""
        if not isinstance(self.backend, LocalFSBackend):
            return None
        return self.backend.path(self.claim_name(kind, key))

    def try_claim(self, kind: str, key: str, owner: str) -> bool:
        """Atomically acquire the lease on ``(kind, key)``.

        Returns ``True`` when this caller now holds the claim (stale and
        expired-corrupt claims are reaped first), ``False`` when another
        owner holds a live claim.  Exactly one concurrent caller can win:
        the backend's exclusive create (``O_EXCL`` / conditional put) is
        the arbiter.  Stores without a durable layer have no peers to
        coordinate with, so every claim trivially succeeds.
        """
        if self.backend is None or not self.persist:
            return True
        name = self.claim_name(kind, key)
        self._reap_if_stale(name)
        return self.backend.try_claim_exclusive(
            name, self._claim_payload(key, owner)
        )

    def refresh_claim(self, kind: str, key: str, owner: str) -> bool:
        """Heartbeat a held lease (atomic rewrite advances its timestamp).

        Returns ``False`` when the lease was lost — the claim is gone or
        a different owner holds it (it went stale and was reaped).  The
        caller may still finish and store its computation (results are
        idempotent) but must stop heartbeating so it cannot stomp the new
        owner's claim.
        """
        if self.backend is None or not self.persist:
            return True
        info = self.claim_info(kind, key)
        if info is None or info.get("owner") != owner:
            return False
        self.backend.stamp_mtime(
            self.claim_name(kind, key), self._claim_payload(key, owner)
        )
        return True

    def release_claim(self, kind: str, key: str, owner: str | None = None) -> None:
        """Drop a claim; with ``owner`` given, only if still held by them.

        Only the owner (or an unconditional caller such as
        :meth:`clear_disk`) may delete a claim; result entries are never
        deleted here — they are immutable once written, except for
        corrupt-entry healing in :meth:`get`/:meth:`verify`.
        """
        if self.backend is None:
            return
        if owner is not None:
            info = self.claim_info(kind, key)
            if info is not None and info.get("owner") != owner:
                return
        self.backend.delete(self.claim_name(kind, key))

    def claim_info(self, kind: str, key: str) -> dict | None:
        """Parsed claim payload; ``None`` when absent, torn or unreadable."""
        if self.backend is None:
            return None
        payload = self.backend.get(self.claim_name(kind, key))
        if payload is None:
            return None
        try:
            parsed = json.loads(payload)
        except ValueError:
            return None
        return parsed if isinstance(parsed, dict) else None

    def any_live_claim(self, kind: str, keys) -> bool:
        """Whether any of ``keys`` holds an unexpired lease.

        The batched form of :meth:`claim_is_live` for polling loops.
        Few keys (≤ :attr:`probe_limit`) pay one ``mtime`` probe each —
        cost proportional to pending work, independent of store size.
        Many keys fall back to one bounded-page listing sweep, and only
        the claims found pay a timestamp probe.
        """
        if self.backend is None:
            return False
        keys = list(keys)
        if len(keys) <= self.probe_limit:
            for key in keys:
                name = self.claim_name(kind, key)
                self.stats["landed_probes"] += 1
                mtime = self.backend.mtime(name)
                if mtime is not None and self.clock() - mtime <= self.lease_ttl:
                    return True
            return False
        present = {
            n for n in self._list_all(prefix=f"{kind}-")
            if n.endswith(".claim")
        }
        for key in keys:
            name = self.claim_name(kind, key)
            if name in present and not self._is_stale(name):
                return True
        return False

    def claim_is_live(self, kind: str, key: str) -> bool:
        """Whether ``(kind, key)`` is claimed and the lease is unexpired.

        A live lease means its owner is heartbeating (or died less than
        one TTL ago) — waiters should treat it as work in progress, not
        as a stalled fleet.
        """
        if self.backend is None:
            return False
        name = self.claim_name(kind, key)
        return self.backend.exists(name) and not self._is_stale(name)

    def claim_names(self) -> list[str]:
        """Entry names of every claim currently in the store."""
        if self.backend is None:
            return []
        return [n for n in self._list_all() if n.endswith(".claim")]

    def claim_files(self) -> list:
        """Every claim in the store as path-like values (see
        :meth:`disk_entries` for the filesystem/object distinction)."""
        return entry_paths(self.backend, self.claim_names())

    def stale_claim_files(self) -> list:
        """Claims whose lease has expired (owner presumed dead)."""
        names = [n for n in self.claim_names() if self._is_stale(n)]
        return entry_paths(self.backend, names)

    def reap_stale(self) -> int:
        """Remove expired claims and orphaned ``.tmp`` spool files.

        A SIGKILLed writer can leave a ``.tmp`` behind on the filesystem
        backend (the atomic-rename spool of an in-flight result); object
        backends never list spool artifacts.  Anything older than the
        lease TTL cannot belong to a live writer.  Returns the number of
        entries removed.
        """
        if self.backend is None:
            return 0
        reaped = 0
        stale_candidates = [
            n for n in self._list_all() if n.endswith(".claim")
        ] + self.backend.stray_spools()
        for name in stale_candidates:
            if self._is_stale(name):
                self.backend.delete(name)
                reaped += 1
                self.stats["reaped_claims"] += 1
        return reaped

    def _claim_payload(self, key: str, owner: str) -> bytes:
        return json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "key": key,
                "owner": owner,
                "ttl": self.lease_ttl,
                "stamped_at": self.clock(),
            }
        ).encode("utf-8")

    def _is_stale(self, name: str) -> bool:
        """Lease expiry by modification timestamp (meaningful even for
        torn claims, which carry no readable payload)."""
        mtime = self.backend.mtime(name)
        if mtime is None:
            return False
        return self.clock() - mtime > self.lease_ttl

    def _reap_if_stale(self, name: str) -> None:
        if self._is_stale(name):
            self.backend.delete(name)
            self.stats["reaped_claims"] += 1

    # -- durable representation ----------------------------------------

    @staticmethod
    def _digest(key: str) -> str:
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]

    def _entry_name(self, kind: str, key: str) -> str:
        return f"{kind}-{self._digest(key)}{self._EXT[kind]}"

    def _path(self, kind: str, key: str) -> Path:
        """Filesystem path of an entry (filesystem-backed stores only)."""
        return self.backend.path(self._entry_name(kind, key))

    def _list_all(self, prefix: str = "") -> list[str]:
        """Full listing via bounded pages (one round trip per page)."""
        names: list[str] = []
        token = None
        while True:
            page, token = self.backend.list_page(
                prefix=prefix, token=token, limit=self.page_limit
            )
            self.stats["list_pages"] += 1
            names.extend(page)
            if token is None:
                return names

    def _read(self, kind: str, key: str) -> Any | None:
        name = self._entry_name(kind, key)
        payload = self.backend.get(name)
        if payload is None:
            # The entry vanished (healed by a peer, cleared): the landed
            # cache must forget it or pending scans would report it
            # present forever while every verify fails.
            self._landed.get(kind, set()).discard(name)
            return None
        try:
            codec_name, raw = decode_envelope(payload)
            if kind == "cell":
                value = self._decode_cell(raw, key)
            else:
                value = self._decode_json(raw, key)
        except Exception:
            # Torn/corrupt/stale-format entry: heal by dropping it so the
            # caller recomputes and rewrites.
            self.backend.delete(name)
            self._landed.get(kind, set()).discard(name)
            self.stats["healed_entries"] += 1
            return None
        label = codec_name or "legacy"
        by_codec = self.stats["decoded_by_codec"]
        by_codec[label] = by_codec.get(label, 0) + 1
        return value

    def _write(self, kind: str, key: str, value: Any) -> None:
        if kind == "cell":
            raw = self._encode_cell(key, value)
        else:
            raw = json.dumps(
                {"schema": SCHEMA_VERSION, "key": key, "value": value}
            ).encode("utf-8")
        payload = encode_envelope(self.codec_name, raw)
        self.stats["encoded_raw_bytes"] += len(raw)
        self.stats["encoded_stored_bytes"] += len(payload)
        name = self._entry_name(kind, key)
        self.backend.put_atomic(name, payload)
        self._landed.setdefault(kind, set()).add(name)

    def codec_report(self) -> dict:
        """Stored-vs-raw byte accounting over every durable entry.

        A full-store scan (one decode per entry) — incident tooling and
        the bench harness call it once per run, never per poll.  Entries
        whose envelope cannot be decoded are tallied as ``unreadable``
        with zero raw bytes rather than raising.
        """
        report = {
            "entries": 0,
            "stored_bytes": 0,
            "raw_bytes": 0,
            "by_codec": {},
        }
        if self.backend is None:
            return report
        for name in self._list_all():
            if not name.endswith((".npz", ".json")):
                continue
            payload = self.backend.get(name)
            if payload is None:
                continue
            try:
                codec_name, raw = decode_envelope(payload)
                label = codec_name or "legacy"
            except Exception:
                label, raw = "unreadable", b""
            report["entries"] += 1
            report["stored_bytes"] += len(payload)
            report["raw_bytes"] += len(raw)
            report["by_codec"][label] = report["by_codec"].get(label, 0) + 1
        return report

    # -- cell (CVResult) codec -----------------------------------------

    @staticmethod
    def _encode_cell(key: str, result: CVResult) -> bytes:
        """Serialise a :class:`CVResult` to ``.npz`` bytes.

        Deterministic for a given (key, result): identical recomputations
        produce identical bytes, the property the distributed convergence
        argument rests on.
        """
        arrays = {
            f"metric:{name}": np.asarray(values)
            for name, values in result.metric_values.items()
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            sampling_ratios=np.asarray(result.sampling_ratios),
            n_folds=np.asarray(result.n_folds),
            schema=np.asarray(SCHEMA_VERSION),
            key=np.frombuffer(key.encode("utf-8"), dtype=np.uint8),
            **arrays,
        )
        return buffer.getvalue()

    @staticmethod
    def _decode_cell(payload: bytes, key: str) -> CVResult:
        """Inverse of :meth:`_encode_cell`; raises on any mismatch
        (schema, digest collision, missing arrays) so ``_read`` heals."""
        with np.load(io.BytesIO(payload)) as data:
            if int(data["schema"]) != SCHEMA_VERSION:
                raise ValueError("cell store schema mismatch")
            stored_key = bytes(data["key"]).decode("utf-8")
            if stored_key != key:
                raise ValueError("cell store digest collision")
            metric_values = {
                name[len("metric:"):]: data[name]
                for name in data.files
                if name.startswith("metric:")
            }
            if not metric_values:
                raise ValueError("cell entry has no metric arrays")
            return CVResult(
                metric_values=metric_values,
                sampling_ratios=data["sampling_ratios"],
                n_folds=int(data["n_folds"]),
            )

    @staticmethod
    def _decode_json(payload: bytes, key: str) -> Any:
        parsed = json.loads(payload.decode("utf-8"))
        if parsed.get("schema") != SCHEMA_VERSION or parsed.get("key") != key:
            raise ValueError("ratio entry schema/key mismatch")
        return parsed["value"]


class ClaimHeartbeat:
    """Background lease refresher for one held claim (context manager).

    Re-stamps the claim every ``interval`` seconds (default: a quarter of
    the store's TTL) while the guarded computation runs, so a lease can
    only expire when its holder actually died — without this, any
    computation longer than the TTL triggers a fleet-wide
    reap-and-recompute stampede.  If a refresh discovers the lease was
    lost anyway (reaped by a peer that thought us dead), it stops
    silently: the computation still finishes and stores its (idempotent)
    result, but must not stomp the new owner's claim.

    **Refresh errors do not kill the heartbeat.**  Historically any
    exception out of :meth:`CellStore.refresh_claim` killed this thread
    silently, so one store blip expired a *live* lease mid-computation
    and triggered exactly the duplicate-compute stampede the heartbeat
    exists to prevent.  Now a failed refresh retries in-thread on a
    tighter cadence (quarter interval, so several attempts fit inside
    one TTL) until the store answers again — a successful refresh after
    an outage re-stamps the lease — and the outcome is surfaced as two
    distinct flags: ``lost`` (the lease was reaped; the result is still
    stored, the claim must not be stomped) vs ``failed`` (the store
    rejected the refresh permanently, e.g. ``AccessDenied``; the worker
    loop should surface it, not recompute).  ``refresh_errors`` counts
    the weathered blips for diagnostics.
    """

    def __init__(self, store: CellStore, kind: str, key: str, owner: str,
                 interval: float | None = None):
        self._store = store
        self._kind = kind
        self._key = key
        self._owner = owner
        self._interval = interval or max(store.lease_ttl / 4.0, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.lost = False
        self.failed = False
        self.refresh_errors = 0

    def _run(self) -> None:
        from repro.experiments.resilience import StorePermanentError

        wait = self._interval
        while not self._stop.wait(wait):
            try:
                alive = self._store.refresh_claim(
                    self._kind, self._key, self._owner
                )
            except StorePermanentError:
                self.failed = True
                return
            except Exception:
                # Transient store trouble (retries already exhausted by
                # the resilient backend, or a raw backend hiccup): keep
                # the thread alive and retry sooner than the normal
                # cadence, so the lease is re-stamped the moment the
                # store recovers.
                self.refresh_errors += 1
                wait = max(self._interval / 4.0, 0.05)
                continue
            if not alive:
                self.lost = True
                return
            wait = self._interval

    def __enter__(self) -> "ClaimHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()
