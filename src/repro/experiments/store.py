"""Persistent, content-keyed result store for experiment cells.

Every expensive intermediate of the benchmark protocol — a cross-validated
(dataset, noise, sampler, classifier, rho) *cell*, a GBABS reference
sampling ratio, a generated dataset — is identified by a **stable JSON
key**: a ``json.dumps(..., sort_keys=True)`` rendering of every parameter
that influences the value.  The :class:`CellStore` maps such keys to
values through two layers:

* an in-process **memory layer** (a plain dict), which preserves the old
  ``_CELL_CACHE``-style object identity within a session, and
* a **disk layer** under ``benchmarks/output/cellstore/`` (one file per
  entry, named ``<kind>-<sha256 prefix>.npz|.json``), which lets an
  interrupted table/figure regeneration *resume* instead of recompute and
  lets parallel workers share results across runs.

Disk writes go through a temp file + ``os.replace`` so concurrent writers
can never expose a torn file; unreadable/corrupt entries are deleted and
treated as misses, so a damaged store heals itself by recomputation.

Environment knobs: ``REPRO_CELLSTORE_DIR`` overrides the store directory,
``REPRO_CELLSTORE=off`` disables the disk layer entirely.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.evaluation.cross_validation import CVResult

__all__ = ["CellStore", "stable_key", "default_store_root"]

#: Bump when the on-disk layout of stored values changes incompatibly.
SCHEMA_VERSION = 1


def stable_key(params: dict) -> str:
    """Canonical JSON rendering of a parameter dict (stable across runs)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def default_store_root() -> Path | None:
    """Store directory: ``$REPRO_CELLSTORE_DIR`` or benchmarks/output/cellstore.

    The default is anchored to the source checkout (three levels above this
    file), not the current working directory, so resumed runs find the same
    store no matter where the process was launched; outside a checkout
    (installed package) it falls back to the working directory.  Returns
    ``None`` when ``REPRO_CELLSTORE`` is ``off``/``0`` (disk layer
    disabled).
    """
    if os.environ.get("REPRO_CELLSTORE", "").lower() in ("off", "0", "false"):
        return None
    env_dir = os.environ.get("REPRO_CELLSTORE_DIR")
    if env_dir:
        return Path(env_dir)
    checkout = Path(__file__).resolve().parents[3]
    if (checkout / "benchmarks").is_dir():
        return checkout / "benchmarks" / "output" / "cellstore"
    return Path("benchmarks") / "output" / "cellstore"


class CellStore:
    """Two-layer (memory + disk) store of content-keyed experiment results.

    Parameters
    ----------
    root:
        Directory for the disk layer; ``None`` makes the store memory-only.
    persist:
        Master switch for the disk layer (``False`` keeps only the memory
        layer even when ``root`` is set) — this is what ``--no-cache``
        toggles.
    """

    #: kind -> file extension of the disk representation.
    _EXT = {"cell": ".npz", "ratio": ".json"}

    def __init__(self, root: str | Path | None, persist: bool = True):
        self.root = Path(root) if root is not None else None
        self.persist = bool(persist) and self.root is not None
        self._memory: dict[tuple[str, str], Any] = {}
        self.stats = {"hits": 0, "misses": 0, "puts": 0}

    # -- public API ----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the hit/miss/put counters (benchmark phase accounting)."""
        self.stats = {"hits": 0, "misses": 0, "puts": 0}

    def get(self, kind: str, key: str) -> Any | None:
        """Look up ``key`` in memory, then on disk; ``None`` on miss."""
        mem_key = (kind, key)
        if mem_key in self._memory:
            self.stats["hits"] += 1
            return self._memory[mem_key]
        if not self.persist or kind not in self._EXT:
            self.stats["misses"] += 1
            return None
        value = self._read(kind, key)
        if value is not None:
            self._memory[mem_key] = value
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
        return value

    def put(self, kind: str, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` in memory and (for persistable kinds) on disk."""
        self.stats["puts"] += 1
        self._memory[(kind, key)] = value
        if persist and self.persist and kind in self._EXT:
            self._write(kind, key, value)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memory.clear()

    def clear_disk(self) -> None:
        """Delete every stored file (memory entries survive)."""
        if self.root is None or not self.root.exists():
            return
        for path in self.root.iterdir():
            if path.suffix in (".npz", ".json", ".tmp"):
                path.unlink(missing_ok=True)

    def disk_entries(self) -> list[Path]:
        """Paths of all persisted entries (diagnostics and tests)."""
        if self.root is None or not self.root.exists():
            return []
        return sorted(
            p for p in self.root.iterdir() if p.suffix in (".npz", ".json")
        )

    # -- disk representation -------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.root / f"{kind}-{digest}{self._EXT[kind]}"

    def _read(self, kind: str, key: str) -> Any | None:
        path = self._path(kind, key)
        if not path.exists():
            return None
        try:
            if kind == "cell":
                return self._decode_cell(path, key)
            return self._decode_json(path, key)
        except Exception:
            # Torn/corrupt/stale-format entry: heal by dropping it so the
            # caller recomputes and rewrites.
            path.unlink(missing_ok=True)
            return None

    def _write(self, kind: str, key: str, value: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(kind, key)
        if kind == "cell":
            payload = self._encode_cell(key, value)
        else:
            payload = json.dumps(
                {"schema": SCHEMA_VERSION, "key": key, "value": value}
            ).encode("utf-8")
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    # -- cell (CVResult) codec -----------------------------------------

    @staticmethod
    def _encode_cell(key: str, result: CVResult) -> bytes:
        arrays = {
            f"metric:{name}": np.asarray(values)
            for name, values in result.metric_values.items()
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            sampling_ratios=np.asarray(result.sampling_ratios),
            n_folds=np.asarray(result.n_folds),
            schema=np.asarray(SCHEMA_VERSION),
            key=np.frombuffer(key.encode("utf-8"), dtype=np.uint8),
            **arrays,
        )
        return buffer.getvalue()

    @staticmethod
    def _decode_cell(path: Path, key: str) -> CVResult:
        with np.load(path) as data:
            if int(data["schema"]) != SCHEMA_VERSION:
                raise ValueError("cell store schema mismatch")
            stored_key = bytes(data["key"]).decode("utf-8")
            if stored_key != key:
                raise ValueError("cell store digest collision")
            metric_values = {
                name[len("metric:"):]: data[name]
                for name in data.files
                if name.startswith("metric:")
            }
            if not metric_values:
                raise ValueError("cell entry has no metric arrays")
            return CVResult(
                metric_values=metric_values,
                sampling_ratios=data["sampling_ratios"],
                n_folds=int(data["n_folds"]),
            )

    @staticmethod
    def _decode_json(path: Path, key: str) -> Any:
        payload = json.loads(path.read_text())
        if payload.get("schema") != SCHEMA_VERSION or payload.get("key") != key:
            raise ValueError("ratio entry schema/key mismatch")
        return payload["value"]
