"""Persistent, content-keyed result store for experiment cells.

Every expensive intermediate of the benchmark protocol — a cross-validated
(dataset, noise, sampler, classifier, rho) *cell*, a GBABS reference
sampling ratio, a generated dataset — is identified by a **stable JSON
key**: a ``json.dumps(..., sort_keys=True)`` rendering of every parameter
that influences the value.  The :class:`CellStore` maps such keys to
values through two layers:

* an in-process **memory layer** (a plain dict), which preserves the old
  ``_CELL_CACHE``-style object identity within a session, and
* a **disk layer** under ``benchmarks/output/cellstore/`` (one file per
  entry, named ``<kind>-<sha256 prefix>.npz|.json``), which lets an
  interrupted table/figure regeneration *resume* instead of recompute and
  lets parallel workers share results across runs.

Disk writes go through a temp file + ``os.replace`` so concurrent writers
can never expose a torn file; unreadable/corrupt entries are deleted and
treated as misses, so a damaged store heals itself by recomputation.

**Claims and leases.**  The disk layer doubles as a work queue for
distributed execution (many worker processes — possibly on many machines
sharing the directory over a network filesystem — splitting one grid).
``try_claim(kind, key, owner)`` creates ``<kind>-<digest>.claim``
atomically (``O_CREAT | O_EXCL``), so exactly one worker wins each entry;
the holder heartbeats via :meth:`refresh_claim` (an atomic rewrite that
bumps the file mtime) and removes the claim with :meth:`release_claim`
when the result has been written.  A claim whose mtime is older than the
store's ``lease_ttl`` is *stale* — its owner is presumed dead — and is
reaped by the next claimer, so a SIGKILLed worker delays its cell by at
most one TTL.  Truncated or otherwise unreadable claim files (a crash
between ``O_EXCL`` create and the payload write leaves a zero-byte file)
carry no owner information but still age by mtime, so they too expire and
can never deadlock the grid.

The invariant that makes all of this safe: **claims are an efficiency
device, not a correctness device**.  Results are content-keyed and every
computation is deterministic, so if two workers ever compute the same
entry (a lease reaped from a live-but-stalled owner, a heartbeat lost to
a reap race), both write byte-identical files through atomic ``os.replace``
and the store still converges to the single correct value.

Environment knobs: ``REPRO_CELLSTORE_DIR`` overrides the store directory,
``REPRO_CELLSTORE=off`` disables the disk layer entirely.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.evaluation.cross_validation import CVResult

__all__ = [
    "CellStore",
    "ClaimHeartbeat",
    "stable_key",
    "default_store_root",
    "default_claim_owner",
    "DEFAULT_LEASE_TTL",
]

#: Bump when the on-disk layout of stored values changes incompatibly.
SCHEMA_VERSION = 1

#: Default lease duration: a claim not heartbeat within this many seconds
#: is presumed orphaned (its owner crashed) and may be reaped.
DEFAULT_LEASE_TTL = 30.0


def default_claim_owner(tag: str = "") -> str:
    """Claim-owner identity, unique across every machine sharing a store.

    Must be host-qualified: pid-only identities collide across machines
    on a network filesystem, which would defeat ``release_claim``'s
    owner guard.
    """
    prefix = f"{tag}-" if tag else ""
    return f"{prefix}{socket.gethostname()}:{os.getpid()}"


def stable_key(params: dict) -> str:
    """Canonical JSON rendering of a parameter dict (stable across runs)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def default_store_root() -> Path | None:
    """Store directory: ``$REPRO_CELLSTORE_DIR`` or benchmarks/output/cellstore.

    The default is anchored to the source checkout (three levels above this
    file), not the current working directory, so resumed runs find the same
    store no matter where the process was launched; outside a checkout
    (installed package) it falls back to the working directory.  Returns
    ``None`` when ``REPRO_CELLSTORE`` is ``off``/``0`` (disk layer
    disabled).
    """
    if os.environ.get("REPRO_CELLSTORE", "").lower() in ("off", "0", "false"):
        return None
    env_dir = os.environ.get("REPRO_CELLSTORE_DIR")
    if env_dir:
        return Path(env_dir)
    checkout = Path(__file__).resolve().parents[3]
    if (checkout / "benchmarks").is_dir():
        return checkout / "benchmarks" / "output" / "cellstore"
    return Path("benchmarks") / "output" / "cellstore"


class CellStore:
    """Two-layer (memory + disk) store of content-keyed experiment results.

    Parameters
    ----------
    root:
        Directory for the disk layer; ``None`` makes the store memory-only.
    persist:
        Master switch for the disk layer (``False`` keeps only the memory
        layer even when ``root`` is set) — this is what ``--no-cache``
        toggles.
    lease_ttl:
        Seconds a claim may go without a heartbeat before other workers
        may reap it.  All workers sharing one store directory must agree
        on this value.
    """

    #: kind -> file extension of the disk representation.
    _EXT = {"cell": ".npz", "ratio": ".json"}

    def __init__(
        self,
        root: str | Path | None,
        persist: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ):
        self.root = Path(root) if root is not None else None
        self.persist = bool(persist) and self.root is not None
        self.lease_ttl = float(lease_ttl)
        self._memory: dict[tuple[str, str], Any] = {}
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "reaped_claims": 0}

    # -- public API ----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the hit/miss/put counters (benchmark phase accounting)."""
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "reaped_claims": 0}

    def get(self, kind: str, key: str) -> Any | None:
        """Look up ``key`` in memory, then on disk; ``None`` on miss."""
        mem_key = (kind, key)
        if mem_key in self._memory:
            self.stats["hits"] += 1
            return self._memory[mem_key]
        if not self.persist or kind not in self._EXT:
            self.stats["misses"] += 1
            return None
        value = self._read(kind, key)
        if value is not None:
            self._memory[mem_key] = value
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
        return value

    def has(self, kind: str, key: str) -> bool:
        """Cheap existence probe: memory layer, then a disk ``stat``.

        Unlike :meth:`get` this never deserialises (polling loops — the
        coordinator's grid wait, the workers' pending scans — would
        otherwise load every landed cell into every process).  The cost:
        a torn disk entry reports ``True`` here; the reader that later
        fails to decode it heals by recomputation, so ``has`` is only
        ever optimistic by a corrupt file's lifetime.
        """
        if (kind, key) in self._memory:
            return True
        if not self.persist or kind not in self._EXT:
            return False
        return self._path(kind, key).exists()

    def verify(self, kind: str, key: str) -> bool:
        """:meth:`has`, but decode-checked and without memory caching.

        A torn disk entry is healed (deleted) and reported missing
        instead of optimistically present.  Workers run this as a final
        integrity sweep before declaring a grid complete: polling stays
        stat-cheap, yet no torn file can survive to assembly.
        """
        if (kind, key) in self._memory:
            return True
        if not self.persist or kind not in self._EXT:
            return False
        return self._read(kind, key) is not None

    def put(self, kind: str, key: str, value: Any, persist: bool = True) -> None:
        """Store ``value`` in memory and (for persistable kinds) on disk."""
        self.stats["puts"] += 1
        self._memory[(kind, key)] = value
        if persist and self.persist and kind in self._EXT:
            self._write(kind, key, value)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memory.clear()

    def clear_disk(self) -> None:
        """Delete every stored file (memory entries survive)."""
        if self.root is None or not self.root.exists():
            return
        for path in self.root.iterdir():
            if path.suffix in (".npz", ".json", ".tmp", ".claim"):
                path.unlink(missing_ok=True)

    def disk_entries(self) -> list[Path]:
        """Paths of all persisted entries (diagnostics and tests)."""
        if self.root is None or not self.root.exists():
            return []
        return sorted(
            p for p in self.root.iterdir() if p.suffix in (".npz", ".json")
        )

    # -- claims / leases -----------------------------------------------

    def claim_path(self, kind: str, key: str) -> Path | None:
        """Claim-file path of ``(kind, key)``; ``None`` without a disk layer."""
        if self.root is None:
            return None
        return self.root / f"{kind}-{self._digest(key)}.claim"

    def try_claim(self, kind: str, key: str, owner: str) -> bool:
        """Atomically acquire the lease on ``(kind, key)``.

        Returns ``True`` when this caller now holds the claim (stale and
        expired-corrupt claims are reaped first), ``False`` when another
        owner holds a live claim.  Stores without a disk layer have no
        peers to coordinate with, so every claim trivially succeeds.
        """
        path = self.claim_path(kind, key)
        if path is None or not self.persist:
            return True
        self.root.mkdir(parents=True, exist_ok=True)
        self._reap_if_stale(path)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        # A crash between the O_EXCL create above and this write leaves a
        # zero-byte claim; it has no owner to heartbeat it, so it ages out
        # by mtime like any other orphan.
        with os.fdopen(fd, "wb") as handle:
            handle.write(self._claim_payload(key, owner))
        return True

    def refresh_claim(self, kind: str, key: str, owner: str) -> bool:
        """Heartbeat a held lease (atomic rewrite bumps the file mtime).

        Returns ``False`` when the lease was lost — the claim file is gone
        or a different owner holds it (it went stale and was reaped).  The
        caller may still finish and store its computation (results are
        idempotent) but must stop heartbeating so it cannot stomp the new
        owner's claim.
        """
        path = self.claim_path(kind, key)
        if path is None or not self.persist:
            return True
        info = self.claim_info(kind, key)
        if info is None or info.get("owner") != owner:
            return False
        self._replace_bytes(path, self._claim_payload(key, owner))
        return True

    def release_claim(self, kind: str, key: str, owner: str | None = None) -> None:
        """Drop a claim; with ``owner`` given, only if still held by them."""
        path = self.claim_path(kind, key)
        if path is None:
            return
        if owner is not None:
            info = self.claim_info(kind, key)
            if info is not None and info.get("owner") != owner:
                return
        path.unlink(missing_ok=True)

    def claim_info(self, kind: str, key: str) -> dict | None:
        """Parsed claim payload; ``None`` when absent, torn or unreadable."""
        path = self.claim_path(kind, key)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def claim_is_live(self, kind: str, key: str) -> bool:
        """Whether ``(kind, key)`` is claimed and the lease is unexpired.

        A live lease means its owner is heartbeating (or died less than
        one TTL ago) — waiters should treat it as work in progress, not
        as a stalled fleet.
        """
        path = self.claim_path(kind, key)
        if path is None:
            return False
        return path.exists() and not self._is_stale(path)

    def claim_files(self) -> list[Path]:
        """Every claim file currently in the store directory."""
        if self.root is None or not self.root.exists():
            return []
        return sorted(self.root.glob("*.claim"))

    def stale_claim_files(self) -> list[Path]:
        """Claim files whose lease has expired (owner presumed dead)."""
        return [p for p in self.claim_files() if self._is_stale(p)]

    def reap_stale(self) -> int:
        """Remove expired claims and orphaned ``.tmp`` spool files.

        A SIGKILLed writer can leave a ``.tmp`` behind (the atomic-rename
        spool of an in-flight result); anything older than the lease TTL
        cannot belong to a live writer.  Returns the number of files
        removed.
        """
        if self.root is None or not self.root.exists():
            return 0
        reaped = 0
        for path in list(self.root.glob("*.claim")) + list(self.root.glob("*.tmp")):
            if self._is_stale(path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                reaped += 1
                self.stats["reaped_claims"] += 1
        return reaped

    def _claim_payload(self, key: str, owner: str) -> bytes:
        return json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "key": key,
                "owner": owner,
                "ttl": self.lease_ttl,
                "stamped_at": time.time(),
            }
        ).encode("utf-8")

    def _is_stale(self, path: Path) -> bool:
        """Lease expiry by file mtime (meaningful even for torn claims)."""
        try:
            mtime = path.stat().st_mtime
        except FileNotFoundError:
            return False
        return time.time() - mtime > self.lease_ttl

    def _reap_if_stale(self, path: Path) -> None:
        if self._is_stale(path):
            try:
                path.unlink()
            except FileNotFoundError:
                return
            self.stats["reaped_claims"] += 1

    # -- disk representation -------------------------------------------

    @staticmethod
    def _digest(key: str) -> str:
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{self._digest(key)}{self._EXT[kind]}"

    def _read(self, kind: str, key: str) -> Any | None:
        path = self._path(kind, key)
        if not path.exists():
            return None
        try:
            if kind == "cell":
                return self._decode_cell(path, key)
            return self._decode_json(path, key)
        except Exception:
            # Torn/corrupt/stale-format entry: heal by dropping it so the
            # caller recomputes and rewrites.
            path.unlink(missing_ok=True)
            return None

    def _write(self, kind: str, key: str, value: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        if kind == "cell":
            payload = self._encode_cell(key, value)
        else:
            payload = json.dumps(
                {"schema": SCHEMA_VERSION, "key": key, "value": value}
            ).encode("utf-8")
        self._replace_bytes(self._path(kind, key), payload)

    def _replace_bytes(self, path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` atomically (temp file + rename)."""
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    # -- cell (CVResult) codec -----------------------------------------

    @staticmethod
    def _encode_cell(key: str, result: CVResult) -> bytes:
        arrays = {
            f"metric:{name}": np.asarray(values)
            for name, values in result.metric_values.items()
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            sampling_ratios=np.asarray(result.sampling_ratios),
            n_folds=np.asarray(result.n_folds),
            schema=np.asarray(SCHEMA_VERSION),
            key=np.frombuffer(key.encode("utf-8"), dtype=np.uint8),
            **arrays,
        )
        return buffer.getvalue()

    @staticmethod
    def _decode_cell(path: Path, key: str) -> CVResult:
        with np.load(path) as data:
            if int(data["schema"]) != SCHEMA_VERSION:
                raise ValueError("cell store schema mismatch")
            stored_key = bytes(data["key"]).decode("utf-8")
            if stored_key != key:
                raise ValueError("cell store digest collision")
            metric_values = {
                name[len("metric:"):]: data[name]
                for name in data.files
                if name.startswith("metric:")
            }
            if not metric_values:
                raise ValueError("cell entry has no metric arrays")
            return CVResult(
                metric_values=metric_values,
                sampling_ratios=data["sampling_ratios"],
                n_folds=int(data["n_folds"]),
            )

    @staticmethod
    def _decode_json(path: Path, key: str) -> Any:
        payload = json.loads(path.read_text())
        if payload.get("schema") != SCHEMA_VERSION or payload.get("key") != key:
            raise ValueError("ratio entry schema/key mismatch")
        return payload["value"]


class ClaimHeartbeat:
    """Background lease refresher for one held claim (context manager).

    Re-stamps the claim file every ``interval`` seconds (default: a
    quarter of the store's TTL) while the guarded computation runs, so a
    lease can only expire when its holder actually died — without this,
    any computation longer than the TTL triggers a fleet-wide
    reap-and-recompute stampede.  If a refresh discovers the lease was
    lost anyway (reaped by a peer that thought us dead), it stops
    silently: the computation still finishes and stores its (idempotent)
    result, but must not stomp the new owner's claim.
    """

    def __init__(self, store: CellStore, kind: str, key: str, owner: str,
                 interval: float | None = None):
        self._store = store
        self._kind = kind
        self._key = key
        self._owner = owner
        self._interval = interval or max(store.lease_ttl / 4.0, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.lost = False

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._store.refresh_claim(self._kind, self._key, self._owner):
                self.lost = True
                return

    def __enter__(self) -> "ClaimHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()
