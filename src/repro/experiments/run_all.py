"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.experiments.run_all                 # quick profile, all
    python -m repro.experiments.run_all table2 fig6     # selected only
    python -m repro.experiments.run_all --profile medium
    python -m repro.experiments.run_all --profile full  # the paper's grid
    python -m repro.experiments.run_all --jobs 4        # parallel CV grid
    python -m repro.experiments.run_all --no-cache      # ignore disk store

Results are printed as text reports and, with ``--json DIR``, also dumped
as JSON for post-processing.

``--jobs N`` fans every cross-validation cell over ``N`` worker processes
(``--jobs 0`` = all cores); results are bit-identical to serial.  Cold
runs resolve payloads (dataset generation, GBABS reference ratios) through
the pool too, and datasets ship to workers zero-copy via the shared-memory
data plane (one block per unique dataset, unlinked on exit).  Completed
cells land in the persistent store under ``benchmarks/output/cellstore/``
as soon as they finish, so an interrupted run resumes instead of
recomputing; ``--no-cache`` disables that disk layer for the session.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import ablations, figures, tables
from repro.experiments.config import FULL, MEDIUM, QUICK

_PROFILES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}


def _jsonable(obj):
    """Recursively convert numpy containers for json.dump."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def _experiments(cfg, n_jobs: int | None = 1):
    """(name, compute, render) triples for every table/figure/ablation."""
    t2_cache: dict = {}

    def table2_cached():
        if "result" not in t2_cache:
            t2_cache["result"] = tables.table2(cfg, n_jobs=n_jobs)
        return t2_cache["result"]

    return [
        ("table1", lambda: tables.table1(cfg), tables.format_table1),
        ("table2", table2_cached, tables.format_table2),
        ("table3", lambda: tables.table3(cfg, table2_cached()), tables.format_table3),
        ("table4", lambda: tables.table4(cfg, n_jobs=n_jobs), tables.format_table4),
        ("fig5", lambda: figures.fig5(cfg), figures.format_fig5),
        ("fig6", lambda: figures.fig6(cfg), figures.format_fig6),
        ("fig7_fig8", lambda: figures.fig7_fig8(cfg, n_jobs=n_jobs),
         figures.format_fig7_fig8),
        ("fig9", lambda: figures.fig9(cfg, n_jobs=n_jobs), figures.format_fig9),
        ("fig10_fig11", lambda: figures.fig10_fig11(cfg, n_jobs=n_jobs),
         figures.format_fig10_fig11),
        ("ablation_overlap", lambda: ablations.ablation_overlap(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
        ("ablation_noise",
         lambda: ablations.ablation_noise_detection(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
        ("ablation_borderline",
         lambda: ablations.ablation_borderline(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also dump raw results as JSON files")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the CV grids "
                             "(0 = all cores; results identical to serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent cell store for this run")
    args = parser.parse_args(argv)

    if args.no_cache:
        from repro.experiments.runner import configure_store

        configure_store(persist=False)

    cfg = _PROFILES[args.profile]
    available = _experiments(cfg, n_jobs=args.jobs)
    names = [n for n, _, _ in available]
    selected = args.experiments or names
    unknown = sorted(set(selected) - set(names))
    if unknown:
        parser.error(f"unknown experiments: {unknown}; available: {names}")

    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)

    for name, compute, render in available:
        if name not in selected:
            continue
        start = time.time()
        result = compute()
        elapsed = time.time() - start
        print(f"\n=== {name} (profile: {cfg.name}, {elapsed:.1f}s) ===")
        print(render(result))
        if json_dir:
            path = json_dir / f"{name}.json"
            path.write_text(json.dumps(_jsonable(result), indent=2))
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
