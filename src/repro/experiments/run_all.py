"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.experiments.run_all                 # quick profile, all
    python -m repro.experiments.run_all table2 fig6     # selected only
    python -m repro.experiments.run_all --profile medium
    python -m repro.experiments.run_all --profile full  # the paper's grid
    python -m repro.experiments.run_all --jobs 4        # parallel CV grid
    python -m repro.experiments.run_all --no-cache      # ignore disk store
    python -m repro.experiments.run_all --distributed --workers 4
    python -m repro.experiments.run_all --workers-external --store /mnt/grid
    python -m repro.experiments.run_all table2 --distributed \
        --store-url fakes3://bucket-dir    # object-store backend

Results are printed as text reports and, with ``--json DIR``, also dumped
as JSON for post-processing.

``--jobs N`` fans every cross-validation cell over ``N`` worker processes
(``--jobs 0`` = all cores); results are bit-identical to serial.  Cold
runs resolve payloads (dataset generation, GBABS reference ratios) through
the pool too, and datasets ship to workers zero-copy via the shared-memory
data plane (one block per unique dataset, unlinked on exit).  Completed
cells land in the persistent store under ``benchmarks/output/cellstore/``
as soon as they finish, so an interrupted run resumes instead of
recomputing; ``--no-cache`` disables that disk layer for the session.

``--distributed`` turns this process into a *coordinator*: it serialises
the selected experiments' cell grids into a work manifest inside the
store directory, launches ``--workers N`` local worker processes
(``python -m repro.experiments.worker``) that split the grid through the
store's claim/lease protocol, waits for every cell to land, and then
assembles the tables/figures from pure store hits.  With
``--workers-external`` no workers are launched — point any number of
externally started workers (other machines sharing the directory) at the
same ``--store`` and the coordinator just plans, waits and assembles.
Either way the results are bit-identical to a serial run.

``--store`` / ``--store-url`` selects the storage backend: a directory
(or ``file://`` URL) keeps the historical filesystem layout, while
``fakes3://DIR`` / ``s3://bucket/prefix`` run the same claim/lease
protocol over object-store conditional-put semantics — see
``docs/architecture/store-backends.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import ablations, figures, tables
from repro.experiments.config import FULL, MEDIUM, QUICK

_PROFILES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}


def _jsonable(obj):
    """Recursively convert numpy containers for json.dump."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def _experiments(cfg, n_jobs: int | None = 1):
    """(name, compute, render) triples for every table/figure/ablation."""
    t2_cache: dict = {}

    def table2_cached():
        if "result" not in t2_cache:
            t2_cache["result"] = tables.table2(cfg, n_jobs=n_jobs)
        return t2_cache["result"]

    return [
        ("table1", lambda: tables.table1(cfg), tables.format_table1),
        ("table2", table2_cached, tables.format_table2),
        ("table3", lambda: tables.table3(cfg, table2_cached()), tables.format_table3),
        ("table4", lambda: tables.table4(cfg, n_jobs=n_jobs), tables.format_table4),
        ("fig5", lambda: figures.fig5(cfg), figures.format_fig5),
        ("fig6", lambda: figures.fig6(cfg), figures.format_fig6),
        ("fig7_fig8", lambda: figures.fig7_fig8(cfg, n_jobs=n_jobs),
         figures.format_fig7_fig8),
        ("fig9", lambda: figures.fig9(cfg, n_jobs=n_jobs), figures.format_fig9),
        ("fig10_fig11", lambda: figures.fig10_fig11(cfg, n_jobs=n_jobs),
         figures.format_fig10_fig11),
        ("ablation_overlap", lambda: ablations.ablation_overlap(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
        ("ablation_noise",
         lambda: ablations.ablation_noise_detection(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
        ("ablation_borderline",
         lambda: ablations.ablation_borderline(cfg, n_jobs=n_jobs),
         ablations.format_ablation),
    ]


def _coordinate(args, cfg, selected: list[str]) -> None:
    """Distributed phase: plan, (maybe) launch workers, wait for the grid.

    On return every cell behind the selected experiments is in the store,
    so the regular serial rendering loop assembles from pure hits.
    Experiments without a cell grid (table1, fig5, fig6, the ablations)
    are simply computed locally by that loop.
    """
    from repro.experiments import dispatch
    from repro.experiments.runner import get_store

    store = get_store()
    if not store.persist or store.backend is None:
        raise RuntimeError(
            "distributed mode needs a persistent store "
            "(is REPRO_CELLSTORE=off?)"
        )
    # Distributed execution means *other processes* must reach the store;
    # mem:// buckets are per-process, so spawned and external workers
    # alike would wait on a grid they can never see.
    if store.url.startswith("mem://"):
        raise RuntimeError(
            "mem:// stores are per-process; workers cannot share them — "
            "use a directory, file:// or fakes3:// store"
        )
    cell_backed = [n for n in selected if n in dispatch.GRID_EXPERIMENTS]
    units = dispatch.plan_grid(cfg, cell_backed) if cell_backed else []
    units = dispatch.pending_units(store, units)
    if not units:
        print("[distributed] no pending cells; assembling from the store")
        return
    manifest = dispatch.write_manifest(store, cfg, units)
    print(f"[distributed] {len(units)} pending cells -> {manifest}")

    def log(message: str) -> None:
        print(f"[distributed] {message}", flush=True)

    extra_args = ["--outage-grace", str(args.outage_grace)]
    if args.store_codec:
        extra_args += ["--store-codec", args.store_codec]

    supervisor = None
    elastic = args.min_workers is not None or args.max_workers is not None
    if args.workers_external:
        print(f"[distributed] waiting for external workers on {store.url}")
    elif elastic:
        # Elastic fleet: start at the floor, let queue depth pull in more
        # workers.  The lru claim order makes late joiners steal the
        # least-recently-attempted cells instead of queueing behind a
        # straggler's fixed permutation.
        min_workers = max(1, args.min_workers or 1)
        max_workers = max(min_workers, args.max_workers or args.workers)

        def command_for(index: int) -> list[str]:
            return dispatch.worker_command(
                store.url, index, jobs=args.jobs, claim_order="lru",
                extra_args=extra_args,
            )

        supervisor = dispatch.FleetSupervisor(
            [command_for(index) for index in range(min_workers)],
            max_restarts=args.max_restarts, log=log,
            command_factory=command_for,
            min_workers=min_workers, max_workers=max_workers,
            scale_threshold=args.scale_threshold,
        )
        supervisor.start()
    else:
        n_workers = max(1, args.workers)
        stagger = max(1, len(units) // n_workers)
        commands = [
            dispatch.worker_command(
                store.url, index, jobs=args.jobs, stagger=stagger,
                extra_args=extra_args,
            )
            for index in range(n_workers)
        ]
        supervisor = dispatch.FleetSupervisor(
            commands, max_restarts=args.max_restarts, log=log
        )
        supervisor.start()

    def fleet_dead() -> bool:
        # poll() first: a freshly-died worker gets its exit logged and
        # its restart scheduled before it can count as dead.
        if supervisor is None:
            return False
        supervisor.poll()
        return supervisor.fleet_dead()

    def on_poll(remaining) -> None:
        if supervisor is not None:
            supervisor.autoscale(len(remaining))

    try:
        dispatch.wait_for_grid(
            store,
            units,
            poll=args.poll,
            timeout=args.timeout,
            should_abort=fleet_dead,
            on_progress=lambda done, total: print(
                f"[distributed] {done}/{total} cells done", flush=True
            ),
            on_poll=on_poll,
        )
        # Consumed manifests must not linger: workers joining this store
        # later would adopt them as part of their exit condition.
        dispatch.prune_manifests(store)
    finally:
        if supervisor is not None:
            supervisor.terminate()
            if supervisor.scale_ups or supervisor.scale_downs:
                log(f"fleet scaled up {supervisor.scale_ups}x, "
                    f"down {supervisor.scale_downs}x")
            for entry in supervisor.summary():
                codes = ",".join(str(c) for c in entry["exit_codes"]) or "-"
                if entry["gave_up"]:
                    status = "gave up"
                elif entry["retired"]:
                    status = "retired"
                else:
                    status = "stopped"
                log(f"worker {entry['worker']}: {status}, "
                    f"restarts={entry['restarts']}, exits=[{codes}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also dump raw results as JSON files")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the CV grids "
                             "(0 = all cores; results identical to serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent cell store for this run")
    parser.add_argument("--distributed", action="store_true",
                        help="coordinate worker processes over the shared "
                             "store instead of computing cells in-process")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker processes the coordinator launches "
                             "in --distributed mode (default: 2)")
    parser.add_argument("--workers-external", action="store_true",
                        help="distributed, but launch no workers: wait for "
                             "externally started ones sharing --store")
    parser.add_argument("--min-workers", type=int, default=None, metavar="N",
                        help="elastic fleet floor: start this many workers "
                             "and let queue depth scale the fleet up to "
                             "--max-workers (enables autoscaling)")
    parser.add_argument("--max-workers", type=int, default=None, metavar="N",
                        help="elastic fleet ceiling (default: --workers)")
    parser.add_argument("--scale-threshold", type=int, default=4, metavar="N",
                        help="pending cells per worker before the "
                             "autoscaler adds another (default: 4)")
    parser.add_argument("--store-codec", default=None, metavar="CODEC",
                        help="payload compression codec (zlib | lzma | "
                             "none; default: $REPRO_STORE_CODEC or zlib); "
                             "passed through to spawned workers")
    parser.add_argument("--max-restarts", type=int, default=2, metavar="N",
                        help="restarts per crashed worker slot before the "
                             "supervisor gives up on it (default: 2)")
    parser.add_argument("--outage-grace", type=float, default=60.0,
                        metavar="S",
                        help="seconds each worker keeps polling through a "
                             "store outage before exiting (default: 60)")
    parser.add_argument("--store", "--store-url", dest="store",
                        metavar="DIR_OR_URL", default=None,
                        help="cell store: a directory or a file:// / "
                             "mem:// / fakes3:// / s3:// URL (default: "
                             "benchmarks/output/cellstore, "
                             "$REPRO_CELLSTORE_DIR, or the profile's "
                             "store_url)")
    parser.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="coordinator poll interval while waiting for "
                             "distributed cells")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="fail the distributed wait after this long")
    args = parser.parse_args(argv)

    if args.workers_external:
        args.distributed = True
    if args.distributed and args.no_cache:
        parser.error("--distributed needs the persistent store; "
                     "drop --no-cache")

    cfg = _PROFILES[args.profile]

    from repro.experiments.runner import configure_store

    from repro.experiments.store import cellstore_disabled

    cellstore_off = cellstore_disabled()
    # Codec precedence mirrors the store-target one: explicit flag, then
    # the environment (inside CellStore), then the profile default.
    codec = args.store_codec or (
        cfg.store_codec if not os.environ.get("REPRO_STORE_CODEC") else None
    )
    if args.store:
        configure_store(root=args.store, persist=not args.no_cache,
                        codec=codec)
    elif (cfg.store_url and not os.environ.get("REPRO_CELLSTORE_DIR")
          and not cellstore_off):
        # Profile-level default store; explicit flags and the environment
        # — including the REPRO_CELLSTORE=off kill switch — override it
        # (it is deployment config, not an experiment knob).
        configure_store(root=cfg.store_url, persist=not args.no_cache,
                        codec=codec)
    elif args.no_cache:
        configure_store(persist=False)
    elif codec:
        configure_store(codec=codec)
    # In distributed mode grid experiments become pure store hits after
    # the wait, so --jobs only matters for the locally-computed rest
    # (ablations, fig5/6) — pass it through either way.
    available = _experiments(cfg, n_jobs=args.jobs)
    names = [n for n, _, _ in available]
    selected = args.experiments or names
    unknown = sorted(set(selected) - set(names))
    if unknown:
        parser.error(f"unknown experiments: {unknown}; available: {names}")

    if args.distributed:
        try:
            _coordinate(args, cfg, selected)
        except (RuntimeError, TimeoutError) as exc:
            print(f"[distributed] FAILED: {exc}")
            return 1

    json_dir = Path(args.json) if args.json else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)

    for name, compute, render in available:
        if name not in selected:
            continue
        start = time.time()
        result = compute()
        elapsed = time.time() - start
        print(f"\n=== {name} (profile: {cfg.name}, {elapsed:.1f}s) ===")
        print(render(result))
        if json_dir:
            path = json_dir / f"{name}.json"
            path.write_text(json.dumps(_jsonable(result), indent=2))
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
