"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.config import FULL, MEDIUM, QUICK, ExperimentConfig, active_config
from repro.experiments.executor import CellSpec, ExperimentExecutor, prefetch_cells
from repro.experiments.runner import (
    clear_cache,
    configure_store,
    get_store,
    run_cell,
)
from repro.experiments.store import CellStore, stable_key

__all__ = [
    "ExperimentConfig",
    "QUICK",
    "MEDIUM",
    "FULL",
    "active_config",
    "run_cell",
    "clear_cache",
    "CellSpec",
    "ExperimentExecutor",
    "prefetch_cells",
    "CellStore",
    "configure_store",
    "get_store",
    "stable_key",
]
