"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.config import FULL, MEDIUM, QUICK, ExperimentConfig, active_config
from repro.experiments.runner import clear_cache, run_cell

__all__ = [
    "ExperimentConfig",
    "QUICK",
    "MEDIUM",
    "FULL",
    "active_config",
    "run_cell",
    "clear_cache",
]
