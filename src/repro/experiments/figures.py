"""Regenerators for the paper's Figs. 5–11.

Each ``figN`` function returns the figure's underlying numbers; the
``format_figN`` companions render ASCII versions through
:mod:`repro.viz.ascii`.
"""

from __future__ import annotations

import numpy as np

from repro.core.gbabs import GBABS
from repro.evaluation.posthoc import friedman_test, nemenyi_critical_difference
from repro.evaluation.ranking import rank_methods
from repro.experiments.config import ExperimentConfig, active_config
from repro.experiments.executor import CellSpec, prefetch_cells
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    dataset_with_noise,
    reference_gbabs_ratio,
    run_cell,
)
from repro.sampling import GGBS
from repro.viz import TSNE, bar_chart, heatmap, line_chart, ridge, scatter

__all__ = [
    "FIG9_METHODS",
    "fig9_specs",
    "fig10_fig11_specs",
    "fig5",
    "fig6",
    "fig7_fig8",
    "fig9",
    "fig10_fig11",
    "format_fig5",
    "format_fig6",
    "format_fig7_fig8",
    "format_fig9",
    "format_fig10_fig11",
]

#: The eight sampling rows of Fig. 9, in paper order.
FIG9_METHODS = ("gbabs", "ggbs", "igbs", "smnc", "tomek", "sm", "bsm", "ori")

#: Datasets visualised in Fig. 5.
_FIG5_DATASETS = ("S5", "S1", "S3", "S6")


def fig9_specs(cfg: ExperimentConfig) -> list[CellSpec]:
    """The Fig. 9 cell grid: eight samplers × DT across the noise grid
    (single-sourced for the prefetch and the distributed dispatcher)."""
    noise_grid = (0.0,) + tuple(cfg.noise_ratios)
    return [
        CellSpec(code, method, "dt", noise_ratio=noise,
                 metrics=("accuracy", "g_mean"))
        for noise in noise_grid
        for method in FIG9_METHODS
        for code in cfg.datasets
    ]


def fig10_fig11_specs(cfg: ExperimentConfig) -> list[CellSpec]:
    """The Figs. 10–11 cell grid: GBABS-DT across the rho sweep."""
    return [
        CellSpec(code, "gbabs", "dt", rho=rho)
        for rho in cfg.rho_grid
        for code in cfg.datasets
    ]


def fig5(
    cfg: ExperimentConfig | None = None,
    max_points: int = 250,
    n_iter: int = 300,
) -> dict:
    """Fig. 5: t-SNE embeddings of S5, S1, S3 and S6."""
    cfg = cfg or active_config()
    embeddings = {}
    for code in _FIG5_DATASETS:
        if code not in cfg.datasets:
            continue
        x, y = dataset_with_noise(code, cfg, 0.0)
        if x.shape[0] > max_points:
            rng = np.random.default_rng(cfg.random_state)
            keep = rng.choice(x.shape[0], size=max_points, replace=False)
            x, y = x[keep], y[keep]
        emb = TSNE(
            perplexity=min(30.0, (x.shape[0] - 1) / 4),
            n_iter=n_iter,
            random_state=cfg.random_state,
        ).fit_transform(x)
        embeddings[code] = {"embedding": emb, "labels": y}
    return {"embeddings": embeddings, "profile": cfg.name}


def format_fig5(result: dict) -> str:
    sections = []
    for code, data in result["embeddings"].items():
        sections.append(f"Fig. 5 — t-SNE of {code}")
        sections.append(scatter(data["embedding"], data["labels"], height=16, width=56))
        sections.append("")
    return "\n".join(sections)


def fig6(cfg: ExperimentConfig | None = None) -> dict:
    """Fig. 6: GBABS vs GGBS sampling ratio per dataset per noise ratio.

    Ratios are measured on the whole (noisy) dataset, matching the paper's
    per-dataset bars; the GBABS number doubles as the SRS reference ratio.
    """
    cfg = cfg or active_config()
    noise_grid = (0.0,) + tuple(cfg.noise_ratios)
    ratios: dict[float, dict[str, np.ndarray]] = {}
    for noise in noise_grid:
        gbabs_r = []
        ggbs_r = []
        for code in cfg.datasets:
            x, y = dataset_with_noise(code, cfg, noise)
            gbabs_r.append(reference_gbabs_ratio(code, cfg, noise))
            ggbs = GGBS(random_state=cfg.random_state)
            ggbs.fit_resample(x, y)
            ggbs_r.append(ggbs.sampling_ratio(x.shape[0]))
        ratios[noise] = {
            "GBABS": np.asarray(gbabs_r),
            "GGBS": np.asarray(ggbs_r),
        }
    return {"datasets": list(cfg.datasets), "ratios": ratios, "profile": cfg.name}


def format_fig6(result: dict) -> str:
    sections = []
    for noise, series in result["ratios"].items():
        sections.append(f"Fig. 6 — sampling ratio at noise {int(noise * 100)}%")
        sections.append(bar_chart(result["datasets"], series, width=36))
        sections.append("")
    return "\n".join(sections)


def fig7_fig8(
    cfg: ExperimentConfig | None = None,
    table4_result: dict | None = None,
    n_jobs: int | None = 1,
) -> dict:
    """Figs. 7–8: accuracy distributions (ridge plots).

    Fig. 7: XGBoost at 10% / 30% noise; Fig. 8: RF at 20% / 40% noise —
    per-dataset accuracy vectors for the four pipelines of Table IV.
    """
    cfg = cfg or active_config()
    if table4_result is None:
        from repro.experiments.tables import table4

        table4_result = table4(cfg, n_jobs=n_jobs)
    panels = {}
    for fig, clf, noises in (
        ("fig7", "xgboost", (0.10, 0.30)),
        ("fig8", "rf", (0.20, 0.40)),
    ):
        for noise in noises:
            key = f"{fig}:{clf}@{int(noise * 100)}%"
            panels[key] = {
                method: table4_result["per_dataset"][(clf, method, noise)]
                for method in table4_result["methods"]
            }
    return {
        "panels": panels,
        "datasets": table4_result["datasets"],
        "profile": cfg.name,
    }


def format_fig7_fig8(result: dict) -> str:
    sections = []
    for key, series in result["panels"].items():
        sections.append(f"Figs. 7–8 — accuracy distribution {key}")
        sections.append(ridge(series, bins=28))
        sections.append("")
    return "\n".join(sections)


def fig9(cfg: ExperimentConfig | None = None, n_jobs: int | None = 1) -> dict:
    """Fig. 9: per-dataset rank of testing G-mean for eight samplers × DT.

    One rank matrix per noise ratio (0% plus the noise grid); rank 1 is the
    best method on that dataset.
    """
    cfg = cfg or active_config()
    noise_grid = (0.0,) + tuple(cfg.noise_ratios)
    prefetch_cells(cfg, fig9_specs(cfg), n_jobs)
    rank_matrices = {}
    gmeans = {}
    for noise in noise_grid:
        scores = {}
        for method in FIG9_METHODS:
            scores[method] = np.asarray(
                [
                    run_cell(
                        code, method, "dt", cfg,
                        noise_ratio=noise, metrics=("accuracy", "g_mean"),
                    ).means["g_mean"]
                    for code in cfg.datasets
                ]
            )
        gmeans[noise] = scores
        rank_matrices[noise] = rank_methods(scores, higher_is_better=True)
    # Friedman omnibus test + Nemenyi critical difference complement the
    # per-dataset ranks (Demšar-style analysis of the same comparison).
    friedman = {
        noise: friedman_test(scores) for noise, scores in gmeans.items()
    }
    cd = nemenyi_critical_difference(len(FIG9_METHODS), len(cfg.datasets))
    return {
        "datasets": list(cfg.datasets),
        "methods": list(FIG9_METHODS),
        "ranks": rank_matrices,
        "g_means": gmeans,
        "friedman": friedman,
        "nemenyi_cd": cd,
        "profile": cfg.name,
    }


def format_fig9(result: dict) -> str:
    sections = []
    for noise, ranks in result["ranks"].items():
        sections.append(f"Fig. 9 — G-mean ranks (DT) at noise {int(noise * 100)}%")
        matrix = np.vstack([ranks[m] for m in result["methods"]])
        sections.append(
            heatmap(
                [m.upper() for m in result["methods"]],
                result["datasets"],
                matrix,
            )
        )
        fr = result["friedman"][noise]
        sections.append(
            f"Friedman chi2={fr.statistic:.2f} p={fr.p_value:.4f}"
            f" ({'significant' if fr.significant() else 'n.s.'} at 0.05)"
        )
        sections.append("")
    sections.append(
        f"Nemenyi critical difference of average ranks: "
        f"{result['nemenyi_cd']:.2f}"
    )
    return "\n".join(sections)


def fig10_fig11(
    cfg: ExperimentConfig | None = None, n_jobs: int | None = 1
) -> dict:
    """Figs. 10–11: density tolerance ρ sweep.

    For every ρ in the grid: the GBABS sampling ratio on each clean dataset
    (Fig. 10) and the GBABS-DT testing accuracy (Fig. 11).
    """
    cfg = cfg or active_config()
    prefetch_cells(cfg, fig10_fig11_specs(cfg), n_jobs)
    ratio_curves = {code: [] for code in cfg.datasets}
    accuracy_curves = {code: [] for code in cfg.datasets}
    for rho in cfg.rho_grid:
        for code in cfg.datasets:
            x, y = dataset_with_noise(code, cfg, 0.0)
            sampler = GBABS(rho=rho, random_state=cfg.random_state)
            sampler.fit_resample(x, y)
            ratio_curves[code].append(sampler.report_.sampling_ratio)
            cell = run_cell(code, "gbabs", "dt", cfg, noise_ratio=0.0, rho=rho)
            accuracy_curves[code].append(cell.means["accuracy"])
    return {
        "rho_grid": list(cfg.rho_grid),
        "sampling_ratio": {c: np.asarray(v) for c, v in ratio_curves.items()},
        "accuracy": {c: np.asarray(v) for c, v in accuracy_curves.items()},
        "profile": cfg.name,
    }


def format_fig10_fig11(result: dict) -> str:
    rho = np.asarray(result["rho_grid"], dtype=np.float64)
    sections = [
        "Fig. 10 — sampling ratio vs density tolerance",
        line_chart(rho, result["sampling_ratio"], height=12),
        "",
        "Fig. 11 — GBABS-DT accuracy vs density tolerance",
        line_chart(rho, result["accuracy"], height=12),
        "",
        "numeric series (rows: dataset, cols: rho grid)",
    ]
    headers = ["Dataset"] + [str(int(r)) for r in rho]
    ratio_rows = [
        [code] + [float(v) for v in arr]
        for code, arr in result["sampling_ratio"].items()
    ]
    acc_rows = [
        [code] + [float(v) for v in arr] for code, arr in result["accuracy"].items()
    ]
    sections.append("sampling ratio:")
    sections.append(format_table(headers, ratio_rows, float_format="{:.3f}"))
    sections.append("accuracy:")
    sections.append(format_table(headers, acc_rows, float_format="{:.3f}"))
    return "\n".join(sections)
