"""Pluggable storage backends for the distributed cell store.

:class:`~repro.experiments.store.CellStore` persists content-keyed
results and coordinates a worker fleet through claim files with
heartbeat leases.  Until PR 5 every one of those operations was a raw
POSIX call (``open(O_EXCL)``, ``os.replace``, ``stat().st_mtime``), which
tied a fleet to machines sharing a network filesystem.  This module
extracts the storage contract into :class:`StoreBackend` so the same
claim/lease protocol runs over an S3-style object store, where

* exclusive claim creation (``O_CREAT | O_EXCL``) becomes a
  **conditional put** (create-if-absent, S3's ``If-None-Match: *``), and
* mtime heartbeats become **metadata timestamps** (every overwrite of an
  object refreshes its ``last_modified``).

Backends shipped here:

* :class:`LocalFSBackend` — the historical behaviour.  One directory,
  byte-identical file layout to the pre-backend store (existing stores
  resume without migration), atomic visibility via temp file +
  ``os.replace``.
* :class:`ObjectStoreBackend` — the claim/lease contract on top of any
  object-store *client* exposing ``get_object`` / ``put_object`` (with an
  ``if_none_match`` precondition) / ``head_object`` / ``delete_object`` /
  ``list_objects``.
* :class:`FakeObjectStore` — an in-repo client for tests and CI (no
  cloud credentials): a strongly consistent bucket with conditional
  puts, explicit ``last_modified`` metadata, an injectable clock, and
  injectable latency / lost-race conflict faults.  Two bucket drivers:
  :class:`MemoryBucket` (``mem://`` URLs, in-process) and
  :class:`DirectoryBucket` (``fakes3://`` URLs, a directory emulating a
  bucket so real worker *processes* can share it).
* :class:`Boto3ObjectStore` — a thin adapter binding the same client
  interface to a real S3 bucket when ``boto3`` is installed (``s3://``
  URLs).  It is import-gated: nothing in this repo requires boto3.

:func:`resolve_backend` maps a store *target* — a directory path or a
``file:// | mem:// | fakes3:// | s3://`` URL — onto a backend instance;
:class:`~repro.experiments.store.CellStore`, the worker CLI's
``--store-url`` and the coordinator all accept any of these forms.

**The contract** (pinned by the conformance suite in
``tests/experiments/test_store_backends.py``, which runs the same tests
against every backend):

1. ``put_atomic`` is all-or-nothing: a concurrent reader sees either the
   previous bytes or the new bytes, never a torn mix.
2. ``try_claim_exclusive`` has exactly one winner per name until the
   name is deleted — under any interleaving of processes or threads.
3. ``stamp_mtime`` advances the name's modification timestamp
   monotonically with the backend's clock (the lease heartbeat).
4. ``delete`` of a missing name is a no-op; ``get``/``mtime`` of a
   missing name return ``None`` (races against concurrent deletes must
   not raise).
5. ``list`` reflects completed writes only (no spool/temp artifacts).
6. ``list_page`` walks the same namespace as ``list`` in bounded pages:
   every name appears exactly once across a token walk started from
   ``None``, and the continuation token is opaque to callers.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path, PurePosixPath
from typing import Callable

__all__ = [
    "StoreBackend",
    "LocalFSBackend",
    "ObjectStoreBackend",
    "FakeObjectStore",
    "MemoryBucket",
    "DirectoryBucket",
    "Boto3ObjectStore",
    "resolve_backend",
    "memory_bucket",
]


class StoreBackend(abc.ABC):
    """Storage contract behind :class:`~repro.experiments.store.CellStore`.

    Names are flat strings (``cell-<digest>.npz``, ``plan-<digest>.plan``,
    ``cell-<digest>.claim`` …); the backend owns how they map onto files
    or objects.  See the module docstring for the five invariants every
    implementation must uphold.
    """

    #: Human-readable/reconstructable location, e.g. ``file:///x`` or
    #: ``mem://ci``.  Passing it back through :func:`resolve_backend`
    #: (in another process, for ``file``/``fakes3``) reaches the same
    #: storage.
    url: str

    @abc.abstractmethod
    def get(self, name: str) -> bytes | None:
        """Full payload of ``name``; ``None`` when absent (never torn)."""

    @abc.abstractmethod
    def put_atomic(self, name: str, data: bytes) -> None:
        """Write ``data`` with all-or-nothing visibility (create or replace)."""

    @abc.abstractmethod
    def exists(self, name: str) -> bool:
        """Cheap existence probe (no payload transfer)."""

    @abc.abstractmethod
    def delete(self, name: str) -> None:
        """Remove ``name``; silently succeed when it is already gone."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """Sorted names of every completed entry (no spool artifacts).

        ``prefix`` narrows the listing by name prefix — object stores
        filter server-side, so hot polling paths (manifest discovery)
        should always pass one rather than scan the whole store.
        """

    #: Default page size for :meth:`list_page` (mirrors S3's 1000-key
    #: ``MaxKeys`` ceiling).
    DEFAULT_PAGE_LIMIT = 1000

    def list_page(
        self, prefix: str = "", token: str | None = None,
        limit: int = DEFAULT_PAGE_LIMIT,
    ) -> tuple[list[str], str | None]:
        """One bounded page of :meth:`list`, with a continuation token.

        Returns ``(names, next_token)``: up to ``limit`` sorted names,
        plus an *opaque* token to pass back for the next page (``None``
        when the walk is complete).  Polling paths should prefer this
        over :meth:`list` so their cost per round trip stays bounded no
        matter how many entries have landed in the store.  This default
        pages over :meth:`list`; backends with a native paging primitive
        (``os.scandir``, ``list_objects_v2``'s ``MaxKeys``) override it.

        Entries created or deleted mid-walk may or may not appear — the
        same snapshot looseness real object-store listings have; callers
        already tolerate it (claims age by TTL, results are immutable).
        """
        names = self.list(prefix)
        if token is not None:
            names = [n for n in names if n > token]
        page = names[:limit]
        next_token = page[-1] if len(names) > len(page) else None
        return page, next_token

    @abc.abstractmethod
    def try_claim_exclusive(self, name: str, data: bytes) -> bool:
        """Create ``name`` only if absent; ``True`` iff this call created it.

        The distributed claim primitive: exactly one concurrent caller
        wins.  Filesystems implement it with ``O_CREAT | O_EXCL``, object
        stores with a conditional put (``If-None-Match: *``).
        """

    @abc.abstractmethod
    def stamp_mtime(self, name: str, data: bytes) -> None:
        """Rewrite ``name`` so its modification timestamp advances.

        The lease heartbeat.  Must stay atomic (readers never see a torn
        claim payload) and must work whether or not ``name`` exists.
        """

    @abc.abstractmethod
    def mtime(self, name: str) -> float | None:
        """Last-modification time of ``name`` in epoch seconds, or ``None``.

        The value leases age against: :class:`CellStore` compares it to
        its clock, so backend timestamps and the store clock must share
        an epoch (both fakes take the same injectable ``clock``).
        """

    def stray_spools(self) -> list[str]:
        """In-flight or orphaned write artifacts, if the backend has any.

        Atomic-per-key stores never strand spools; filesystem-based
        storage (the local backend, the directory-backed fake bucket)
        can leave one behind when a writer is SIGKILLed mid-write.
        These names are deliberately *excluded* from :meth:`list`
        (invariant 5) and surfaced here so :meth:`CellStore.reap_stale`
        can sweep the expired ones.  The returned names are valid
        arguments to :meth:`mtime`/:meth:`delete`.
        """
        return []


# ----------------------------------------------------------------------
# Shared filesystem primitives (used by the local backend and by the
# directory-backed fake bucket — one implementation of atomic publish
# and exclusive create, so a fix to either path cannot miss the other)
# ----------------------------------------------------------------------


def _atomic_write(root: Path, name: str, data: bytes,
                  spool_prefix: str, spool_suffix: str,
                  stamp: float | None = None) -> None:
    """Publish ``data`` as ``root/name`` via spool file + ``os.replace``.

    ``stamp`` (optional) sets the published file's mtime explicitly
    (the fake bucket's clock-driven ``last_modified`` metadata).
    """
    root.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=root, prefix=spool_prefix,
                               suffix=spool_suffix)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        if stamp is not None:
            os.utime(tmp, (stamp, stamp))
        os.replace(tmp, root / name)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


def _create_exclusive(path: Path, data: bytes,
                      stamp: float | None = None) -> bool:
    """``O_CREAT | O_EXCL`` create of ``path``; ``True`` iff we won.

    A crash between the create and the payload write leaves a zero-byte
    file; it has no owner to heartbeat it, so it ages out by mtime like
    any other orphan.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "wb") as handle:
        handle.write(data)
    if stamp is not None:
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass  # claimed but deleted already — the create still won
    return True


# ----------------------------------------------------------------------
# Local filesystem
# ----------------------------------------------------------------------


class LocalFSBackend(StoreBackend):
    """The historical POSIX store: one file per entry under ``root``.

    Layout is byte-identical to the pre-backend :class:`CellStore`, so
    stores written before this abstraction existed resume without any
    migration.  Atomicity comes from ``tempfile.mkstemp`` + ``os.replace``
    (same-directory rename), exclusive claims from ``O_CREAT | O_EXCL``,
    and timestamps from file mtimes — which is what makes this backend
    fleet-safe only on filesystems with coherent rename/mtime semantics
    (local disks, most NFS setups).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.url = f"file://{self.root}"

    def path(self, name: str) -> Path:
        """Filesystem location of ``name`` (local-backend extension)."""
        return self.root / name

    def get(self, name: str) -> bytes | None:
        try:
            return self.path(name).read_bytes()
        except OSError:
            return None

    def put_atomic(self, name: str, data: bytes) -> None:
        _atomic_write(self.root, name, data,
                      spool_prefix=Path(name).stem, spool_suffix=".tmp")

    def exists(self, name: str) -> bool:
        return self.path(name).exists()

    def delete(self, name: str) -> None:
        self.path(name).unlink(missing_ok=True)

    def _scan(self, prefix: str, token: str | None) -> list[str]:
        """Sorted entry names via one ``os.scandir`` sweep (no per-name
        ``stat``: the dirent's type field answers ``is_file``)."""
        if not self.root.exists():
            return []
        names = []
        with os.scandir(self.root) as entries:
            for entry in entries:
                name = entry.name
                if (entry.is_file() and not name.endswith(".tmp")
                        and name.startswith(prefix)
                        and (token is None or name > token)):
                    names.append(name)
        names.sort()
        return names

    def list(self, prefix: str = "") -> list[str]:
        return self._scan(prefix, token=None)

    def list_page(
        self, prefix: str = "", token: str | None = None,
        limit: int = StoreBackend.DEFAULT_PAGE_LIMIT,
    ) -> tuple[list[str], str | None]:
        names = self._scan(prefix, token)
        page = names[:limit]
        next_token = page[-1] if len(names) > len(page) else None
        return page, next_token

    def stray_spools(self) -> list[str]:
        if not self.root.exists():
            return []
        with os.scandir(self.root) as entries:
            return sorted(
                e.name for e in entries
                if e.is_file() and e.name.endswith(".tmp")
            )

    def try_claim_exclusive(self, name: str, data: bytes) -> bool:
        return _create_exclusive(self.path(name), data)

    def stamp_mtime(self, name: str, data: bytes) -> None:
        self.put_atomic(name, data)

    def mtime(self, name: str) -> float | None:
        try:
            return self.path(name).stat().st_mtime
        except OSError:
            return None


# ----------------------------------------------------------------------
# Fake object store (tests / CI — no cloud credentials required)
# ----------------------------------------------------------------------


class MemoryBucket:
    """In-process bucket: name -> (bytes, last_modified), lock-serialised.

    The mutating operations hold one lock, which models the strong
    consistency and atomic conditional writes of a real object store.
    """

    def __init__(self):
        self._objects: dict[str, tuple[bytes, float]] = {}
        self._lock = threading.Lock()

    def load(self, name: str) -> tuple[bytes, float] | None:
        with self._lock:
            return self._objects.get(name)

    def stat(self, name: str) -> tuple[int, float] | None:
        """(size, last_modified) without transferring the payload."""
        with self._lock:
            found = self._objects.get(name)
            return None if found is None else (len(found[0]), found[1])

    def save(self, name: str, data: bytes, stamp: float) -> None:
        with self._lock:
            self._objects[name] = (bytes(data), stamp)

    def save_if_absent(self, name: str, data: bytes, stamp: float) -> bool:
        with self._lock:
            if name in self._objects:
                return False
            self._objects[name] = (bytes(data), stamp)
            return True

    def remove(self, name: str) -> None:
        with self._lock:
            self._objects.pop(name, None)

    def names(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(n for n in self._objects if n.startswith(prefix))

    def stray_spools(self) -> list[str]:
        """Memory writes are atomic dict updates: no spools, ever."""
        return []


class DirectoryBucket:
    """Directory-backed bucket so *processes* can share one fake store.

    Each object is one file named exactly after its key; the
    ``last_modified`` metadata is materialised as the file's mtime,
    stamped explicitly with ``os.utime`` from the fake's clock.  Writes
    spool to hidden ``.spool-*`` files (excluded from :meth:`names`) and
    publish via ``os.replace``; conditional creation uses an exclusive
    create, which is this driver's *private* mechanism for providing the
    object-store API — the store layer above only ever sees conditional
    puts and metadata timestamps.
    """

    _SPOOL_PREFIX = ".spool-"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def load(self, name: str) -> tuple[bytes, float] | None:
        path = self.root / name
        try:
            data = path.read_bytes()
            return data, path.stat().st_mtime
        except OSError:
            return None

    def stat(self, name: str) -> tuple[int, float] | None:
        """(size, last_modified) from file metadata — no payload read."""
        try:
            meta = (self.root / name).stat()
        except OSError:
            return None
        return meta.st_size, meta.st_mtime

    def save(self, name: str, data: bytes, stamp: float) -> None:
        _atomic_write(self.root, name, data,
                      spool_prefix=self._SPOOL_PREFIX, spool_suffix="",
                      stamp=stamp)

    def save_if_absent(self, name: str, data: bytes, stamp: float) -> bool:
        return _create_exclusive(self.root / name, data, stamp=stamp)

    def remove(self, name: str) -> None:
        (self.root / name).unlink(missing_ok=True)

    def names(self, prefix: str = "") -> list[str]:
        if not self.root.exists():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_file() and not p.name.startswith(self._SPOOL_PREFIX)
            and p.name.startswith(prefix)
        )

    def stray_spools(self) -> list[str]:
        """Orphaned ``.spool-*`` files (writer died mid-save); the fake's
        reap path must be able to see and delete these."""
        if not self.root.exists():
            return []
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_file() and p.name.startswith(self._SPOOL_PREFIX)
        )


class FakeObjectStore:
    """S3-style client over a :class:`MemoryBucket` / :class:`DirectoryBucket`.

    Client API (the surface :class:`ObjectStoreBackend` consumes, shaped
    after S3 but provider-neutral):

    * ``get_object(key) -> bytes`` (``KeyError`` when absent)
    * ``put_object(key, data, if_none_match=False) -> bool`` — with
      ``if_none_match`` the put only succeeds when ``key`` does not
      exist (S3 ``If-None-Match: *``); returns ``False`` on the lost
      race instead of raising
    * ``head_object(key) -> {"last_modified", "size"} | None``
    * ``delete_object(key)`` — idempotent
    * ``list_objects(prefix="") -> list[str]``

    Fault injection (what makes this fake worth having in CI):

    * ``latency`` — seconds slept before every operation, modelling
      object-store round trips (shakes out code that assumed local-disk
      timing);
    * ``conflict_injector(key) -> bool`` — consulted on every
      *conditional* put; returning ``True`` makes the put report a lost
      race even though the key is absent, modelling a concurrent winner
      whose write this client hasn't observed yet;
    * ``error_injector(op, key) -> None`` — consulted at the start of
      **every** client operation (``op`` is the method name); raising
      models transport/service failure *before* the bucket is touched
      (throttles, resets, brownouts).  The declarative driver for this
      hook is :class:`~repro.experiments.resilience.FaultSchedule`,
      whose ``injector()`` plugs in here — and which worker
      subprocesses pick up automatically from a schedule file named by
      ``REPRO_STORE_FAULTS`` (see :func:`resolve_backend`);
    * ``clock`` — the time source for ``last_modified`` metadata, so
      lease-expiry tests advance time instead of sleeping;
    * ``page_size`` — hard cap on keys per ``list_objects_page`` reply,
      modelling a provider that truncates below the requested
      ``max_keys`` (real S3 may return fewer keys than asked for);
    * ``op_counts`` — a per-operation round-trip counter, so tests can
      assert a polling loop's *cost*, not just its answers.
    """

    def __init__(
        self,
        bucket=None,
        clock: Callable[[], float] = time.time,
        latency: float = 0.0,
        conflict_injector: Callable[[str], bool] | None = None,
        error_injector: Callable[[str, str], None] | None = None,
        page_size: int | None = None,
    ):
        self.bucket = bucket if bucket is not None else MemoryBucket()
        self.clock = clock
        self.latency = latency
        self.conflict_injector = conflict_injector
        self.error_injector = error_injector
        self.page_size = page_size
        #: op name -> number of simulated round trips performed.
        self.op_counts: Counter[str] = Counter()

    def _simulate_round_trip(self, op: str, key: str = "") -> None:
        self.op_counts[op] += 1
        if self.error_injector is not None:
            self.error_injector(op, key)
        if self.latency > 0:
            time.sleep(self.latency)

    def get_object(self, key: str) -> bytes:
        self._simulate_round_trip("get_object", key)
        found = self.bucket.load(key)
        if found is None:
            raise KeyError(key)
        return found[0]

    def put_object(self, key: str, data: bytes,
                   if_none_match: bool = False) -> bool:
        self._simulate_round_trip("put_object", key)
        if if_none_match:
            if self.conflict_injector is not None and self.conflict_injector(key):
                return False
            return self.bucket.save_if_absent(key, data, self.clock())
        self.bucket.save(key, data, self.clock())
        return True

    def head_object(self, key: str) -> dict | None:
        self._simulate_round_trip("head_object", key)
        # Metadata-only: exists()/mtime() probes run every worker poll
        # round, so this must never transfer the payload.
        found = self.bucket.stat(key)
        if found is None:
            return None
        size, stamp = found
        return {"last_modified": stamp, "size": size}

    def delete_object(self, key: str) -> None:
        self._simulate_round_trip("delete_object", key)
        self.bucket.remove(key)

    def list_objects(self, prefix: str = "") -> list[str]:
        self._simulate_round_trip("list_objects", prefix)
        return self.bucket.names(prefix)

    def list_objects_page(
        self, prefix: str = "", token: str | None = None,
        max_keys: int = 1000,
    ) -> tuple[list[str], str | None]:
        """One truncated listing page, S3-style.

        The continuation token is the last key of the previous page
        (opaque to callers); ``page_size`` — when set — caps the reply
        below ``max_keys``, modelling a provider that truncates harder
        than asked.
        """
        self._simulate_round_trip("list_objects_page", prefix)
        names = self.bucket.names(prefix)
        if token is not None:
            names = [n for n in names if n > token]
        limit = max(1, min(max_keys, self.page_size or max_keys))
        page = names[:limit]
        next_token = page[-1] if len(names) > len(page) else None
        return page, next_token

    def stray_spools(self) -> list[str]:
        """Orphaned write artifacts in the bucket (directory driver only).

        The analogue of S3's incomplete multipart uploads: invisible to
        listings, still occupying space, sweepable by a janitor."""
        return self.bucket.stray_spools()


# ----------------------------------------------------------------------
# Object-store backend (fake or boto3 — same client surface)
# ----------------------------------------------------------------------


class ObjectStoreBackend(StoreBackend):
    """The claim/lease storage contract on conditional-put semantics.

    The translation table from the POSIX store:

    ========================  =====================================
    filesystem primitive      object-store primitive
    ========================  =====================================
    ``open(O_CREAT|O_EXCL)``  ``put_object(..., if_none_match=True)``
    temp file + ``rename``    single ``put_object`` (atomic per key)
    mtime heartbeat           overwrite refreshes ``last_modified``
    ``stat().st_mtime``       ``head_object()["last_modified"]``
    ``unlink(missing_ok)``    idempotent ``delete_object``
    ========================  =====================================

    ``prefix`` namespaces every name inside the bucket (the ``/prefix``
    part of ``s3://bucket/prefix``), so many stores can share one bucket.
    """

    def __init__(self, client, url: str, prefix: str = ""):
        self.client = client
        self.url = url
        self.prefix = prefix.strip("/")

    def _key(self, name: str) -> str:
        return f"{self.prefix}/{name}" if self.prefix else name

    def get(self, name: str) -> bytes | None:
        try:
            return self.client.get_object(self._key(name))
        except KeyError:
            return None

    def put_atomic(self, name: str, data: bytes) -> None:
        self.client.put_object(self._key(name), data)

    def exists(self, name: str) -> bool:
        return self.client.head_object(self._key(name)) is not None

    def delete(self, name: str) -> None:
        self.client.delete_object(self._key(name))

    def list(self, prefix: str = "") -> list[str]:
        # A foreign key sharing the bucket (another application's object,
        # a partial prefix match like "grids/run-10/…" vs "grids/run-1")
        # must be filtered out, not blindly sliced into a mangled name.
        base = f"{self.prefix}/" if self.prefix else ""
        return sorted(
            key[len(base):] for key in self.client.list_objects(base + prefix)
            if key.startswith(base + prefix)
        )

    def list_page(
        self, prefix: str = "", token: str | None = None,
        limit: int = StoreBackend.DEFAULT_PAGE_LIMIT,
    ) -> tuple[list[str], str | None]:
        pager = getattr(self.client, "list_objects_page", None)
        if pager is None:
            # Clients without a native paging call (minimal adapters)
            # fall back to slicing the full listing.
            return super().list_page(prefix, token, limit)
        base = f"{self.prefix}/" if self.prefix else ""
        keys, next_token = pager(base + prefix, token, limit)
        names = sorted(
            key[len(base):] for key in keys
            if key.startswith(base + prefix)
        )
        return names, next_token

    def stray_spools(self) -> list[str]:
        """Orphaned write artifacts, when the client can surface them.

        Only meaningful for un-prefixed fake buckets (spools live at the
        bucket root, outside any key prefix); real S3 has no spools —
        its analogue, incomplete multipart uploads, belongs to bucket
        lifecycle policy, not this store."""
        spools = getattr(self.client, "stray_spools", None)
        if spools is None or self.prefix:
            return []
        return spools()

    def try_claim_exclusive(self, name: str, data: bytes) -> bool:
        return self.client.put_object(self._key(name), data,
                                      if_none_match=True)

    def stamp_mtime(self, name: str, data: bytes) -> None:
        self.client.put_object(self._key(name), data)

    def mtime(self, name: str) -> float | None:
        meta = self.client.head_object(self._key(name))
        return None if meta is None else meta["last_modified"]


class Boto3ObjectStore:
    """Real-S3 client with the :class:`FakeObjectStore` surface.

    Import-gated: constructing it without ``boto3`` installed raises a
    ``RuntimeError`` naming the missing dependency (this repo never
    requires boto3 — CI and tests run entirely on the fake).  Conditional
    puts use S3's ``If-None-Match: *`` precondition, so the claim
    protocol needs no lock service; note S3 timestamps have one-second
    resolution — pick ``lease_ttl`` well above 2 s.
    """

    def __init__(self, bucket: str, client=None):
        if client is None:
            try:
                import boto3
            except ImportError as exc:  # pragma: no cover - env without boto3
                raise RuntimeError(
                    "s3:// store URLs need the optional boto3 dependency "
                    "(pip install boto3), or pass an explicit client"
                ) from exc
            client = boto3.client("s3")  # pragma: no cover
        self.bucket = bucket
        self._s3 = client

    def _missing(self, exc) -> bool:
        code = getattr(exc, "response", {}).get("Error", {}).get("Code", "")
        return code in ("404", "NoSuchKey", "NotFound")

    def get_object(self, key: str) -> bytes:
        try:
            return self._s3.get_object(Bucket=self.bucket, Key=key)["Body"].read()
        except Exception as exc:
            if self._missing(exc):
                raise KeyError(key) from exc
            raise

    def put_object(self, key: str, data: bytes,
                   if_none_match: bool = False) -> bool:
        kwargs = {"Bucket": self.bucket, "Key": key, "Body": data}
        if if_none_match:
            kwargs["IfNoneMatch"] = "*"
        try:
            self._s3.put_object(**kwargs)
            return True
        except Exception as exc:
            code = getattr(exc, "response", {}).get("Error", {}).get("Code", "")
            if if_none_match and code in ("PreconditionFailed", "412",
                                          "ConditionalRequestConflict"):
                return False
            raise

    def head_object(self, key: str) -> dict | None:
        try:
            meta = self._s3.head_object(Bucket=self.bucket, Key=key)
        except Exception as exc:
            if self._missing(exc):
                return None
            raise
        return {
            "last_modified": meta["LastModified"].timestamp(),
            "size": meta["ContentLength"],
        }

    def delete_object(self, key: str) -> None:
        self._s3.delete_object(Bucket=self.bucket, Key=key)

    def list_objects_page(
        self, prefix: str = "", token: str | None = None,
        max_keys: int = 1000,
    ) -> tuple[list[str], str | None]:
        """One ``list_objects_v2`` call: ``MaxKeys`` bounds the reply,
        S3's own ``NextContinuationToken`` is the (opaque) token."""
        kwargs = {"Bucket": self.bucket, "Prefix": prefix,
                  "MaxKeys": int(max_keys)}
        if token:
            kwargs["ContinuationToken"] = token
        page = self._s3.list_objects_v2(**kwargs)
        keys = [item["Key"] for item in page.get("Contents", [])]
        next_token = (
            page.get("NextContinuationToken") if page.get("IsTruncated")
            else None
        )
        return keys, next_token

    def list_objects(self, prefix: str = "") -> list[str]:
        keys: list[str] = []
        token: str | None = None
        while True:
            page, token = self.list_objects_page(prefix, token)
            keys.extend(page)
            if token is None:
                return keys


# ----------------------------------------------------------------------
# URL resolution
# ----------------------------------------------------------------------

#: Named in-process buckets behind ``mem://<name>`` URLs: every resolve
#: of the same name (within one process) reaches the same bucket, so a
#: coordinator and in-process workers can share a store without a disk.
_MEMORY_BUCKETS: dict[str, MemoryBucket] = {}
_MEMORY_BUCKETS_LOCK = threading.Lock()


def memory_bucket(name: str) -> MemoryBucket:
    """The process-wide bucket behind ``mem://name`` (created on demand)."""
    with _MEMORY_BUCKETS_LOCK:
        bucket = _MEMORY_BUCKETS.get(name)
        if bucket is None:
            bucket = _MEMORY_BUCKETS[name] = MemoryBucket()
        return bucket


#: One stateful fault injector per schedule file per process, so the
#: schedule's fail-first-K counters span every backend this process
#: resolves (the semantics :class:`FaultSchedule` documents).
_FAULT_INJECTORS: dict[str, Callable[[str, str], None]] = {}


def _env_fault_injector() -> Callable[[str, str], None] | None:
    """The process-wide injector from ``REPRO_STORE_FAULTS``, if set."""
    from repro.experiments import resilience

    path = os.environ.get(resilience.FAULTS_ENV, "").strip()
    if not path:
        return None
    injector = _FAULT_INJECTORS.get(path)
    if injector is None:
        injector = resilience.FaultSchedule.load(path).injector()
        _FAULT_INJECTORS[path] = injector
    return injector


def _resilient(backend: StoreBackend, boto3: bool = False) -> StoreBackend:
    """Wrap an object-store backend in the retry/breaker layer.

    ``REPRO_STORE_RESILIENCE=off`` (or ``0``/``false``/``no``) returns
    the raw backend — the escape hatch for debugging whether the
    resilience layer itself is misbehaving.
    """
    from repro.experiments import resilience

    if os.environ.get(resilience.RESILIENCE_ENV, "").strip().lower() in (
        "off", "0", "false", "no",
    ):
        return backend
    classify = resilience.classify_boto3 if boto3 else resilience.classify_default
    return resilience.ResilientBackend(backend, classify=classify)


def resolve_backend(target) -> StoreBackend | None:
    """Map a store target onto a :class:`StoreBackend`.

    Accepted forms:

    * ``None`` → ``None`` (memory-only store, no coordination layer);
    * a :class:`StoreBackend` → returned as-is;
    * a path or ``file://PATH`` URL → :class:`LocalFSBackend`;
    * ``mem://NAME`` → object store over a process-wide named
      :class:`MemoryBucket` (tests, single-process demos);
    * ``fakes3://DIR`` → object store over a :class:`DirectoryBucket`
      (multi-process fleets without cloud credentials — CI's two-worker
      object-store smoke runs on this);
    * ``s3://BUCKET[/PREFIX]`` → :class:`Boto3ObjectStore` (needs the
      optional boto3 dependency).

    Every object-store form resolves wrapped in a
    :class:`~repro.experiments.resilience.ResilientBackend`
    (retry/backoff/circuit-breaker; ``s3://`` classifies errors via the
    boto3 mapping) unless ``REPRO_STORE_RESILIENCE=off``.  The local
    filesystem backend stays raw — its error behaviour is part of the
    historical layout contract — though wrapping one explicitly works.
    When ``REPRO_STORE_FAULTS`` names a
    :class:`~repro.experiments.resilience.FaultSchedule` JSON file, the
    fake stores (``mem`` / ``fakes3``) resolve with that schedule's
    error injector attached — the seam the chaos suites and the CI
    ``chaos-smoke`` job use to brown out real worker subprocesses.

    Unknown URL schemes raise ``ValueError`` rather than silently being
    treated as relative directories.
    """
    if target is None:
        return None
    if isinstance(target, StoreBackend):
        return target
    if isinstance(target, os.PathLike):
        return LocalFSBackend(target)
    text = str(target)
    if "://" not in text:
        return LocalFSBackend(text)
    scheme, rest = text.split("://", 1)
    scheme = scheme.lower()
    if scheme == "file":
        return LocalFSBackend(rest)
    if scheme == "mem":
        name = rest.strip("/") or "default"
        return _resilient(ObjectStoreBackend(
            FakeObjectStore(memory_bucket(name),
                            error_injector=_env_fault_injector()),
            url=f"mem://{name}",
        ))
    if scheme == "fakes3":
        root = Path(rest)
        return _resilient(ObjectStoreBackend(
            FakeObjectStore(DirectoryBucket(root),
                            error_injector=_env_fault_injector()),
            url=f"fakes3://{root}",
        ))
    if scheme == "s3":
        bucket, _, prefix = rest.partition("/")
        if not bucket:
            raise ValueError(f"s3 URL needs a bucket: {text!r}")
        return _resilient(ObjectStoreBackend(
            Boto3ObjectStore(bucket), url=text, prefix=prefix
        ), boto3=True)
    raise ValueError(
        f"unknown store URL scheme {scheme!r} in {text!r}; "
        "use file://, mem://, fakes3:// or s3://"
    )


def entry_paths(backend: StoreBackend | None, names) -> list:
    """Present entry names as path-like values for diagnostics.

    Local backends yield real :class:`pathlib.Path` objects (tests
    manipulate them directly); object backends yield
    :class:`~pathlib.PurePosixPath` so callers can still use ``.name`` /
    ``.suffix`` without implying filesystem access.
    """
    if isinstance(backend, LocalFSBackend):
        return [backend.path(n) for n in names]
    return [PurePosixPath(n) for n in names]
