"""Ablation studies for the design choices the paper motivates.

A1 — the non-overlap constraint (conflict radius clipping, §IV-B2): the
paper argues GB overlap blurs or shrinks class boundaries.  We generate
balls with and without the constraint and compare overlap depth, ball count
and downstream GBABS-DT accuracy.

A2 — the noise-detection rules (§IV-B1): the paper credits them for the
robustness at high class-noise ratios.  We compare GBABS with and without
noise removal at a fixed noise level.

A3 — borderline-only sampling (§IV-C): the paper contrasts GBABS with
GGBS's sample-every-ball strategy.  We compare borderline-only selection
against the ``sample_all_balls`` variant on the same RD-GBG balls.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import DecisionTreeClassifier
from repro.core.gbabs import GBABS
from repro.core.rdgbg import RDGBG
from repro.evaluation.cross_validation import evaluate_pipeline
from repro.experiments.config import ExperimentConfig, active_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import dataset_with_noise

__all__ = [
    "ablation_overlap",
    "ablation_noise_detection",
    "ablation_borderline",
    "format_ablation",
]


class _DTFactory:
    """Picklable ``factory(seed) -> DecisionTreeClassifier`` (unseeded)."""

    def __call__(self, seed: int):
        return DecisionTreeClassifier()


class _GBABSFactory:
    """Picklable ``factory(seed) -> GBABS`` carrying the ablation switches."""

    def __init__(self, **gbabs_kwargs):
        self.gbabs_kwargs = gbabs_kwargs

    def __call__(self, seed: int):
        return GBABS(random_state=seed, **self.gbabs_kwargs)


def _gbabs_dt_accuracy(
    x: np.ndarray,
    y: np.ndarray,
    cfg: ExperimentConfig,
    n_jobs: int | None = 1,
    **gbabs_kwargs,
) -> float:
    """CV accuracy of a DT trained on a configurable GBABS variant."""
    result = evaluate_pipeline(
        x,
        y,
        classifier_factory=_DTFactory(),
        sampler_factory=_GBABSFactory(**gbabs_kwargs),
        n_splits=cfg.n_splits,
        n_repeats=cfg.n_repeats,
        random_state=cfg.random_state,
        n_jobs=n_jobs,
    )
    return result.means["accuracy"]


def ablation_overlap(
    cfg: ExperimentConfig | None = None, n_jobs: int | None = 1
) -> dict:
    """A1: RD-GBG with vs without the conflict-radius constraint."""
    cfg = cfg or active_config()
    rows = []
    for code in cfg.datasets:
        x, y = dataset_with_noise(code, cfg, 0.0)
        row = {"dataset": code}
        for label, enforce in (("no_overlap", True), ("overlap_allowed", False)):
            gen = RDGBG(
                rho=cfg.rho,
                random_state=cfg.random_state,
                enforce_no_overlap=enforce,
            )
            result = gen.generate(x, y)
            row[f"{label}_balls"] = len(result.ball_set)
            row[f"{label}_max_overlap"] = result.ball_set.max_overlap()
            row[f"{label}_accuracy"] = _gbabs_dt_accuracy(
                x, y, cfg, n_jobs=n_jobs,
                generator=RDGBG(
                    rho=cfg.rho,
                    random_state=cfg.random_state,
                    enforce_no_overlap=enforce,
                ),
            )
        rows.append(row)
    return {"rows": rows, "ablation": "A1-overlap", "profile": cfg.name}


def ablation_noise_detection(
    cfg: ExperimentConfig | None = None,
    noise_ratio: float = 0.2,
    n_jobs: int | None = 1,
) -> dict:
    """A2: noise-detection rules on vs off, at ``noise_ratio`` label noise."""
    cfg = cfg or active_config()
    rows = []
    for code in cfg.datasets:
        x, y = dataset_with_noise(code, cfg, noise_ratio)
        row = {"dataset": code, "noise_ratio": noise_ratio}
        for label, detect in (("detect", True), ("no_detect", False)):
            sampler = GBABS(
                generator=RDGBG(
                    rho=cfg.rho,
                    random_state=cfg.random_state,
                    detect_noise=detect,
                )
            )
            sampler.fit_resample(x, y)
            row[f"{label}_ratio"] = sampler.report_.sampling_ratio
            row[f"{label}_noise_removed"] = sampler.report_.n_noise_removed
            row[f"{label}_accuracy"] = _gbabs_dt_accuracy(
                x, y, cfg, n_jobs=n_jobs,
                generator=RDGBG(
                    rho=cfg.rho,
                    random_state=cfg.random_state,
                    detect_noise=detect,
                ),
            )
        rows.append(row)
    return {
        "rows": rows,
        "ablation": "A2-noise-detection",
        "noise_ratio": noise_ratio,
        "profile": cfg.name,
    }


def ablation_borderline(
    cfg: ExperimentConfig | None = None, n_jobs: int | None = 1
) -> dict:
    """A3: borderline-only sampling vs sampling every ball's extremes."""
    cfg = cfg or active_config()
    rows = []
    for code in cfg.datasets:
        x, y = dataset_with_noise(code, cfg, 0.0)
        row = {"dataset": code}
        for label, sample_all in (("borderline", False), ("all_balls", True)):
            sampler = GBABS(
                rho=cfg.rho,
                random_state=cfg.random_state,
                sample_all_balls=sample_all,
            )
            sampler.fit_resample(x, y)
            row[f"{label}_ratio"] = sampler.report_.sampling_ratio
            row[f"{label}_accuracy"] = _gbabs_dt_accuracy(
                x, y, cfg, n_jobs=n_jobs, rho=cfg.rho, sample_all_balls=sample_all
            )
        rows.append(row)
    return {"rows": rows, "ablation": "A3-borderline", "profile": cfg.name}


def format_ablation(result: dict) -> str:
    rows = result["rows"]
    if not rows:
        return f"{result['ablation']}: no datasets configured"
    headers = list(rows[0].keys())
    body = [[row[h] for h in headers] for row in rows]
    title = f"Ablation {result['ablation']} (profile: {result['profile']})"
    return title + "\n" + format_table(headers, body, float_format="{:.4f}")
