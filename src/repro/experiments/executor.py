"""Parallel experiment engine: fan a CV cell grid over worker processes.

The paper's protocol multiplies out to hundreds of cross-validation
*cells* — (dataset, noise, sampler, classifier, rho) combinations — each
holding ``n_splits × n_repeats`` independent folds.  The
:class:`ExperimentExecutor` turns that grid into a flat stream of fold
tasks and fans the stream over one shared ``ProcessPoolExecutor``, so all
cores stay busy even while one cell's last stragglers finish.  (Cell
*payload* resolution — dataset generation, SRS reference ratios — is
currently a serial prefix in the parent; see the ROADMAP open item.)

Guarantees:

* **Bit-identical results.**  Every fold's seed comes from the pure
  :func:`~repro.evaluation.cross_validation.plan_folds` derivation and the
  per-fold computation is the same :func:`run_fold` the serial path uses;
  fold results are re-assembled in plan order, so a parallel run's
  :class:`CVResult` equals the serial one float for float.
* **Incremental durability.**  Finished cells are written to the
  :class:`~repro.experiments.store.CellStore` as soon as their last fold
  returns (cell-major task ordering makes cells complete roughly in
  sequence), so a killed run resumes from the persistent store instead of
  recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.cross_validation import (
    CVResult,
    collect_cv_result,
    plan_folds,
    resolve_n_jobs,
    run_fold,
    run_folds_pooled,
    splits_for_plan,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.store import CellStore

__all__ = ["CellSpec", "ExperimentExecutor", "prefetch_cells"]


@dataclass(frozen=True)
class CellSpec:
    """One cell of the experiment grid (the non-config coordinates)."""

    code: str
    method: str
    classifier: str
    noise_ratio: float = 0.0
    metrics: tuple[str, ...] = ("accuracy",)
    rho: int | None = None


class ExperimentExecutor:
    """Executes batches of experiment cells, cached and optionally parallel.

    Parameters
    ----------
    cfg:
        The experiment profile (CV protocol, sizes, master seed).
    n_jobs:
        Worker processes (``1`` = serial in-process, ``None``/``0`` = all
        cores).  Any value yields bit-identical results.
    store:
        Result store consulted before and updated after computing; defaults
        to the process-wide store.
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        n_jobs: int | None = 1,
        store: CellStore | None = None,
    ):
        from repro.experiments import runner

        self.cfg = cfg
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.store = store if store is not None else runner.get_store()

    # -- public API ----------------------------------------------------

    def run(self, specs: list[CellSpec]) -> list[CVResult]:
        """Evaluate every cell (store hits are free), preserving spec order."""
        from repro.experiments import runner

        keys = [
            runner.cell_key(
                s.code,
                s.method,
                s.classifier,
                self.cfg,
                noise_ratio=s.noise_ratio,
                metrics=s.metrics,
                rho=s.rho,
            )
            for s in specs
        ]
        results: dict[str, CVResult] = {}
        missing: set[str] = set()
        misses: list[tuple[str, CellSpec]] = []
        for key, spec in zip(keys, specs):
            if key in results or key in missing:
                continue
            cached = self.store.get("cell", key)
            if cached is not None:
                results[key] = cached
            else:
                missing.add(key)
                misses.append((key, spec))

        if misses:
            if self.n_jobs > 1:
                results.update(self._run_parallel(misses))
            else:
                results.update(self._run_serial(misses))
        return [results[key] for key in keys]

    # -- execution strategies ------------------------------------------

    def _payload(self, spec: CellSpec):
        """Resolve one cell into (x, y, splits, factories, metrics).

        Mirrors ``evaluate_pipeline`` exactly: same float64 cast, same
        per-repetition split seeds.
        """
        from repro.experiments import runner

        x, y = runner.dataset_with_noise(spec.code, self.cfg, spec.noise_ratio)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        plan = plan_folds(self.cfg.n_splits, self.cfg.n_repeats, self.cfg.random_state)
        splits = splits_for_plan(y, self.cfg.n_splits, plan)
        sampler_factory = runner.sampler_factory_for(
            spec.method, spec.code, self.cfg, spec.noise_ratio, rho=spec.rho
        )
        classifier_factory = runner.classifier_factory_for(spec.classifier, self.cfg)
        return (x, y, splits, classifier_factory, sampler_factory, spec.metrics), plan

    def _finish(self, key: str, spec: CellSpec, fold_results) -> CVResult:
        result = collect_cv_result(
            list(fold_results),
            spec.metrics,
            self.cfg.n_splits * self.cfg.n_repeats,
        )
        self.store.put("cell", key, result)
        return result

    def _run_serial(self, misses) -> dict[str, CVResult]:
        done: dict[str, CVResult] = {}
        for key, spec in misses:
            (x, y, splits, clf_f, smp_f, metrics), plan = self._payload(spec)
            fold_results = [
                run_fold(
                    x,
                    y,
                    splits[p.index][0],
                    splits[p.index][1],
                    clf_f,
                    smp_f,
                    p.fold_seed,
                    metrics,
                )
                for p in plan
            ]
            done[key] = self._finish(key, spec, fold_results)
        return done

    def _run_parallel(self, misses) -> dict[str, CVResult]:
        payloads = []
        tasks: list[tuple[int, int, int]] = []
        folds_per_cell = None
        for cell_index, (_, spec) in enumerate(misses):
            payload, plan = self._payload(spec)
            payloads.append(payload)
            folds_per_cell = len(plan)
            tasks.extend((cell_index, p.index, p.fold_seed) for p in plan)

        # run_folds_pooled yields in submission (= plan) order; flush each
        # cell to the store the moment its last fold arrives so interrupted
        # runs keep every completed cell.
        done: dict[str, CVResult] = {}
        buffer: list = []
        cell_cursor = 0
        for fold_result in run_folds_pooled(payloads, tasks, self.n_jobs):
            buffer.append(fold_result)
            if len(buffer) == folds_per_cell:
                key, spec = misses[cell_cursor]
                done[key] = self._finish(key, spec, buffer)
                buffer = []
                cell_cursor += 1
        return done


def prefetch_cells(
    cfg: ExperimentConfig,
    specs: list[CellSpec],
    n_jobs: int | None,
) -> None:
    """Warm the store for a batch of cells (no-op when ``n_jobs`` is serial).

    Tables and figures call this before their serial assembly loops: the
    loops then hit the store's memory layer, so existing reporting code
    stays untouched while the actual computation saturates the machine.
    """
    if resolve_n_jobs(n_jobs) <= 1 or not specs:
        return
    ExperimentExecutor(cfg, n_jobs=n_jobs).run(specs)
