"""Parallel experiment engine: fan a CV cell grid over worker processes.

The paper's protocol multiplies out to hundreds of cross-validation
*cells* — (dataset, noise, sampler, classifier, rho) combinations — each
holding ``n_splits × n_repeats`` independent folds.  The
:class:`ExperimentExecutor` turns that grid into a flat stream of tasks
and fans the stream over one shared ``ProcessPoolExecutor``.

Cold runs use a **dependency-aware scheduler** over two task kinds:

* **payload tasks** resolve a cell's inputs in the pool — dataset
  generation (:func:`~repro.experiments.runner.resolve_dataset_task`) and
  GBABS reference ratios (:func:`~repro.experiments.runner.resolve_ratio_task`)
  — so the parent never granulates and cores are busy from the first
  second; resolved values flush through the
  :class:`~repro.experiments.store.CellStore` exactly as the serial path
  would write them;
* **fold tasks** dispatch per cell the moment the cell's payload lands
  (no global barrier between the phases).

Data movement is zero-copy: each unique ``(x, y, splits)`` block is
published once to the :class:`~repro.experiments.data_plane.SharedArrayPlane`
and workers attach read-only views, so task tuples stay index-sized and
per-worker shipped bytes are O(unique datasets), not O(cells × workers).

Guarantees:

* **Bit-identical results.**  Every fold's seed comes from the pure
  :func:`~repro.evaluation.cross_validation.plan_folds` derivation, the
  per-fold computation is the same :func:`run_fold` the serial path uses
  and fold results are re-assembled in plan order, so a parallel run's
  :class:`CVResult` equals the serial one float for float — for any
  worker count and any task completion interleaving.
* **Incremental durability.**  Finished cells are written to the store
  as soon as their last fold returns, so a killed run resumes from the
  persistent store instead of recomputing.
* **No shared-memory leaks.**  The plane is context-managed (plus an
  ``atexit`` net), so segments are unlinked on normal exit, worker
  crashes and ``KeyboardInterrupt``.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

import numpy as np

from repro.evaluation.cross_validation import (
    CVResult,
    collect_cv_result,
    plan_folds,
    resolve_n_jobs,
    run_fold,
    splits_for_plan,
    _pool_fold_task,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.store import CellStore

__all__ = ["CellSpec", "ExperimentExecutor", "cell_key_for", "prefetch_cells"]


@dataclass(frozen=True)
class CellSpec:
    """One cell of the experiment grid (the non-config coordinates).

    Hashable, picklable and JSON-roundtrippable (see
    :mod:`repro.experiments.dispatch`), because a spec is shipped to
    pool workers, deduplicated in sets and serialised into distributed
    work manifests.  ``rho=None`` means "the profile's rho" — note that
    a ``rho=None`` spec and an explicit ``rho=cfg.rho`` spec are
    *different specs naming the same cell key*.
    """

    code: str
    method: str
    classifier: str
    noise_ratio: float = 0.0
    metrics: tuple[str, ...] = ("accuracy",)
    rho: int | None = None


def cell_key_for(cfg: ExperimentConfig, spec: CellSpec) -> str:
    """Store key of one cell — the identity shared by the executor, the
    distributed dispatcher and the worker loop (all three must agree on
    what one unit of work *is*)."""
    from repro.experiments import runner

    return runner.cell_key(
        spec.code,
        spec.method,
        spec.classifier,
        cfg,
        noise_ratio=spec.noise_ratio,
        metrics=spec.metrics,
        rho=spec.rho,
    )


class _CellState:
    """Parent-side bookkeeping for one in-flight cell."""

    __slots__ = (
        "key", "spec", "block_id", "needs_ratio", "classifier_factory",
        "sampler_factory", "results", "remaining",
    )

    def __init__(self, key, spec, block_id, needs_ratio, classifier_factory,
                 sampler_factory, n_folds):
        self.key = key
        self.spec = spec
        self.block_id = block_id
        self.needs_ratio = needs_ratio
        self.classifier_factory = classifier_factory
        self.sampler_factory = sampler_factory
        self.results = [None] * n_folds
        self.remaining = n_folds


class ExperimentExecutor:
    """Executes batches of experiment cells, cached and optionally parallel.

    Parameters
    ----------
    cfg:
        The experiment profile (CV protocol, sizes, master seed).
    n_jobs:
        Worker processes (``1`` = serial in-process, ``None``/``0`` = all
        cores).  Any value yields bit-identical results.
    store:
        Result store consulted before and updated after computing; defaults
        to the process-wide store.

    After :meth:`run`, :attr:`last_stats` holds the phase breakdown of the
    pass that computed missing cells: worker seconds spent on payload
    resolution vs folds, plane bytes published, pickled task bytes and
    task counts (all zero-filled for pure store hits).
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        n_jobs: int | None = 1,
        store: CellStore | None = None,
    ):
        from repro.experiments import runner

        self.cfg = cfg
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.store = store if store is not None else runner.get_store()
        self.last_stats: dict | None = None
        # Test seams: _pool_factory builds the worker pool (defaults to a
        # ProcessPoolExecutor), _completion_order permutes the order
        # completed futures are processed in (parity must hold for any).
        self._pool_factory = None
        self._completion_order = None

    # -- public API ----------------------------------------------------

    def key_for(self, spec: CellSpec) -> str:
        """Store key of ``spec`` under this executor's config."""
        return cell_key_for(self.cfg, spec)

    def run(self, specs: list[CellSpec]) -> list[CVResult]:
        """Evaluate every cell (store hits are free), preserving spec order.

        Contract: the returned list is positionally aligned with
        ``specs`` (duplicates included); results are bit-identical to a
        serial evaluation regardless of ``n_jobs``; and every freshly
        computed cell has been flushed through the store *before* this
        returns — an interruption mid-batch loses only in-flight cells.
        The executor never deletes store entries; it only reads and
        (idempotently) writes them.
        """
        keys = [self.key_for(s) for s in specs]
        results: dict[str, CVResult] = {}
        missing: set[str] = set()
        misses: list[tuple[str, CellSpec]] = []
        for key, spec in zip(keys, specs):
            if key in results or key in missing:
                continue
            cached = self.store.get("cell", key)
            if cached is not None:
                results[key] = cached
            else:
                missing.add(key)
                misses.append((key, spec))

        self.last_stats = self._fresh_stats()
        if misses:
            if self.n_jobs > 1:
                results.update(self._run_parallel(misses))
            else:
                results.update(self._run_serial(misses))
        return [results[key] for key in keys]

    # -- execution strategies ------------------------------------------

    @staticmethod
    def _fresh_stats() -> dict:
        return {
            "payload_seconds": 0.0,
            "fold_seconds": 0.0,
            "plane_bytes": 0,
            "task_bytes": 0,
            "n_blocks": 0,
            "n_data_tasks": 0,
            "n_ratio_tasks": 0,
            "n_fold_tasks": 0,
        }

    def _payload(self, spec: CellSpec):
        """Resolve one cell into (x, y, splits, factories, metrics).

        Mirrors ``evaluate_pipeline`` exactly: same float64 cast, same
        per-repetition split seeds.
        """
        from repro.experiments import runner

        x, y = runner.dataset_with_noise(spec.code, self.cfg, spec.noise_ratio)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        plan = plan_folds(self.cfg.n_splits, self.cfg.n_repeats, self.cfg.random_state)
        splits = splits_for_plan(y, self.cfg.n_splits, plan)
        sampler_factory = runner.sampler_factory_for(
            spec.method, spec.code, self.cfg, spec.noise_ratio, rho=spec.rho
        )
        classifier_factory = runner.classifier_factory_for(spec.classifier, self.cfg)
        return (x, y, splits, classifier_factory, sampler_factory, spec.metrics), plan

    def _finish(self, key: str, spec: CellSpec, fold_results) -> CVResult:
        result = collect_cv_result(
            list(fold_results),
            spec.metrics,
            self.cfg.n_splits * self.cfg.n_repeats,
        )
        self.store.put("cell", key, result)
        return result

    def _run_serial(self, misses) -> dict[str, CVResult]:
        stats = self.last_stats
        done: dict[str, CVResult] = {}
        for key, spec in misses:
            start = time.perf_counter()
            (x, y, splits, clf_f, smp_f, metrics), plan = self._payload(spec)
            stats["payload_seconds"] += time.perf_counter() - start
            start = time.perf_counter()
            fold_results = [
                run_fold(
                    x,
                    y,
                    splits[p.index][0],
                    splits[p.index][1],
                    clf_f,
                    smp_f,
                    p.fold_seed,
                    metrics,
                )
                for p in plan
            ]
            stats["fold_seconds"] += time.perf_counter() - start
            done[key] = self._finish(key, spec, fold_results)
        return done

    # -- dependency-aware pooled scheduler -----------------------------

    def _make_pool(self, max_workers: int):
        if self._pool_factory is not None:
            return self._pool_factory(max_workers)
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=max_workers)

    def _run_parallel(self, misses) -> dict[str, CVResult]:
        from concurrent.futures import FIRST_COMPLETED, wait

        from repro.experiments import runner
        from repro.experiments.data_plane import SharedArrayPlane, publish_cv_block

        cfg = self.cfg
        stats = self.last_stats
        plan = plan_folds(cfg.n_splits, cfg.n_repeats, cfg.random_state)
        n_folds = len(plan)

        # Dependency graph.  Block id = one unique (dataset, noise)
        # variant; srs cells additionally wait on that block's GBABS
        # reference ratio (always at cfg.rho, like the serial path).
        cells: list[_CellState] = []
        blocks: dict[tuple, dict] = {}
        ratios: dict[tuple, dict] = {}
        for key, spec in misses:
            block_id = (spec.code, round(spec.noise_ratio, 4))
            blocks.setdefault(
                block_id,
                {"meta": None, "cells": [], "ratio_waiting": False,
                 "code": spec.code, "noise": spec.noise_ratio},
            )
            needs_ratio = spec.method.lower() == "srs"
            sampler_factory = None
            if not needs_ratio:
                sampler_factory = runner.sampler_factory_for(
                    spec.method, spec.code, cfg, spec.noise_ratio, rho=spec.rho
                )
            classifier_factory = runner.classifier_factory_for(spec.classifier, cfg)
            state = _CellState(key, spec, block_id, needs_ratio,
                               classifier_factory, sampler_factory, n_folds)
            cells.append(state)
            if needs_ratio:
                ratios.setdefault(block_id, {"value": None})

        done: dict[str, CVResult] = {}
        futures: dict = {}
        sequence: dict = {}
        counter = 0

        with SharedArrayPlane() as plane, self._make_pool(self.n_jobs) as pool:

            def submit(fn, args, tag, account=True):
                nonlocal counter
                future = pool.submit(fn, *args)
                futures[future] = tag
                sequence[future] = counter
                counter += 1
                if account:
                    stats["task_bytes"] += len(pickle.dumps(args))
                return future

            def publish_block(block_id, x, y):
                block = blocks[block_id]
                splits = splits_for_plan(np.asarray(y), cfg.n_splits, plan)
                block["meta"] = publish_cv_block(plane, block_id, x, y, splits)
                stats["n_blocks"] += 1
                if block["ratio_waiting"]:
                    block["ratio_waiting"] = False
                    submit(
                        runner.resolve_ratio_task,
                        (block["meta"], cfg.rho, cfg.random_state),
                        ("ratio", block_id),
                    )
                    stats["n_ratio_tasks"] += 1
                for cell in block["cells"]:
                    if not cell.needs_ratio or ratios[block_id]["value"] is not None:
                        dispatch_folds(cell)

            def dispatch_folds(cell: _CellState):
                if cell.needs_ratio and cell.sampler_factory is None:
                    from repro.experiments.runner import SamplerSpec

                    cell.sampler_factory = SamplerSpec(
                        "srs", params=(("ratio", ratios[cell.block_id]["value"]),)
                    )
                meta = blocks[cell.block_id]["meta"]
                for p in plan:
                    task = (meta, p.index, p.fold_seed, cell.classifier_factory,
                            cell.sampler_factory, cell.spec.metrics)
                    submit(_pool_fold_task, (task,), ("fold", cell, p.index),
                           account=False)
                # A cell's fold tasks differ only in two small ints, so one
                # representative pickle accounts for all of them instead of
                # re-serialising every task on the dispatch hot path.
                stats["task_bytes"] += len(pickle.dumps((task,))) * n_folds
                stats["n_fold_tasks"] += n_folds

            # Initial dispatch: publish store-hit blocks, queue the rest;
            # ratio tasks go out as soon as their block is available.
            for block_id, block in blocks.items():
                for cell in cells:
                    if cell.block_id == block_id:
                        block["cells"].append(cell)
                if block_id in ratios:
                    cached = self.store.get(
                        "ratio", runner.gbabs_ratio_key(block["code"], cfg,
                                                        block["noise"])
                    )
                    if cached is not None:
                        ratios[block_id]["value"] = cached
                    else:
                        block["ratio_waiting"] = True
                cached_xy = self.store.get(
                    "data", runner.dataset_key(block["code"], cfg, block["noise"])
                )
                if cached_xy is not None:
                    publish_block(block_id, *cached_xy)
                else:
                    submit(
                        runner.resolve_dataset_task,
                        (block["code"], cfg.size_factor, cfg.random_state,
                         block["noise"]),
                        ("data", block_id),
                    )
                    stats["n_data_tasks"] += 1

            while futures:
                completed, _pending = wait(
                    list(futures), return_when=FIRST_COMPLETED
                )
                ordered = sorted(completed, key=sequence.__getitem__)
                if self._completion_order is not None:
                    ordered = self._completion_order(ordered)
                for future in ordered:
                    kind, *info = futures.pop(future)
                    sequence.pop(future)
                    payload = future.result()
                    if kind == "data":
                        (block_id,) = info
                        (x, y), seconds = payload
                        stats["payload_seconds"] += seconds
                        block = blocks[block_id]
                        self.store.put(
                            "data",
                            runner.dataset_key(block["code"], cfg, block["noise"]),
                            (x, y),
                            persist=False,
                        )
                        publish_block(block_id, x, y)
                    elif kind == "ratio":
                        (block_id,) = info
                        value, seconds = payload
                        stats["payload_seconds"] += seconds
                        block = blocks[block_id]
                        self.store.put(
                            "ratio",
                            runner.gbabs_ratio_key(block["code"], cfg,
                                                   block["noise"]),
                            value,
                        )
                        ratios[block_id]["value"] = value
                        for cell in block["cells"]:
                            if cell.needs_ratio:
                                dispatch_folds(cell)
                    else:  # fold
                        cell, fold_index = info
                        fold_result, seconds = payload
                        stats["fold_seconds"] += seconds
                        cell.results[fold_index] = fold_result
                        cell.remaining -= 1
                        if cell.remaining == 0:
                            done[cell.key] = self._finish(
                                cell.key, cell.spec, cell.results
                            )
            stats["plane_bytes"] = plane.total_bytes
        return done


def prefetch_cells(
    cfg: ExperimentConfig,
    specs: list[CellSpec],
    n_jobs: int | None,
) -> None:
    """Warm the store for a batch of cells (no-op when ``n_jobs`` is serial).

    Tables and figures call this before their serial assembly loops: the
    loops then hit the store's memory layer, so existing reporting code
    stays untouched while the actual computation saturates the machine.
    """
    if resolve_n_jobs(n_jobs) <= 1 or not specs:
        return
    ExperimentExecutor(cfg, n_jobs=n_jobs).run(specs)
