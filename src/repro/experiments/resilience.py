"""Fault-tolerant store I/O: retry, backoff, circuit breaker, fault taxonomy.

Until this layer existed, the experiment path assumed a perfect store:
one transient ``OSError`` or S3 throttle anywhere in ``get`` /
``put_atomic`` / ``refresh_claim`` killed a worker outright, and a
browning-out bucket could take a whole fleet down with it.  This module
sits **between** :class:`~repro.experiments.store.CellStore` and the
:class:`~repro.experiments.backends.StoreBackend` it talks to:

* **Error taxonomy.**  Backend exceptions are classified *transient*
  (throttles, 5xx, connection resets, timeouts — retry helps) or
  *permanent* (``AccessDenied``, ``NoSuchBucket``, code bugs — retry is
  a storm, fail fast).  The classified forms are
  :class:`StoreUnavailableError` and :class:`StorePermanentError`;
  :func:`classify_default` handles POSIX/transport exceptions and
  :func:`classify_boto3` maps real S3 error codes.

* **:class:`ResilientBackend`** wraps any backend and retries transient
  failures with capped exponential backoff + jitter (the shared
  :class:`~repro.backoff.BackoffPolicy`), bounded per logical operation
  by ``op_timeout``.  Every retry is safe by the store's own contract:
  reads are idempotent, ``put_atomic``/``stamp_mtime``/``delete``
  converge on identical bytes, and a retried conditional put that
  *actually* won server-side merely reports a lost race — the orphaned
  claim ages out by TTL like any other (claims are an efficiency
  device, never a correctness device).

* **:class:`CircuitBreaker`.**  After ``threshold`` consecutive
  transient failures the circuit *opens*: operations fail fast with
  :class:`StoreUnavailableError` instead of stacking retry storms onto
  a store that is already down.  After ``reset_after`` seconds the
  circuit goes *half-open* and admits exactly one probe operation —
  success closes it, failure re-opens it.  Counters for every state
  transition are exposed via :meth:`ResilientBackend.stats`.

* **:class:`FaultSchedule`** is the declarative chaos seam: a
  JSON-serialisable description of injected faults (fail the first K
  matching operations, absolute-time brownout windows, a seeded
  per-operation throttle rate) consumed by
  :class:`~repro.experiments.backends.FakeObjectStore`'s
  ``error_injector`` hook.  Because the schedule serialises, *worker
  subprocesses* can share one: point ``REPRO_STORE_FAULTS`` at a
  schedule file and every ``mem:// | fakes3://`` backend resolved in
  that process injects it — how the CI ``chaos-smoke`` job browns out a
  real two-worker fleet.

:func:`repro.experiments.backends.resolve_backend` wraps object-store
backends (``mem:// | fakes3:// | s3://``) in a :class:`ResilientBackend`
by default (``REPRO_STORE_RESILIENCE=off`` restores raw backends);
``s3://`` stores classify through :func:`classify_boto3`.  The local
filesystem backend stays unwrapped — its historical error handling is
part of the byte-identical layout contract — but wrapping one explicitly
works (flaky NFS).

What this layer deliberately does **not** do: interrupt a hung attempt.
``op_timeout`` bounds the *retry loop* (elapsed time across attempts),
not a single blocking call — per-attempt socket deadlines belong to the
transport (boto3's ``connect_timeout``/``read_timeout``), which is the
only place they can be enforced without leaking threads.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.backoff import BackoffPolicy
from repro.experiments.backends import StoreBackend

__all__ = [
    "StoreUnavailableError",
    "StorePermanentError",
    "TRANSIENT",
    "PERMANENT",
    "classify_default",
    "classify_boto3",
    "CircuitBreaker",
    "ResilientBackend",
    "FaultSchedule",
    "FAULTS_ENV",
    "RESILIENCE_ENV",
]

#: Environment variable naming a :class:`FaultSchedule` JSON file that
#: every fake object store resolved in this process must inject.
FAULTS_ENV = "REPRO_STORE_FAULTS"

#: Set to ``off``/``0``/``false`` to resolve raw (unwrapped) backends.
RESILIENCE_ENV = "REPRO_STORE_RESILIENCE"

#: Classification verdicts.
TRANSIENT = "transient"
PERMANENT = "permanent"


class StoreUnavailableError(RuntimeError):
    """A store operation failed transiently and retries were exhausted
    (or the circuit breaker is open).  The store is presumed *down, not
    broken*: backing off and trying again later is the right response —
    the worker loop's ``--outage-grace`` window does exactly that.
    """

    def __init__(self, message: str, op: str = "", attempts: int = 0,
                 circuit_open: bool = False):
        super().__init__(message)
        self.op = op
        self.attempts = int(attempts)
        self.circuit_open = bool(circuit_open)


class StorePermanentError(RuntimeError):
    """A store operation failed in a way retrying cannot fix
    (``AccessDenied``, a missing bucket, a code bug).  Callers must
    surface it immediately — a retry loop here is a throttle storm
    against a store that will never say yes."""

    def __init__(self, message: str, op: str = ""):
        super().__init__(message)
        self.op = op


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------


def classify_default(exc: BaseException) -> str:
    """Transient/permanent verdict for POSIX and transport exceptions.

    Transient: connection failures, timeouts, and generic ``OSError``
    (EIO on flaky network filesystems, reset sockets).  Permanent:
    ``PermissionError`` (EACCES does not heal by retrying), the
    already-classified taxonomy errors, and — deliberately — *every
    other exception type*: an unrecognised error is far more likely a
    bug than weather, and retrying bugs hides them.
    """
    if isinstance(exc, StorePermanentError):
        return PERMANENT
    if isinstance(exc, StoreUnavailableError):
        return TRANSIENT
    if isinstance(exc, PermissionError):
        return PERMANENT
    if isinstance(exc, (ConnectionError, TimeoutError, OSError)):
        return TRANSIENT
    return PERMANENT


#: Real-S3 error codes worth retrying: throttles and server-side 5xx.
_BOTO3_TRANSIENT_CODES = frozenset({
    "Throttling", "ThrottlingException", "SlowDown",
    "RequestLimitExceeded", "TooManyRequests",
    "RequestTimeout", "RequestTimeoutException",
    "InternalError", "ServiceUnavailable",
    "500", "502", "503", "504",
})

#: Real-S3 error codes that fail fast: configuration/credential faults.
_BOTO3_PERMANENT_CODES = frozenset({
    "AccessDenied", "NoSuchBucket", "InvalidAccessKeyId",
    "SignatureDoesNotMatch", "AccountProblem", "InvalidBucketName",
    "PermanentRedirect", "403",
})


def classify_boto3(exc: BaseException) -> str:
    """Transient/permanent verdict for boto3/botocore exceptions.

    Reads the ``ClientError``-style ``exc.response["Error"]["Code"]``
    when present; botocore's connection-level exceptions carry no code
    (and subclass neither ``OSError`` nor ``ConnectionError``), so they
    are recognised by type name — importing botocore here would defeat
    the repo's no-required-boto3 rule.
    """
    code = str(
        getattr(exc, "response", None) and exc.response.get("Error", {}).get("Code", "")
        or ""
    )
    if code in _BOTO3_TRANSIENT_CODES:
        return TRANSIENT
    if code in _BOTO3_PERMANENT_CODES:
        return PERMANENT
    name = type(exc).__name__
    if "Connection" in name or "Timeout" in name:
        return TRANSIENT
    return classify_default(exc)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open failure gate (thread-safe).

    * **closed** — all operations pass; ``threshold`` *consecutive*
      transient failures open the circuit.
    * **open** — operations fail fast (no backend call) until
      ``reset_after`` seconds have passed since opening.
    * **half-open** — exactly one probe operation is admitted at a
      time; its success closes the circuit, its failure re-opens it
      with a fresh ``reset_after`` window.

    The breaker is shared by every operation of one
    :class:`ResilientBackend` — the worker's poll loop and its
    heartbeat thread both feed it, which is what makes "the store is
    down" a *backend-wide* verdict instead of a per-call discovery.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 8, reset_after: float = 1.0,
                 clock: Callable[[], float] = time.time):
        self.threshold = int(threshold)
        self.reset_after = float(reset_after)
        self.clock = clock
        self.state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()
        self.opens = 0
        self.half_opens = 0
        self.closes = 0

    def allow(self) -> bool:
        """Whether the next operation may touch the backend."""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self.clock() - self._opened_at < self.reset_after:
                    return False
                self.state = self.HALF_OPEN
                self.half_opens += 1
                self._probing = True
                return True
            # Half-open: admit one probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            if self.state != self.CLOSED:
                self.closes += 1
            self.state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            if self.state == self.HALF_OPEN or self._failures >= self.threshold:
                if self.state != self.OPEN:
                    self.opens += 1
                self.state = self.OPEN
                self._opened_at = self.clock()

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "half_opens": self.half_opens,
                "closes": self.closes,
            }


# ----------------------------------------------------------------------
# The resilient backend wrapper
# ----------------------------------------------------------------------


class ResilientBackend(StoreBackend):
    """Retry/backoff/circuit-breaker decorator around any backend.

    Parameters
    ----------
    inner:
        The wrapped :class:`StoreBackend`; attribute access not covered
        by the storage contract (``client``, ``path``, ``root``)
        delegates to it, so diagnostics and tests keep working.
    classify:
        ``exception -> "transient" | "permanent"`` — the error taxonomy
        (:func:`classify_default`, or :func:`classify_boto3` for real
        S3).
    max_attempts:
        Tries per logical operation (first call + retries).
    backoff:
        Delay schedule between attempts (shared
        :class:`~repro.backoff.BackoffPolicy`).
    op_timeout:
        Elapsed-seconds budget per logical operation: once exceeded, no
        further retry is attempted (it bounds the retry loop, not a
        single blocking call — see the module docstring).
    breaker:
        The failure gate; pass an injected-clock instance in tests.
    sleep / clock:
        Injected for deterministic tests.
    """

    def __init__(
        self,
        inner: StoreBackend,
        *,
        classify: Callable[[BaseException], str] = classify_default,
        max_attempts: int = 5,
        backoff: BackoffPolicy | None = None,
        op_timeout: float = 30.0,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.time,
    ):
        self.inner = inner
        self.classify = classify
        self.max_attempts = max(1, int(max_attempts))
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.05, cap=2.0
        )
        self.op_timeout = float(op_timeout)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self._counts = {
            "ops": 0,
            "retries": 0,
            "transient_errors": 0,
            "permanent_errors": 0,
            "exhausted": 0,
            "breaker_fast_fails": 0,
        }
        self._per_op: dict[str, int] = {}

    # -- bookkeeping ----------------------------------------------------

    @property
    def url(self) -> str:  # type: ignore[override]
        return self.inner.url

    def __getattr__(self, name):
        # Contract methods are defined below; anything else (``client``,
        # ``path``, ``root``, driver extensions) belongs to the inner
        # backend.  Only called when normal lookup fails — guard
        # ``inner`` itself so unpickling half-built instances cannot
        # recurse.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    def _bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._counts[key] += n

    def stats(self) -> dict:
        """Operation/retry/failure counters plus the breaker's state."""
        with self._lock:
            snapshot = dict(self._counts)
            snapshot["per_op"] = dict(self._per_op)
        snapshot["breaker"] = self.breaker.stats()
        return snapshot

    # -- the retry core -------------------------------------------------

    def _call(self, op: str, fn: Callable):
        started = self._clock()
        attempt = 0
        while True:
            if not self.breaker.allow():
                self._bump("breaker_fast_fails")
                raise StoreUnavailableError(
                    f"store circuit open: refusing {op!r}",
                    op=op, attempts=attempt, circuit_open=True,
                )
            try:
                result = fn()
            except BaseException as exc:
                verdict = self.classify(exc)
                if verdict == PERMANENT:
                    self._bump("permanent_errors")
                    if isinstance(exc, StorePermanentError):
                        raise
                    raise StorePermanentError(
                        f"store {op!r} failed permanently: {exc!r}", op=op
                    ) from exc
                self.breaker.record_failure()
                self._bump("transient_errors")
                attempt += 1
                elapsed = self._clock() - started
                if attempt >= self.max_attempts or elapsed >= self.op_timeout:
                    self._bump("exhausted")
                    raise StoreUnavailableError(
                        f"store {op!r} unavailable after {attempt} "
                        f"attempt(s) over {elapsed:.2f}s: {exc!r}",
                        op=op, attempts=attempt,
                    ) from exc
                self._bump("retries")
                self._sleep(self.backoff.delay(attempt - 1))
            else:
                self.breaker.record_success()
                with self._lock:
                    self._counts["ops"] += 1
                    self._per_op[op] = self._per_op.get(op, 0) + 1
                return result

    # -- the storage contract, delegated through the retry core ---------

    def get(self, name: str) -> bytes | None:
        return self._call("get", lambda: self.inner.get(name))

    def put_atomic(self, name: str, data: bytes) -> None:
        return self._call("put_atomic", lambda: self.inner.put_atomic(name, data))

    def exists(self, name: str) -> bool:
        return self._call("exists", lambda: self.inner.exists(name))

    def delete(self, name: str) -> None:
        return self._call("delete", lambda: self.inner.delete(name))

    def list(self, prefix: str = "") -> list[str]:
        return self._call("list", lambda: self.inner.list(prefix))

    def list_page(self, prefix: str = "", token: str | None = None,
                  limit: int = StoreBackend.DEFAULT_PAGE_LIMIT):
        # A retried page is safe: tokens are stateless on the backend
        # side, so re-fetching the same page merely re-reads names.
        return self._call(
            "list_page", lambda: self.inner.list_page(prefix, token, limit)
        )

    def try_claim_exclusive(self, name: str, data: bytes) -> bool:
        # Retried conditional puts can mis-report a lost race when the
        # first attempt won but its response was lost in transit; the
        # orphaned claim has no heartbeat and ages out by TTL — safe by
        # the "claims are an efficiency device" invariant.
        return self._call(
            "try_claim_exclusive",
            lambda: self.inner.try_claim_exclusive(name, data),
        )

    def stamp_mtime(self, name: str, data: bytes) -> None:
        return self._call("stamp_mtime", lambda: self.inner.stamp_mtime(name, data))

    def mtime(self, name: str) -> float | None:
        return self._call("mtime", lambda: self.inner.mtime(name))

    def stray_spools(self) -> list[str]:
        return self._call("stray_spools", self.inner.stray_spools)


# ----------------------------------------------------------------------
# Declarative fault schedules (the chaos seam)
# ----------------------------------------------------------------------

#: Exception factory per fault kind.  ``unavailable``/``timeout`` are
#: transient under :func:`classify_default`; ``permanent`` is not.
_FAULT_KINDS = {
    "unavailable": ConnectionError,
    "timeout": TimeoutError,
    "permanent": PermissionError,
}


@dataclass
class FaultSchedule:
    """Declarative, JSON-serialisable fault plan for the fake store.

    Compose any of:

    * ``fail_first`` — ``{op_or_"*": K}``: the first K matching
      operations *observed by this process* fail.  Counters are
      process-local by design (each worker of a fleet sees its own
      first-K), so multi-process runs get deterministic per-worker
      faults.
    * ``brownouts`` — ``[(start, end), …]`` absolute epoch-second
      windows during which **every** operation fails.  Absolute times
      are what let one schedule file brown out a whole fleet of worker
      subprocesses in the same wall-clock window.
    * ``throttle_rate`` — per-operation failure probability drawn from
      a ``seed``-ed RNG (deterministic per process).

    ``kind`` selects the injected exception: ``unavailable``
    (``ConnectionError``), ``timeout`` (``TimeoutError``) — both
    transient — or ``permanent`` (``PermissionError``), which the
    resilience layer must fail fast on, not retry.

    Serialise with :meth:`to_dict`/:meth:`dump`; rehydrate with
    :meth:`from_dict`/:meth:`load`.  Point :data:`FAULTS_ENV`
    (``REPRO_STORE_FAULTS``) at a dumped file and every fake
    object-store backend resolved in that process injects the schedule.
    """

    fail_first: dict[str, int] = field(default_factory=dict)
    brownouts: list[tuple[float, float]] = field(default_factory=list)
    throttle_rate: float = 0.0
    seed: int = 0
    kind: str = "unavailable"

    def __post_init__(self):
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"use one of {sorted(_FAULT_KINDS)}"
            )

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "fail_first": dict(self.fail_first),
            "brownouts": [[float(a), float(b)] for a, b in self.brownouts],
            "throttle_rate": float(self.throttle_rate),
            "seed": int(self.seed),
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSchedule":
        return cls(
            fail_first={str(k): int(v)
                        for k, v in payload.get("fail_first", {}).items()},
            brownouts=[(float(a), float(b))
                       for a, b in payload.get("brownouts", [])],
            throttle_rate=float(payload.get("throttle_rate", 0.0)),
            seed=int(payload.get("seed", 0)),
            kind=str(payload.get("kind", "unavailable")),
        )

    def dump(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- the injector ---------------------------------------------------

    def injector(
        self, clock: Callable[[], float] = time.time
    ) -> Callable[[str, str], None]:
        """``(op, key) -> None`` hook raising per this schedule.

        Stateful (first-K counters, the throttle RNG) — build one
        injector per process/backend, not one per call.
        """
        remaining = dict(self.fail_first)
        rng = random.Random(self.seed)
        make = _FAULT_KINDS[self.kind]

        def inject(op: str, key: str) -> None:
            now = clock()
            for start, end in self.brownouts:
                if start <= now < end:
                    raise make(
                        f"injected store brownout ({op} {key!r}, "
                        f"window {start:.0f}-{end:.0f})"
                    )
            for match in (op, "*"):
                if remaining.get(match, 0) > 0:
                    remaining[match] -= 1
                    raise make(f"injected fault ({op} {key!r})")
            if self.throttle_rate > 0 and rng.random() < self.throttle_rate:
                raise make(f"injected throttle ({op} {key!r})")

        return inject
