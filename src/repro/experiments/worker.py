"""Standalone distributed grid worker.

Usage::

    python -m repro.experiments.worker --store DIR --jobs N
    python -m repro.experiments.worker --store-url fakes3://BUCKET_DIR
    python -m repro.experiments.worker --store-url s3://bucket/prefix

A worker points at a shared :class:`~repro.experiments.store.CellStore`
— a directory, or any store URL resolved by
:func:`repro.experiments.backends.resolve_backend` (``file://`` /
``fakes3://`` / ``s3://``; ``--store`` and ``--store-url`` are the same
flag) — reads the work manifests a coordinator wrote there
(:mod:`repro.experiments.dispatch`), and loops: claim a pending cell
(exclusive claim entry — ``O_EXCL`` file or conditional put — with a
heartbeat lease), execute it through the existing
:class:`~repro.experiments.executor.ExperimentExecutor` / data-plane
stack (``--jobs`` fans the cell's folds over a local process pool),
flush the result, release the claim.  It exits when every manifest cell
has a result.  A worker started *before* its coordinator (the natural
multi-node order) waits up to ``--max-idle`` seconds for a manifest to
appear, then exits with status 3 if none ever did.

Fault model (the invariants the fault-injection suite pins down):

* a worker SIGKILLed mid-cell leaves its claim file behind; the lease
  expires after the TTL and any other worker reaps it and recomputes the
  cell — the grid is delayed, never lost;
* results are content-keyed, deterministic and written via atomic
  rename, so even a duplicated computation (reaped lease whose original
  owner was alive after all) converges to byte-identical store files —
  claims are an efficiency device, correctness never depends on them;
* torn claim/result/manifest files self-heal: corrupt results are
  dropped and recomputed, zero-byte claims age out by mtime, corrupt
  manifests are deleted for the coordinator to rewrite.

``--claim-order`` is the deterministic interleaving seam: it permutes
the order a worker attempts claims in (``sorted`` | ``reversed`` |
``rotate:N``), which the parity tests sweep to show results are
bit-identical for *any* claim interleaving.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.resilience import (
    StorePermanentError,
    StoreUnavailableError,
)
from repro.experiments.store import (
    DEFAULT_LEASE_TTL,
    CellStore,
    ClaimHeartbeat,
    default_claim_owner,
)

__all__ = [
    "LeastRecentlyAttempted",
    "claim_order_from",
    "default_owner",
    "worker_loop",
    "main",
]

#: Default seconds a worker keeps polling through a store outage before
#: giving up (exit code 4).  Sized to ride out a typical object-store
#: brownout (tens of seconds) without masking a real dead store for long.
DEFAULT_OUTAGE_GRACE = 60.0


def default_owner() -> str:
    """Claim-owner identity: host + pid (unique across a shared store)."""
    return default_claim_owner()


class LeastRecentlyAttempted:
    """Work-stealing claim order: never-attempted cells first (by key),
    then the one attempted longest ago.

    The worker notes every claim attempt (win or conflict), so a cell a
    peer is sitting on drifts to the *back* of this worker's list right
    after the conflict and migrates forward again as other cells are
    attempted — by the time the queue drains to stragglers, their cells
    are at the front of every idle worker's list and get stolen the
    moment the lease goes stale, instead of serialising the grid's tail
    behind a fixed permutation.  Ticks are a process-local counter, not
    wall-clock, so the order is deterministic for a given attempt
    history.
    """

    def __init__(self):
        self._tick = 0
        self._last_attempt: dict[str, int] = {}

    def note(self, key: str) -> None:
        """Record a claim attempt on ``key`` (called by the worker)."""
        self._tick += 1
        self._last_attempt[key] = self._tick

    def __call__(self, units):
        return sorted(
            units, key=lambda u: (self._last_attempt.get(u.key, 0), u.key)
        )


def claim_order_from(spec: str):
    """Resolve a ``--claim-order`` string into a list permutation.

    ``sorted`` (by unit key — the deterministic default), ``reversed``
    (descending key), ``rotate:N`` (sorted, then rotated left by N —
    gives each worker of a fleet a distinct starting point so they spread
    over the grid instead of racing for the same first cell) or ``lru``
    (least-recently-attempted first — the work-stealing order elastic
    fleets use so one straggler never serialises a grid's tail).
    """
    if spec == "sorted":
        return lambda units: sorted(units, key=lambda u: u.key)
    if spec == "lru":
        return LeastRecentlyAttempted()
    if spec == "reversed":
        return lambda units: sorted(units, key=lambda u: u.key, reverse=True)
    if spec.startswith("rotate:"):
        shift = int(spec.split(":", 1)[1])
        def rotate(units):
            ordered = sorted(units, key=lambda u: u.key)
            if not ordered:
                return ordered
            k = shift % len(ordered)
            return ordered[k:] + ordered[:k]
        return rotate
    raise ValueError(
        f"unknown claim order {spec!r}; use sorted, reversed or rotate:N"
    )


def worker_loop(
    store_root,
    jobs: int | None = 1,
    owner: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.25,
    heartbeat_interval: float | None = None,
    claim_order=None,
    max_idle: float = 300.0,
    outage_grace: float = DEFAULT_OUTAGE_GRACE,
    units=None,
    log=None,
    codec: str | None = None,
) -> dict:
    """Claim-and-execute until the manifests' grid is complete.

    ``store_root`` is any store target (directory path, store URL, or a
    ready :class:`~repro.experiments.store.CellStore`'s backend).
    Returns a stats dict (cells computed, claim conflicts, reaped leases,
    polling rounds, outage/lease-loss counters plus the resilient
    backend's retry/breaker counters under ``store_resilience``, and
    ``idle_timeout`` when the loop gave up waiting on peers that stopped
    making progress for ``max_idle`` seconds).
    ``units`` overrides manifest discovery (tests inject a plan directly);
    ``claim_order`` is the interleaving seam (see :func:`claim_order_from`).

    **Outage behaviour.**  A transient store failure
    (:class:`~repro.experiments.resilience.StoreUnavailableError`, i.e.
    the resilient backend already exhausted its per-operation retries or
    its circuit breaker is open) does *not* kill the worker: the loop
    backs off and keeps polling for up to ``outage_grace`` seconds,
    resuming exactly where it left off when the store answers again (a
    cell lost mid-compute is simply reclaimed and recomputed — results
    are content-keyed and idempotent).  Only an outage outlasting the
    grace window propagates (exit code 4 from :func:`main`); a
    :class:`~repro.experiments.resilience.StorePermanentError`
    (``AccessDenied``-class faults) propagates immediately (exit code 2)
    because retrying it is a storm, not resilience.

    Deletion discipline: this loop only ever deletes *claims it owns*,
    *stale* claims/spools (via :meth:`CellStore.reap_stale`) and
    *consumed or corrupt manifests* — never a result entry, which is
    immutable once written (corrupt results are healed inside the store's
    decode path, not here).
    """
    from repro.experiments import dispatch, runner
    from repro.experiments.executor import ExperimentExecutor

    owner = owner or default_owner()
    order = claim_order or claim_order_from("sorted")
    note_attempt = getattr(order, "note", lambda key: None)
    interval = heartbeat_interval or max(lease_ttl / 4.0, 0.05)
    log = log or (lambda message: None)

    store = CellStore(store_root, lease_ttl=lease_ttl, codec=codec)
    # The executor's serial payload path (datasets, SRS reference ratios)
    # resolves through the process-wide store: point it at the shared
    # directory so payload values are shared across the fleet too.
    previous_store = runner.get_store()
    runner.configure_store(store=store)
    stats = {
        "owner": owner,
        "computed": 0,
        "claim_conflicts": 0,
        "reaped_claims": 0,
        "rounds": 0,
        "idle_timeout": False,
        "outages": 0,
        "lost_leases": 0,
        "heartbeat_retries": 0,
    }

    def release_best_effort(kind: str, key: str) -> None:
        # Releasing a claim during an outage must not mask the original
        # error (or crash the outage handler): an unreleased claim has
        # no heartbeat and ages out by TTL like any orphan.
        try:
            store.release_claim(kind, key, owner)
        except StoreUnavailableError:
            pass

    try:
        last_progress = time.monotonic()
        previous_pending = None
        seen_plan = False
        outage_since = None
        while True:
            try:
                plan = units if units is not None else dispatch.load_manifests(store)
                if units is None:
                    outage_since = None  # the manifest listing answered
                if not plan:
                    if units is not None or seen_plan:
                        # Explicitly told there is nothing to do — or the
                        # plan we were working from was pruned, which only
                        # happens once its grid completed.
                        break
                    # No manifests yet: workers legitimately start before
                    # their coordinator writes the plan (the multi-node
                    # flow), so wait for one to appear instead of mistaking
                    # an empty queue for a completed grid.
                    if time.monotonic() - last_progress > max_idle:
                        stats["idle_timeout"] = True
                        break
                    time.sleep(poll)
                    continue
                seen_plan = True
                pending = dispatch.pending_units(store, plan)
                outage_since = None  # the pending scan answered: store is back
                if not pending:
                    # The pending scan is a cheap stat-level probe; before
                    # declaring the grid done, decode-check every entry so a
                    # torn result (healed to a miss here) is recomputed now
                    # rather than surprising the coordinator's assembly.
                    if all(store.verify("cell", unit.key) for unit in plan):
                        if units is None:
                            dispatch.prune_manifests(store)
                        break
                    continue
                stats["rounds"] += 1
                if previous_pending is not None and len(pending) < previous_pending:
                    last_progress = time.monotonic()  # peers are landing cells
                previous_pending = len(pending)
                progressed = False
                # One batched listing guards against cells that landed since
                # the pending scan; anything landing *after* this snapshot is
                # still safe — the executor consults the store before
                # computing, so a claimed-but-landed cell is a pure hit.
                still_missing = set(
                    store.filter_missing("cell", [u.key for u in pending])
                )
                for unit in order(pending):
                    if unit.key not in still_missing:
                        continue  # landed while we worked through the list
                    note_attempt(unit.key)
                    if not store.try_claim("cell", unit.key, owner):
                        stats["claim_conflicts"] += 1
                        continue
                    log(f"claimed {unit.spec.code}/{unit.spec.method}/"
                        f"{unit.spec.classifier}")
                    beat = ClaimHeartbeat(store, "cell", unit.key, owner,
                                          interval)
                    try:
                        with beat:
                            executor = ExperimentExecutor(
                                unit.cfg, n_jobs=jobs, store=store
                            )
                            executor.run([unit.spec])
                    finally:
                        stats["heartbeat_retries"] += beat.refresh_errors
                        if beat.lost:
                            stats["lost_leases"] += 1
                        release_best_effort("cell", unit.key)
                    if beat.failed:
                        raise StorePermanentError(
                            f"lease refresh rejected permanently while "
                            f"computing {unit.spec.code}/{unit.spec.method}",
                            op="refresh_claim",
                        )
                    stats["computed"] += 1
                    progressed = True
                    last_progress = time.monotonic()
                    # Cells land continuously while we computed; refresh the
                    # snapshot (one listing) so peer-landed cells are skipped
                    # rather than claimed-and-hit.
                    still_missing = set(
                        store.filter_missing("cell", [u.key for u in pending])
                    )
                if progressed:
                    continue
                # Everything pending is claimed by peers: wait for results to
                # land, reaping any leases (and orphan .tmp spools) whose
                # owners died so the grid cannot stall behind a crashed peer.
                store.reap_stale()
                if store.any_live_claim("cell", [u.key for u in pending]):
                    # A heartbeated lease is proof a peer is computing (a
                    # FULL-profile cell can legitimately outlast max_idle);
                    # only a queue with no live leases counts as stalled.
                    last_progress = time.monotonic()
                if time.monotonic() - last_progress > max_idle:
                    stats["idle_timeout"] = True
                    break
                time.sleep(poll)
            except StoreUnavailableError as exc:
                now = time.monotonic()
                if outage_since is None:
                    outage_since = now
                    stats["outages"] += 1
                    log(f"store unavailable ({exc}); degrading gracefully "
                        f"for up to {outage_grace:.0f}s")
                if now - outage_since > outage_grace:
                    log("store outage outlasted the grace window; giving up")
                    raise
                # The resilient backend already retried with backoff (and
                # its breaker fast-fails while open), so a gentle fixed
                # cadence here is enough — the breaker's half-open probe is
                # what discovers recovery.
                time.sleep(max(poll, min(1.0, outage_grace / 16.0)))
                # An interrupted round is simply retried: claims we held are
                # released best-effort above, results are idempotent, and a
                # worker never deletes anything mid-outage.
    finally:
        stats["reaped_claims"] = store.stats["reaped_claims"]
        backend_stats = getattr(store.backend, "stats", None)
        if callable(backend_stats):
            stats["store_resilience"] = backend_stats()
        runner.configure_store(store=previous_store)
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", "--store-url", dest="store",
                        required=True, metavar="DIR_OR_URL",
                        help="shared CellStore holding the work manifests: "
                             "a directory, or a file:// / fakes3:// / "
                             "s3:// store URL")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="local worker processes per cell "
                             "(0 = all cores; results identical to serial)")
    parser.add_argument("--owner", default=None,
                        help="claim-owner id (default: host:pid)")
    parser.add_argument("--ttl", type=float, default=DEFAULT_LEASE_TTL,
                        help="lease seconds before an unrefreshed claim "
                             "is presumed orphaned (fleet-wide setting)")
    parser.add_argument("--poll", type=float, default=0.25,
                        help="seconds between queue scans while waiting "
                             "on peers")
    parser.add_argument("--max-idle", type=float, default=300.0,
                        help="give up after this many seconds without "
                             "fleet-wide progress")
    parser.add_argument("--outage-grace", type=float,
                        default=DEFAULT_OUTAGE_GRACE,
                        help="keep polling through a store outage for this "
                             "many seconds before giving up (exit code 4)")
    parser.add_argument("--claim-order", default="sorted",
                        help="claim attempt order: sorted | reversed | "
                             "rotate:N | lru (deterministic interleaving "
                             "seam; lru is the work-stealing order)")
    parser.add_argument("--store-codec", default=None, metavar="CODEC",
                        help="payload compression codec (zlib | lzma | "
                             "none); every worker of a fleet must agree "
                             "for byte-identical convergence")
    args = parser.parse_args(argv)

    def log(message: str) -> None:
        print(f"[worker {os.getpid()}] {message}", flush=True)

    # Exit code contract (the supervisor in run_all keys restart decisions
    # off these): 0 done, 2 permanent store error (do not restart — it
    # will fail identically), 3 idle timeout, 4 outage grace exhausted.
    try:
        stats = worker_loop(
            args.store,
            jobs=args.jobs,
            owner=args.owner,
            lease_ttl=args.ttl,
            poll=args.poll,
            claim_order=claim_order_from(args.claim_order),
            max_idle=args.max_idle,
            outage_grace=args.outage_grace,
            log=log,
            codec=args.store_codec,
        )
    except StorePermanentError as exc:
        log(f"fatal: {exc}")
        return 2
    except StoreUnavailableError as exc:
        log(f"store unavailable past --outage-grace: {exc}")
        return 4
    print(json.dumps(stats))
    return 3 if stats["idle_timeout"] else 0


if __name__ == "__main__":
    sys.exit(main())
