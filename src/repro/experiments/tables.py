"""Regenerators for the paper's Tables I–IV.

Each ``tableN`` function returns a plain dict of results (benchmarks and
tests consume this), and each ``format_tableN`` renders the corresponding
report text.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import dataset_table
from repro.evaluation.stats import wilcoxon_signed_rank
from repro.experiments.config import ExperimentConfig, active_config
from repro.experiments.executor import CellSpec, prefetch_cells
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_cell

__all__ = [
    "TABLE2_METHODS",
    "TABLE4_CLASSIFIERS",
    "table2_specs",
    "table4_specs",
    "table1",
    "table2",
    "table3",
    "table4",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
]

#: Sampling pipelines of Table II (paper order): GBABS-DT, GGBS-DT, SRS-DT, DT.
TABLE2_METHODS = ("gbabs", "ggbs", "srs", "ori")

#: Classifiers of Table IV.
TABLE4_CLASSIFIERS = ("dt", "xgboost", "lightgbm", "knn", "rf")


def table2_specs(cfg: ExperimentConfig) -> list[CellSpec]:
    """The Table-II cell grid: every dataset × sampling method, DT.

    Shared by the in-process prefetch, the scaling benchmark and the
    distributed dispatcher (the grid definition must be single-sourced so
    every execution mode computes the same cells).
    """
    return [
        CellSpec(code, method, "dt")
        for code in cfg.datasets
        for method in TABLE2_METHODS
    ]


def table4_specs(cfg: ExperimentConfig) -> list[CellSpec]:
    """The Table-IV grid: classifier × method × noise × dataset (Figs. 7–8
    re-plot slices of the same cells)."""
    return [
        CellSpec(code, method, clf, noise_ratio=noise)
        for clf in TABLE4_CLASSIFIERS
        for method in TABLE2_METHODS
        for noise in cfg.noise_ratios
        for code in cfg.datasets
    ]


def table1(cfg: ExperimentConfig | None = None) -> dict:
    """Table I: realised dataset profiles of the surrogates."""
    cfg = cfg or active_config()
    rows = dataset_table(size_factor=cfg.size_factor, random_state=cfg.random_state)
    return {"rows": rows, "profile": cfg.name}


def format_table1(result: dict) -> str:
    headers = ["Code", "Dataset", "Samples", "Features", "Classes", "IR", "Source"]
    rows = [
        [r["code"], r["name"], r["samples"], r["features"], r["classes"],
         round(r["ir"], 2), r["source"]]
        for r in result["rows"]
    ]
    return format_table(headers, rows, float_format="{:.2f}")


def table2(cfg: ExperimentConfig | None = None, n_jobs: int | None = 1) -> dict:
    """Table II: testing accuracy of DT under each sampling method.

    Returns per-dataset accuracies, per-method averages and the mean
    sampling ratios (which Fig. 6's noise-0 panel reuses).  ``n_jobs > 1``
    fans the cell grid over worker processes (bit-identical results).
    """
    cfg = cfg or active_config()
    prefetch_cells(cfg, table2_specs(cfg), n_jobs)
    accuracy: dict[str, list[float]] = {m: [] for m in TABLE2_METHODS}
    ratios: dict[str, list[float]] = {m: [] for m in TABLE2_METHODS}
    for code in cfg.datasets:
        for method in TABLE2_METHODS:
            cell = run_cell(code, method, "dt", cfg, noise_ratio=0.0)
            accuracy[method].append(cell.means["accuracy"])
            ratios[method].append(cell.mean_sampling_ratio)
    return {
        "datasets": list(cfg.datasets),
        "methods": list(TABLE2_METHODS),
        "accuracy": {m: np.asarray(v) for m, v in accuracy.items()},
        "sampling_ratio": {m: np.asarray(v) for m, v in ratios.items()},
        "average": {m: float(np.mean(v)) for m, v in accuracy.items()},
        "profile": cfg.name,
    }


def format_table2(result: dict) -> str:
    headers = ["Dataset", "GBABS-DT", "GGBS-DT", "SRS-DT", "DT"]
    rows = []
    for i, code in enumerate(result["datasets"]):
        rows.append([code] + [float(result["accuracy"][m][i]) for m in result["methods"]])
    rows.append(["Average"] + [result["average"][m] for m in result["methods"]])
    return format_table(headers, rows)


def table3(
    cfg: ExperimentConfig | None = None,
    table2_result: dict | None = None,
    n_jobs: int | None = 1,
) -> dict:
    """Table III: Wilcoxon signed-rank of GBABS-DT vs the other pipelines."""
    cfg = cfg or active_config()
    t2 = table2_result or table2(cfg, n_jobs=n_jobs)
    gbabs = t2["accuracy"]["gbabs"]
    comparisons = {}
    for method in ("ggbs", "srs", "ori"):
        res = wilcoxon_signed_rank(gbabs, t2["accuracy"][method])
        comparisons[method] = {
            "p_value": res.p_value,
            "statistic": res.statistic,
            "significant": res.significant(0.05),
            "method": res.method,
        }
    return {"comparisons": comparisons, "alpha": 0.05, "profile": cfg.name}


def format_table3(result: dict) -> str:
    label = {"ggbs": "GBABS-DT vs. GGBS-DT", "srs": "GBABS-DT vs. SRS-DT",
             "ori": "GBABS-DT vs. DT"}
    headers = ["Comparison", "p-value", "Significant (a=0.05)"]
    rows = [
        [label[m], f"{c['p_value']:.6f}", "Significant" if c["significant"] else "n.s."]
        for m, c in result["comparisons"].items()
    ]
    return format_table(headers, rows)


def table4(cfg: ExperimentConfig | None = None, n_jobs: int | None = 1) -> dict:
    """Table IV: average accuracy across datasets per classifier × sampler ×
    noise ratio.

    ``per_dataset`` keeps the underlying per-dataset vectors so Figs. 7–8
    can re-plot their distributions without recomputation.  ``n_jobs > 1``
    fans the full classifier × sampler × noise × dataset grid over worker
    processes.
    """
    cfg = cfg or active_config()
    prefetch_cells(cfg, table4_specs(cfg), n_jobs)
    mean_accuracy: dict[tuple[str, str], list[float]] = {}
    per_dataset: dict[tuple[str, str, float], np.ndarray] = {}
    for clf in TABLE4_CLASSIFIERS:
        for method in TABLE2_METHODS:
            means = []
            for noise in cfg.noise_ratios:
                values = [
                    run_cell(code, method, clf, cfg, noise_ratio=noise).means[
                        "accuracy"
                    ]
                    for code in cfg.datasets
                ]
                arr = np.asarray(values)
                per_dataset[(clf, method, noise)] = arr
                means.append(float(arr.mean()))
            mean_accuracy[(clf, method)] = means
    return {
        "classifiers": list(TABLE4_CLASSIFIERS),
        "methods": list(TABLE2_METHODS),
        "noise_ratios": list(cfg.noise_ratios),
        "datasets": list(cfg.datasets),
        "mean_accuracy": mean_accuracy,
        "per_dataset": per_dataset,
        "profile": cfg.name,
    }


def format_table4(result: dict) -> str:
    method_label = {"gbabs": "GBABS", "ggbs": "GGBS", "srs": "SRS", "ori": ""}
    clf_label = {"dt": "DT", "xgboost": "XGBoost", "lightgbm": "LightGBM",
                 "knn": "kNN", "rf": "RF"}
    headers = ["Pipeline"] + [f"{int(n * 100)}%" for n in result["noise_ratios"]]
    rows = []
    for clf in result["classifiers"]:
        for method in result["methods"]:
            prefix = method_label[method]
            name = f"{prefix}-{clf_label[clf]}" if prefix else clf_label[clf]
            rows.append([name] + list(result["mean_accuracy"][(clf, method)]))
    return format_table(headers, rows)
