"""Zero-copy shared-memory data plane for the parallel experiment engine.

The old pooled path shipped every resolved cell payload — the full
``(x, y, splits)`` arrays of every grid cell — into every worker through
the pool initializer: an O(workers × payloads) pickle that dominated
startup on spawn platforms and duplicated each dataset once per worker.
The data plane replaces that with ``multiprocessing.shared_memory``:

* the parent (the **owner**) packs each unique block of arrays once into
  one shared segment via :meth:`SharedArrayPlane.publish` and gets back a
  tiny picklable :class:`BlockMeta` (segment name + dtype/shape/offset
  table);
* workers call :func:`attach_block` with that meta and receive **read-only
  numpy views** over the same physical pages — nothing is copied, task
  tuples stay index-sized, and per-worker shipped bytes are O(unique
  blocks), not O(payloads × workers);
* the owner guarantees unlink: :class:`SharedArrayPlane` is a context
  manager whose ``close()`` is also registered with ``atexit``, so
  segments disappear from ``/dev/shm`` on normal exit, on exceptions
  (including ``KeyboardInterrupt``) and on pool crashes.  Only SIGKILL of
  the owner itself can leak a segment, and then the stdlib resource
  tracker is the net.

Resource-tracker note: under ``fork`` every process shares the parent's
tracker and duplicate registrations collapse into one set entry, so the
owner's explicit unlink keeps the tracker clean.  Under ``spawn`` each
worker runs its *own* tracker, which would unlink the owner's live
segment when the worker exits (bpo-39959); :func:`attach_block`
unregisters the attach-side registration there (or passes ``track=False``
on Python ≥ 3.13).
"""

from __future__ import annotations

import atexit
import multiprocessing
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

__all__ = [
    "ArraySpec",
    "BlockMeta",
    "SharedArrayPlane",
    "attach_block",
    "detach_all",
    "publish_cv_block",
    "cv_block_views",
    "segment_exists",
]

#: Segment-internal alignment of each packed array (cache-line sized).
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside a shared segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class BlockMeta:
    """Picklable handle to one published block (ships in task tuples)."""

    segment: str
    nbytes: int
    arrays: tuple[ArraySpec, ...]


def _aligned(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


#: Owner-side segment name -> read-only views.  Same-process "attaches"
#: (serial fallbacks, thread pools, fork children created after publish)
#: short-circuit here instead of re-mapping the segment.
_OWNED: dict[str, tuple[np.ndarray, ...]] = {}

#: Worker-side attachment cache: segment name -> (shm handle, views).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, tuple[np.ndarray, ...]]] = {}
_DETACH_REGISTERED = False


class SharedArrayPlane:
    """Owns shared-memory segments holding immutable numpy array blocks.

    ``publish(block_id, arrays)`` packs the arrays contiguously (64-byte
    aligned) into one fresh segment and returns its :class:`BlockMeta`;
    publishing the same ``block_id`` again returns the existing meta.
    ``close()`` unlinks every segment and is idempotent; it runs on
    ``with``-exit and, as a crash net, at interpreter exit.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._metas: dict[object, BlockMeta] = {}
        self._total_bytes = 0
        # Start the resource tracker *now*, before any worker pool forks:
        # children forked later inherit this tracker, so attach-side
        # registrations dedup against the owner's instead of spawning
        # per-worker trackers that would unlink live segments at worker
        # exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        atexit.register(self.close)

    # -- publishing ----------------------------------------------------

    def publish(self, block_id, arrays) -> BlockMeta:
        """Pack ``arrays`` into one shared segment; returns its meta."""
        existing = self._metas.get(block_id)
        if existing is not None:
            return existing
        packed = [np.ascontiguousarray(a) for a in arrays]
        specs = []
        offset = 0
        for a in packed:
            specs.append(ArraySpec(a.dtype.str, a.shape, offset))
            offset += _aligned(a.nbytes)
        nbytes = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        views = []
        for a, spec in zip(packed, specs):
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf,
                offset=spec.offset,
            )
            view[...] = a
            view.flags.writeable = False
            views.append(view)
        meta = BlockMeta(segment=shm.name, nbytes=nbytes, arrays=tuple(specs))
        self._segments[shm.name] = shm
        self._metas[block_id] = meta
        self._total_bytes += nbytes
        _OWNED[shm.name] = tuple(views)
        return meta

    def meta(self, block_id) -> BlockMeta:
        return self._metas[block_id]

    def __contains__(self, block_id) -> bool:
        return block_id in self._metas

    @property
    def total_bytes(self) -> int:
        """Bytes held in shared segments (the per-machine data volume)."""
        return self._total_bytes

    def segment_names(self) -> list[str]:
        return list(self._segments)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Unlink every segment (idempotent; safe on partial failure)."""
        atexit.unregister(self.close)
        for name in list(self._segments):
            shm = self._segments.pop(name)
            _OWNED.pop(name, None)
            try:
                shm.close()
            except BufferError:
                # A straggler view still references the buffer; unlink
                # below still removes the name, the pages free with the
                # last unmap.
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                # Someone else removed the file; still drop our tracker
                # registration so shutdown does not warn about it.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
        self._metas.clear()

    def __enter__(self) -> "SharedArrayPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _maybe_untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop the attach-side resource-tracker registration under spawn.

    See the module docstring: needed only where the attaching process runs
    its own tracker (spawn); under fork the shared tracker's set collapses
    duplicate names and the owner's unlink unregisters the single entry.
    """
    try:
        if multiprocessing.get_start_method() == "fork":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def attach_block(meta: BlockMeta) -> tuple[np.ndarray, ...]:
    """Read-only views of a published block (cached per process).

    Contract: attachers never mutate and never *unlink* — segment
    removal belongs exclusively to the owning
    :class:`SharedArrayPlane` (see the module docstring's
    resource-tracker note).  Views stay valid for the attaching
    process's lifetime; :func:`detach_all` closes the handles at exit.
    """
    owned = _OWNED.get(meta.segment)
    if owned is not None:
        return owned
    cached = _ATTACHED.get(meta.segment)
    if cached is not None:
        return cached[1]
    try:
        shm = shared_memory.SharedMemory(name=meta.segment, track=False)
    except TypeError:  # Python < 3.13 has no track parameter
        shm = shared_memory.SharedMemory(name=meta.segment)
        _maybe_untrack(shm)
    views = []
    for spec in meta.arrays:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views.append(view)
    global _DETACH_REGISTERED
    if not _DETACH_REGISTERED:
        atexit.register(detach_all)
        _DETACH_REGISTERED = True
    _ATTACHED[meta.segment] = (shm, tuple(views))
    return _ATTACHED[meta.segment][1]


def detach_all() -> None:
    """Close every cached attachment (runs at worker exit).

    Close, not unlink: the pages free when the owner unlinks *and* the
    last mapping closes, so worker exit order never races segment
    teardown.
    """
    for name in list(_ATTACHED):
        shm, _views = _ATTACHED.pop(name)
        try:
            shm.close()
        except BufferError:
            pass


# ----------------------------------------------------------------------
# CV payload block convention: [x, y, train_0, test_0, train_1, test_1, …]
# ----------------------------------------------------------------------


def publish_cv_block(plane: SharedArrayPlane, block_id, x, y, splits) -> BlockMeta:
    """Publish one ``(x, y, splits)`` CV payload as a single block.

    ``x`` is cast to float64 exactly like the serial path does before fold
    execution, so pooled folds see bit-identical inputs.
    """
    arrays = [np.asarray(x, dtype=np.float64), np.asarray(y)]
    for train, test in splits:
        arrays.append(np.asarray(train))
        arrays.append(np.asarray(test))
    return plane.publish(block_id, arrays)


def cv_block_views(meta: BlockMeta):
    """Unpack a CV payload block into ``(x, y, splits)`` read-only views."""
    views = attach_block(meta)
    x, y = views[0], views[1]
    rest = views[2:]
    splits = [(rest[i], rest[i + 1]) for i in range(0, len(rest), 2)]
    return x, y, splits


def segment_exists(name: str) -> bool:
    """Whether a shared segment is still linked (diagnostics and tests)."""
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        return (shm_dir / name).exists()
    try:
        probe = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        try:
            probe = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        _maybe_untrack(probe)
    except FileNotFoundError:
        return False
    probe.close()
    return True
