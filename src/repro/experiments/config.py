"""Experiment configuration profiles.

The paper's full grid (13 datasets at original size, 5×5-fold CV, default
ensembles of 100 trees) takes hours; the benchmark suite must run on a
laptop in minutes.  Profiles solve this: ``QUICK`` (the default) shrinks
dataset sizes, folds and ensemble sizes while preserving every comparison's
*structure*; ``FULL`` restores the paper's protocol.

Select a profile globally with the ``REPRO_PROFILE`` environment variable
(``quick`` / ``medium`` / ``full``) or pass a config explicitly to the
functions in :mod:`repro.experiments.tables` / ``figures``.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields, replace

__all__ = ["ExperimentConfig", "QUICK", "MEDIUM", "FULL", "active_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    name:
        Profile label used in printed reports.
    size_factor:
        Dataset scale multiplier (see :func:`repro.datasets.load_dataset`).
    datasets:
        Dataset codes included in multi-dataset experiments.
    n_splits, n_repeats:
        Cross-validation protocol (paper: 5 × 5).
    rho:
        GBABS density tolerance (paper examples use 5).
    random_state:
        Master seed.
    n_estimators:
        Ensemble size for RF / XGBoost / LightGBM stand-ins
        (paper/default: 100).
    noise_ratios:
        Class-noise grid for the robustness experiments.
    rho_grid:
        Density-tolerance sweep of Figs. 10–11.
    store_url:
        Optional default cell-store target for this profile — a
        directory or a ``file:// | mem:// | fakes3:// | s3://`` URL (see
        :func:`repro.experiments.backends.resolve_backend`).  Deployment
        configuration, not an experiment parameter: it never enters cell
        keys (results are interchangeable between stores) and is never
        shipped in work manifests (see :meth:`to_dict`).  Explicit
        ``--store/--store-url`` flags, ``REPRO_CELLSTORE_DIR`` and the
        ``REPRO_CELLSTORE=off`` kill switch take precedence.
    store_codec:
        Optional default payload-compression codec for this profile
        (``zlib | lzma | none``).  Deployment configuration like
        ``store_url`` — excluded from :meth:`to_dict` for the same
        reasons; the ``--store-codec`` flag and ``REPRO_STORE_CODEC``
        take precedence.
    """

    name: str
    size_factor: float
    datasets: tuple[str, ...]
    n_splits: int = 5
    n_repeats: int = 5
    rho: int = 5
    random_state: int = 0
    n_estimators: int = 100
    noise_ratios: tuple[float, ...] = (0.05, 0.10, 0.20, 0.30, 0.40)
    rho_grid: tuple[int, ...] = (3, 5, 7, 9, 11, 13, 15, 17, 19)
    store_url: str | None = None
    store_codec: str | None = None

    def scaled(self, **changes) -> "ExperimentConfig":
        """Copy with selected fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready rendering (tuples become lists); see :meth:`from_dict`.

        This is how distributed work manifests ship the profile to worker
        processes, so the field set is part of the on-disk contract.
        ``store_url`` is deliberately **excluded**: it is deployment
        configuration (workers already know their store — they were
        pointed at it), and shipping new fields to fleets running older
        code would make their manifest parsers reject the plan.
        """
        payload = asdict(self)
        payload.pop("store_url", None)
        payload.pop("store_codec", None)
        for field_name in ("datasets", "noise_ratios", "rho_grid"):
            payload[field_name] = list(payload[field_name])
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict` (round-trips exactly).

        Version-tolerant in both directions: payloads written before a
        newer optional field existed keep its default, and payloads
        carrying fields *this* version does not know are accepted with
        those fields dropped.  Without the latter, a mixed-version fleet
        would treat every manifest from a newer coordinator as corrupt
        and delete it — a livelock, not a skew.
        """
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in payload.items() if k in known}
        for field_name in ("datasets", "noise_ratios", "rho_grid"):
            payload[field_name] = tuple(payload[field_name])
        return cls(**payload)


_ALL = tuple(f"S{i}" for i in range(1, 14))

#: Minutes-scale profile: 6 representative datasets (small & large, binary &
#: multi-class, balanced & imbalanced, low- & high-dimensional), 2×3-fold CV,
#: small ensembles.
QUICK = ExperimentConfig(
    name="quick",
    size_factor=0.12,
    datasets=("S1", "S2", "S3", "S5", "S6", "S8"),
    n_splits=3,
    n_repeats=2,
    n_estimators=15,
    noise_ratios=(0.05, 0.10, 0.20, 0.30, 0.40),
    rho_grid=(3, 5, 9, 13, 19),
)

#: All 13 datasets at 20% size, 3×5-fold CV — a faithful shape check that
#: still finishes over a long lunch.
MEDIUM = ExperimentConfig(
    name="medium",
    size_factor=0.2,
    datasets=_ALL,
    n_splits=5,
    n_repeats=3,
    n_estimators=50,
)

#: The paper's protocol.
FULL = ExperimentConfig(
    name="full",
    size_factor=1.0,
    datasets=_ALL,
    n_splits=5,
    n_repeats=5,
    n_estimators=100,
)

_PROFILES = {"quick": QUICK, "medium": MEDIUM, "full": FULL}


def active_config() -> ExperimentConfig:
    """Profile selected by ``REPRO_PROFILE`` (default: quick)."""
    key = os.environ.get("REPRO_PROFILE", "quick").lower()
    if key not in _PROFILES:
        raise ValueError(
            f"REPRO_PROFILE={key!r} unknown; use one of {tuple(_PROFILES)}"
        )
    return _PROFILES[key]
