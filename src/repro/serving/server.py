"""``repro serve`` — asyncio HTTP service over a frozen artifact.

A deliberately small HTTP/1.1 server on stdlib asyncio (this build has no
third-party web framework, and needs none: the request surface is two
JSON endpoints).  Design points:

* **Micro-batched by default.**  ``POST /predict`` submits to a
  :class:`~repro.serving.batching.MicroBatcher`; concurrent requests are
  answered by one vectorised kernel pass per ~1 ms window.  ``--no-batch``
  serves each request individually (the benchmark baseline).
* **Keep-alive.**  Connections serve any number of sequential requests;
  serving fleets and the benchmark client reuse sockets.
* **Graceful drain.**  SIGTERM/SIGINT stop the listener, flush the pending
  batch so every in-flight request gets its answer, wait for open
  connections to finish their current request, then exit 0.  No request
  that was accepted is ever dropped.

Endpoints::

    POST /predict   {"x": [[...], ...]}  ->  {"labels": [...], "n": N}
    GET  /healthz                        ->  model info + serving stats

Errors are JSON too: 400 for malformed bodies, 404 for unknown routes,
413 for oversized bodies, 503 while draining.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time

import numpy as np

from repro.serving.batching import MicroBatcher
from repro.serving.predictor import FrozenPredictor

__all__ = ["PredictServer", "run_server"]

#: Hard cap on request bodies; a predict row is ~tens of floats, so even
#: generous batches sit far below this.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _BadRequest(ValueError):
    """Client-side error mapped to a 400 response."""


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; returns ``None`` on EOF/closed peer."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _BadRequest("malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _response(status: int, reason: str, payload: dict,
              keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


class PredictServer:
    """The serving loop: listener + router + micro-batcher.

    Parameters
    ----------
    predictor:
        A loaded :class:`~repro.serving.predictor.FrozenPredictor`.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    batch_window:
        Micro-batch accumulation window in seconds.
    max_batch:
        Row threshold flushing a batch early.
    batching:
        ``False`` answers each request with its own kernel pass (the
        benchmark's unbatched baseline).
    """

    def __init__(self, predictor: FrozenPredictor, host: str = "127.0.0.1",
                 port: int = 8000, *, batch_window: float = 0.001,
                 max_batch: int = 256, batching: bool = True):
        self.predictor = predictor
        self.host = host
        self.port = int(port)
        self.batching = bool(batching)
        self.batcher = (
            MicroBatcher(predictor.predict, window=batch_window,
                         max_batch=max_batch)
            if batching
            else None
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._started = time.time()
        self.n_http_requests = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.shutdown()

    async def shutdown(self, grace: float = 1.0) -> None:
        """Stop accepting, flush the batcher, wait for open connections.

        In-flight requests finish normally (the batcher flush resolves
        every accepted predict); connections still idle after ``grace``
        seconds are keep-alive sockets with no request in flight and are
        closed outright.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.aclose()
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=grace
            )
            if pending:
                for writer in list(self._writers):
                    writer.close()
                await asyncio.gather(*pending, return_exceptions=True)

    def stats(self) -> dict:
        record = {
            "uptime_seconds": time.time() - self._started,
            "n_http_requests": self.n_http_requests,
            "batching": self.batching,
        }
        if self.batcher is not None:
            record["batch"] = self.batcher.stats.as_dict()
        return record

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(_response(400, "Bad Request",
                                           {"error": str(exc)}, False))
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self.n_http_requests += 1
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                status, reason, payload = await self._route(
                    method, target, body
                )
                writer.write(_response(status, reason, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass  # peer vanished mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, str, dict]:
        path = target.partition("?")[0]
        if path == "/predict" and method == "POST":
            return await self._handle_predict(body)
        if path == "/healthz" and method == "GET":
            meta = self.predictor.meta
            return 200, "OK", {
                "status": "draining" if self._draining else "ok",
                "model": {
                    "path": str(self.predictor.path),
                    "n_balls": self.predictor.n_balls,
                    "n_features": self.predictor.n_features,
                    "n_source_samples": meta.get("n_source_samples"),
                    "params": meta.get("params"),
                },
                "stats": self.stats(),
            }
        return 404, "Not Found", {"error": f"no route {method} {path}"}

    async def _handle_predict(self, body: bytes) -> tuple[int, str, dict]:
        if self._draining:
            return 503, "Service Unavailable", {"error": "server draining"}
        try:
            payload = json.loads(body.decode("utf-8"))
            x = np.asarray(payload["x"], dtype=np.float64)
        except (ValueError, KeyError, TypeError):
            return 400, "Bad Request", {
                "error": 'body must be JSON {"x": [[...], ...]}'
            }
        if x.ndim not in (1, 2) or x.size == 0:
            return 400, "Bad Request", {
                "error": "x must be one sample or a non-empty matrix"
            }
        x = np.atleast_2d(x)
        if x.shape[1] != self.predictor.n_features:
            return 400, "Bad Request", {
                "error": f"x has {x.shape[1]} features, model expects "
                         f"{self.predictor.n_features}"
            }
        try:
            if self.batcher is not None:
                labels = await self.batcher.submit(x)
            else:
                labels = self.predictor.predict(x)
        except RuntimeError:
            return 503, "Service Unavailable", {"error": "server draining"}
        return 200, "OK", {"labels": labels.tolist(), "n": int(x.shape[0])}


async def _serve_async(predictor: FrozenPredictor, host: str, port: int, *,
                       batch_window: float, max_batch: int,
                       batching: bool) -> dict:
    server = PredictServer(
        predictor, host, port, batch_window=batch_window,
        max_batch=max_batch, batching=batching,
    )
    await server.start()
    mode = (
        f"micro-batched (window {batch_window * 1e3:g} ms, "
        f"max {max_batch} rows)"
        if batching
        else "unbatched"
    )
    print(
        f"serving {predictor.path} on http://{server.host}:{server.port} "
        f"[{mode}; {predictor.n_balls} balls, "
        f"{predictor.n_features} features]",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await server.serve_until(stop)
    stats = server.stats()
    print(f"drained cleanly after {stats['n_http_requests']} requests",
          flush=True)
    return stats


def run_server(artifact_path, host: str = "127.0.0.1", port: int = 8000, *,
               batch_window: float = 0.001, max_batch: int = 256,
               batching: bool = True, verify: bool = True) -> int:
    """Blocking entry point used by ``repro serve``.

    Loads the artifact (mmap, optionally checksum-verified), serves until
    SIGTERM/SIGINT, drains, and returns 0 on a clean exit.
    """
    with FrozenPredictor.load(artifact_path, verify=verify) as predictor:
        asyncio.run(
            _serve_async(
                predictor, host, port, batch_window=batch_window,
                max_batch=max_batch, batching=batching,
            )
        )
    return 0
