"""``repro serve`` — resilient asyncio HTTP service over frozen artifacts.

A deliberately small HTTP/1.1 server on stdlib asyncio (this build has no
third-party web framework, and needs none: the request surface is a
handful of endpoints).  Design points:

* **Multi-model routing.**  The server holds a
  :class:`~repro.serving.router.ModelRouter`: each model name maps to an
  independent :class:`~repro.serving.manager.PredictorManager` (own
  artifact, watcher, generation counter, swap history).
  ``POST /models/<name>/predict`` routes explicitly; ``POST /predict``
  aliases the configured default model, so single-model deployments and
  old clients are unchanged.
* **Binary wire protocol.**  A request with
  ``Content-Type: application/x-gbaf-batch`` carries raw array rows
  (:mod:`repro.serving.wire`) and is answered in kind — no JSON float
  text on the hot path.  JSON stays the default; error bodies are always
  JSON; a server started with ``binary=False`` answers ``415`` and the
  client falls back.
* **Micro-batched by default.**  Each model has its own
  :class:`~repro.serving.batching.MicroBatcher`; concurrent requests for
  one model are answered by one vectorised kernel pass per ~1 ms window.
  ``--no-batch`` serves each request individually (the benchmark
  baseline).
* **Hot artifact reload, per model.**  Republishing any model's artifact
  (or SIGHUP, or ``POST /admin/reload``) loads + validates the new model
  in the background and swaps it atomically under traffic; a corrupt
  replacement rolls back that model while its siblings keep serving.
* **Admission control.**  At most ``max_pending`` predicts wait at once
  (across all models); beyond that the server sheds with an explicit
  ``503`` + ``Retry-After`` instead of queueing unboundedly toward
  collapse.
* **Bounded waits.**  Every predict carries a deadline
  (``request_timeout``); expiry answers ``504`` and the workspace stays
  consistent for the next request.
* **Liveness vs readiness.**  ``GET /healthz`` answers whenever the
  process is alive (plus per-model info, serving stats and swap
  histories); ``GET /readyz`` is the load-balancer gate — 503 while
  draining, while **any** model's last reload failed, or with the
  pending queue above its high-water mark.
* **Keep-alive.**  Connections serve any number of sequential requests;
  serving fleets and the benchmark client reuse sockets.
* **Graceful drain.**  SIGTERM/SIGINT stop the listener, flush every
  model's pending batch so in-flight requests get their answers, wait
  for open connections to finish their current request, then exit 0.  No
  request that was accepted is ever dropped; late requests on
  established keep-alive sockets get ``503`` + ``Connection: close``.

Endpoints::

    POST /predict                 {"x": [[...], ...]} -> {"labels": [...], "n": N}
    POST /models/<name>/predict   same, routed to the named model
    GET  /healthz                 -> liveness + per-model detail + stats
    GET  /readyz                  -> readiness gate (200/503)
    POST /admin/reload            {"model": name?} -> reload one/all models
    POST /models/<name>/admin/reload -> reload exactly that model

Both predict routes speak JSON or the binary frame, negotiated by the
request ``Content-Type``.  Errors are JSON: 400 for malformed bodies,
404 for unknown routes or model names, 413 for oversized bodies, 415
for the binary content type when disabled, 500 (with a logged
``error_id``) for predictor failures, 503 while draining/overloaded,
504 past the deadline.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
import uuid

import numpy as np

from repro.serving import wire
from repro.serving.batching import BatcherClosedError, MicroBatcher
from repro.serving.manager import PredictorManager
from repro.serving.predictor import FrozenPredictor
from repro.serving.router import ModelRouter, UnknownModelError

__all__ = ["PredictServer", "run_server"]

log = logging.getLogger("repro.serving")

#: Hard cap on request bodies; a predict row is ~tens of floats (JSON) or
#: 8 bytes per feature (binary), so even generous batches sit far below.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Delta-seconds hint sent with shed (503 overloaded) responses.
RETRY_AFTER_SECONDS = 1


class _BadRequest(ValueError):
    """Client-side error mapped to a 400 response."""


class _RequestTooLarge(ValueError):
    """Oversized body mapped to a 413 response (connection closes: the
    unread body cannot be skipped safely on a keep-alive socket)."""


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; returns ``None`` on EOF/closed peer."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _BadRequest("malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise _RequestTooLarge(
            f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _response(status: int, reason: str, payload: dict, keep_alive: bool,
              extra_headers: dict | None = None) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return _raw_response(status, reason, body, "application/json",
                         keep_alive, extra_headers)


def _raw_response(status: int, reason: str, body: bytes, content_type: str,
                  keep_alive: bool,
                  extra_headers: dict | None = None) -> bytes:
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def _content_type_of(headers: dict) -> str:
    """The media type of a request, lower-cased, parameters stripped."""
    return headers.get("content-type", "").partition(";")[0].strip().lower()


class PredictServer:
    """The serving loop: listener + router + per-model batchers + reload.

    Parameters
    ----------
    predictor:
        What to serve: a :class:`~repro.serving.router.ModelRouter`
        (multi-model), a :class:`~repro.serving.manager.PredictorManager`
        or a bare :class:`~repro.serving.predictor.FrozenPredictor` (both
        wrapped as a single-model router under the name ``"default"``).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    batch_window:
        Micro-batch accumulation window in seconds.
    max_batch:
        Row threshold flushing a batch early.
    batching:
        ``False`` answers each request with its own kernel pass (the
        benchmark's unbatched baseline).
    max_pending:
        Admission limit: predicts allowed to wait at once — across all
        models — before the server sheds with 503 + ``Retry-After``.
    request_timeout:
        Per-predict deadline in seconds (``None`` = unbounded).  Expiry
        answers 504; the workspace stays consistent.
    ready_fraction:
        ``/readyz`` degrades once the pending queue exceeds this
        fraction of ``max_pending`` (shedding is imminent).
    binary:
        Accept the binary wire protocol
        (``Content-Type: application/x-gbaf-batch``).  ``False`` answers
        such requests 415, which is also how pre-binary servers behave —
        the client's fallback path is tested against it.
    fault_injector:
        Optional :class:`~repro.serving.faults._FaultInjector` chaos
        hook (tests/bench only).
    """

    def __init__(self, predictor, host: str = "127.0.0.1",
                 port: int = 8000, *, batch_window: float = 0.001,
                 max_batch: int = 256, batching: bool = True,
                 max_pending: int = 64,
                 request_timeout: float | None = None,
                 ready_fraction: float = 0.8, binary: bool = True,
                 fault_injector=None):
        if isinstance(predictor, ModelRouter):
            self.router = predictor
        elif isinstance(predictor, PredictorManager):
            self.router = ModelRouter.adopt(predictor)
        elif isinstance(predictor, FrozenPredictor):
            self.router = ModelRouter.adopt(PredictorManager.adopt(predictor))
        else:
            raise TypeError(
                "predictor must be a FrozenPredictor, a PredictorManager "
                "or a ModelRouter"
            )
        self.host = host
        self.port = int(port)
        self.batching = bool(batching)
        self.batchers: dict[str, MicroBatcher] = (
            {
                name: MicroBatcher(manager.predict, window=batch_window,
                                   max_batch=max_batch)
                for name, manager in self.router.items()
            }
            if batching
            else {}
        )
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self.request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self.high_water = max(1, int(ready_fraction * self.max_pending))
        self.binary = bool(binary)
        self._faults = fault_injector
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._started = time.time()
        self.n_http_requests = 0
        self.n_binary_requests = 0
        self._pending = 0
        self.pending_high_water = 0
        self.n_shed = 0
        self.n_timeouts = 0
        self.n_errors = 0

    @property
    def manager(self) -> PredictorManager:
        """The default model's manager (single-model back-compat)."""
        return self.router.get()

    @property
    def predictor(self) -> FrozenPredictor:
        """The default model's live predictor (changes across reloads)."""
        return self.router.get().current

    @property
    def batcher(self) -> MicroBatcher | None:
        """The default model's batcher (single-model back-compat)."""
        return self.batchers.get(self.router.default)

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.shutdown()

    async def shutdown(self, grace: float = 1.0) -> None:
        """Stop accepting, flush the batchers, wait for open connections.

        In-flight requests finish normally (each batcher flush resolves
        every accepted predict); connections still idle after ``grace``
        seconds are keep-alive sockets with no request in flight and are
        closed outright.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for batcher in self.batchers.values():
            await batcher.aclose()
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=grace
            )
            if pending:
                for writer in list(self._writers):
                    writer.close()
                await asyncio.gather(*pending, return_exceptions=True)

    def stats(self) -> dict:
        record = {
            "uptime_seconds": time.time() - self._started,
            "n_http_requests": self.n_http_requests,
            "n_binary_requests": self.n_binary_requests,
            "batching": self.batching,
            "binary": self.binary,
            "admission": {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "high_water": self.high_water,
                "pending_high_water": self.pending_high_water,
                "n_shed": self.n_shed,
                "n_timeouts": self.n_timeouts,
                "n_errors": self.n_errors,
            },
            "reload": self.manager.stats(),
            "router": self.router.stats(),
        }
        default_batcher = self.batcher
        if default_batcher is not None:
            record["batch"] = default_batcher.stats.as_dict()
        if self.batchers:
            record["batch_by_model"] = {
                name: batcher.stats.as_dict()
                for name, batcher in sorted(self.batchers.items())
            }
        return record

    def readiness(self) -> tuple[bool, list[str]]:
        """The ``/readyz`` verdict: ``(ready, reasons-if-not)``.

        Aggregate readiness is all-models-ready: a load balancer must
        not route to a server that would fail one of its models.
        """
        reasons = []
        if self._draining:
            reasons.append("draining")
        for name, error in sorted(self.router.unhealthy_models().items()):
            reasons.append(f"model {name!r}: last reload failed: {error}")
        if self._pending >= self.high_water:
            reasons.append(
                f"pending {self._pending} >= high-water {self.high_water}"
            )
        return not reasons, reasons

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _RequestTooLarge as exc:
                    writer.write(_response(413, "Payload Too Large",
                                           {"error": str(exc)}, False))
                    await writer.drain()
                    break
                except _BadRequest as exc:
                    # Flush before closing: without the drain the error
                    # body can be lost in the close.
                    writer.write(_response(400, "Bad Request",
                                           {"error": str(exc)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self.n_http_requests += 1
                if self._faults is not None \
                        and self._faults.take_connection_drop():
                    break  # chaos: vanish without a response
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                raw = await self._route(method, target, headers, body,
                                        keep_alive)
                if self._faults is not None \
                        and self._faults.take_forced_close():
                    keep_alive = False  # chaos: answer, then hang up
                if self._draining:
                    keep_alive = False  # drained mid-request
                if not keep_alive and b"Connection: keep-alive" in raw:
                    raw = raw.replace(b"Connection: keep-alive",
                                      b"Connection: close", 1)
                if self._faults is not None \
                        and self._faults.take_truncated_response():
                    # chaos: a mid-body drop — send a strict prefix of
                    # the response, then hang up.
                    writer.write(raw[: max(1, len(raw) // 2)])
                    await writer.drain()
                    break
                writer.write(raw)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass  # peer vanished mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, target: str, headers: dict,
                     body: bytes, keep_alive: bool) -> bytes:
        """Dispatch one request; returns the full response bytes."""
        path = target.partition("?")[0]
        model_name: str | None = None
        if path.startswith("/models/"):
            rest = path[len("/models/"):]
            model_name, _, subpath = rest.partition("/")
            path = "/" + subpath
            if not model_name or not subpath:
                return _response(404, "Not Found", {
                    "error": f"no route {method} {target}"
                }, keep_alive)
        if path == "/predict" and method == "POST":
            return await self._handle_predict(
                body, _content_type_of(headers), model_name, keep_alive
            )
        if path == "/healthz" and method == "GET" and model_name is None:
            ready, _reasons = self.readiness()
            default = self.router.get()
            predictor = default.current
            meta = predictor.meta
            return _response(200, "OK", {
                "status": "draining" if self._draining else "ok",
                "ready": ready,
                "default_model": self.router.default,
                "generation": default.generation,
                "model": {
                    "name": self.router.default,
                    "path": str(predictor.path),
                    "n_balls": predictor.n_balls,
                    "n_features": predictor.n_features,
                    "n_source_samples": meta.get("n_source_samples"),
                    "params": meta.get("params"),
                },
                "models": self.router.describe_models(),
                "swaps": default.history(),
                "stats": self.stats(),
            }, keep_alive)
        if path == "/readyz" and method == "GET" and model_name is None:
            ready, reasons = self.readiness()
            if ready:
                return _response(200, "OK", {"ready": True}, keep_alive)
            return _response(503, "Service Unavailable", {
                "ready": False, "reasons": reasons,
            }, keep_alive)
        if path == "/admin/reload" and method == "POST":
            return await self._handle_reload(body, model_name, keep_alive)
        return _response(404, "Not Found", {
            "error": f"no route {method} {target}"
        }, keep_alive)

    async def _handle_reload(self, body: bytes, model_name: str | None,
                             keep_alive: bool) -> bytes:
        """``POST /admin/reload``: one model by name, or every model.

        The name comes from the ``/models/<name>/admin/reload`` path or
        a ``{"model": name}`` JSON body; with neither, all models reload
        and the aggregate status is ``"swapped"`` only if every one
        swapped.
        """
        if model_name is None and body:
            try:
                payload = json.loads(body.decode("utf-8"))
                model_name = payload.get("model")
            except (ValueError, AttributeError):
                return _response(400, "Bad Request", {
                    "error": 'reload body must be JSON {"model": name?}'
                }, keep_alive)
        try:
            entry = await self.router.reload(model_name, reason="admin")
        except UnknownModelError as exc:
            return _response(404, "Not Found", {"error": str(exc)},
                             keep_alive)
        if entry["status"] == "swapped":
            return _response(200, "OK", entry, keep_alive)
        # The old model keeps serving; 409 tells the deploy script its
        # publish was refused without looking like a predict 5xx.
        return _response(409, "Conflict", entry, keep_alive)

    async def _submit(self, x: np.ndarray, model_name: str) -> np.ndarray:
        """One predict through the chaos hook and batcher/manager."""
        if self._faults is not None:
            await self._faults.before_predict(model=model_name)
        batcher = self.batchers.get(model_name)
        if batcher is not None:
            return await batcher.submit(x)
        return self.router.get(model_name).predict(x)

    async def _handle_predict(self, body: bytes, content_type: str,
                              model_name: str | None,
                              keep_alive: bool) -> bytes:
        if self._draining:
            return _response(503, "Service Unavailable", {
                "error": "server draining"
            }, keep_alive)
        try:
            manager = self.router.get(model_name)
        except UnknownModelError as exc:
            return _response(404, "Not Found", {"error": str(exc)},
                             keep_alive)
        resolved = model_name if model_name is not None else self.router.default
        binary = content_type == wire.WIRE_CONTENT_TYPE
        if binary:
            if not self.binary:
                return _response(415, "Unsupported Media Type", {
                    "error": f"{wire.WIRE_CONTENT_TYPE} is not enabled on "
                             "this server; send application/json"
                }, keep_alive)
            self.n_binary_requests += 1
            try:
                x = wire.decode_request(body)
            except ValueError as exc:
                return _response(400, "Bad Request", {
                    "error": f"bad wire frame: {exc}"
                }, keep_alive)
        else:
            try:
                payload = json.loads(body.decode("utf-8"))
                x = np.asarray(payload["x"], dtype=np.float64)
            except (ValueError, KeyError, TypeError):
                return _response(400, "Bad Request", {
                    "error": 'body must be JSON {"x": [[...], ...]}'
                }, keep_alive)
        if x.ndim not in (1, 2) or x.size == 0:
            return _response(400, "Bad Request", {
                "error": "x must be one sample or a non-empty matrix"
            }, keep_alive)
        x = np.atleast_2d(x)
        n_features = manager.current.n_features
        if x.shape[1] != n_features:
            return _response(400, "Bad Request", {
                "error": f"x has {x.shape[1]} features, model "
                         f"{resolved!r} expects {n_features}"
            }, keep_alive)
        if self._pending >= self.max_pending:
            # Shed instead of queueing unboundedly: the client backs off
            # and retries, the server stays answerable.
            self.n_shed += 1
            return _response(503, "Service Unavailable", {
                "error": f"server overloaded ({self._pending} requests "
                         "pending); retry later",
            }, keep_alive, {"Retry-After": str(RETRY_AFTER_SECONDS)})
        self._pending += 1
        self.pending_high_water = max(self.pending_high_water, self._pending)
        try:
            if self.request_timeout is not None:
                labels = await asyncio.wait_for(
                    self._submit(x, resolved), self.request_timeout
                )
            else:
                labels = await self._submit(x, resolved)
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            return _response(504, "Gateway Timeout", {
                "error": f"predict exceeded the {self.request_timeout:g}s "
                         "deadline"
            }, keep_alive)
        except BatcherClosedError:
            # The drain race: accepted before shutdown, submitted after
            # the batcher closed.  A retryable condition, not a failure.
            return _response(503, "Service Unavailable", {
                "error": "server draining"
            }, keep_alive)
        except Exception:
            error_id = uuid.uuid4().hex[:12]
            self.n_errors += 1
            log.exception("predict failed [error_id %s]", error_id)
            return _response(500, "Internal Server Error", {
                "error": "internal predictor error",
                "error_id": error_id,
            }, keep_alive)
        finally:
            self._pending -= 1
        if binary:
            return _raw_response(
                200, "OK", wire.encode_response(labels),
                wire.WIRE_CONTENT_TYPE, keep_alive,
            )
        return _response(200, "OK", {
            "labels": labels.tolist(), "n": int(x.shape[0])
        }, keep_alive)


async def _serve_async(router: ModelRouter, host: str, port: int, *,
                       batch_window: float, max_batch: int, batching: bool,
                       max_pending: int, request_timeout: float | None,
                       binary: bool, watch: bool) -> dict:
    server = PredictServer(
        router, host, port, batch_window=batch_window,
        max_batch=max_batch, batching=batching, max_pending=max_pending,
        request_timeout=request_timeout, binary=binary,
    )
    await server.start()
    mode = (
        f"micro-batched (window {batch_window * 1e3:g} ms, "
        f"max {max_batch} rows)"
        if batching
        else "unbatched"
    )
    if len(router) == 1:
        predictor = router.get().current
        what = (
            f"{predictor.path} on http://{server.host}:{server.port} "
            f"[{mode}; {predictor.n_balls} balls, "
            f"{predictor.n_features} features]"
        )
    else:
        what = (
            f"{len(router)} models on http://{server.host}:{server.port} "
            f"[{mode}; models: {', '.join(router.names)}; "
            f"default: {router.default}]"
        )
    print(f"serving {what}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    loop.add_signal_handler(
        signal.SIGHUP,
        lambda: asyncio.ensure_future(router.reload(None, reason="sighup")),
    )
    if watch:
        await router.start_watching()
    try:
        await server.serve_until(stop)
    finally:
        await router.stop_watching()
    stats = server.stats()
    print(f"drained cleanly after {stats['n_http_requests']} requests",
          flush=True)
    return stats


def run_server(artifact_path=None, host: str = "127.0.0.1",
               port: int = 8000, *, models: dict | None = None,
               default_model: str | None = None,
               batch_window: float = 0.001, max_batch: int = 256,
               batching: bool = True, verify: bool = True,
               max_pending: int = 64, request_timeout: float | None = 30.0,
               poll_interval: float = 2.0, binary: bool = True,
               watch: bool = True) -> int:
    """Blocking entry point used by ``repro serve``.

    Serve either one artifact (``artifact_path``, the historical form —
    registered under the model name ``"default"``) or several
    (``models``: name → artifact path, with ``default_model`` naming the
    ``/predict`` alias).  Loads every artifact (mmap, optionally
    checksum-verified) behind its own
    :class:`~repro.serving.manager.PredictorManager`, serves until
    SIGTERM/SIGINT (reloading per model on artifact change, SIGHUP or
    ``POST /admin/reload``), drains, and returns 0 on a clean exit.
    """
    if models:
        if artifact_path is not None:
            raise ValueError("pass either artifact_path or models, not both")
        specs = dict(models)
    else:
        if artifact_path is None:
            raise ValueError("either artifact_path or models is required")
        specs = {"default": artifact_path}
    router = ModelRouter.from_specs(
        specs, default_model, verify=verify, poll_interval=poll_interval
    )
    try:
        asyncio.run(
            _serve_async(
                router, host, port, batch_window=batch_window,
                max_batch=max_batch, batching=batching,
                max_pending=max_pending, request_timeout=request_timeout,
                binary=binary, watch=watch,
            )
        )
    finally:
        router.close()
    return 0
