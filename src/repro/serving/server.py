"""``repro serve`` — resilient asyncio HTTP service over frozen artifacts.

A deliberately small HTTP/1.1 server on stdlib asyncio (this build has no
third-party web framework, and needs none: the request surface is a
handful of JSON endpoints).  Design points:

* **Micro-batched by default.**  ``POST /predict`` submits to a
  :class:`~repro.serving.batching.MicroBatcher`; concurrent requests are
  answered by one vectorised kernel pass per ~1 ms window.  ``--no-batch``
  serves each request individually (the benchmark baseline).
* **Hot artifact reload.**  The model lives behind a
  :class:`~repro.serving.manager.PredictorManager`: republishing the
  artifact file (or SIGHUP, or ``POST /admin/reload``) loads + validates
  the new model in the background and swaps it atomically under traffic;
  a corrupt replacement rolls back and the old model keeps serving.
* **Admission control.**  At most ``max_pending`` predicts wait at once;
  beyond that the server sheds with an explicit ``503`` +
  ``Retry-After`` instead of queueing unboundedly toward collapse.
* **Bounded waits.**  Every predict carries a deadline
  (``request_timeout``); expiry answers ``504`` and the workspace stays
  consistent for the next request.
* **Liveness vs readiness.**  ``GET /healthz`` answers whenever the
  process is alive (plus model info, serving stats and the swap
  history); ``GET /readyz`` is the load-balancer gate — 503 while
  draining, after a failed reload, or with the pending queue above its
  high-water mark.
* **Keep-alive.**  Connections serve any number of sequential requests;
  serving fleets and the benchmark client reuse sockets.
* **Graceful drain.**  SIGTERM/SIGINT stop the listener, flush the pending
  batch so every in-flight request gets its answer, wait for open
  connections to finish their current request, then exit 0.  No request
  that was accepted is ever dropped; late requests on established
  keep-alive sockets get ``503`` + ``Connection: close``.

Endpoints::

    POST /predict       {"x": [[...], ...]}  ->  {"labels": [...], "n": N}
    GET  /healthz                            ->  liveness + model + stats
    GET  /readyz                             ->  readiness gate (200/503)
    POST /admin/reload                       ->  explicit artifact reload

Errors are JSON too: 400 for malformed bodies, 404 for unknown routes,
413 for oversized bodies, 500 (with a logged ``error_id``) for predictor
failures, 503 while draining/overloaded, 504 past the deadline.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
import uuid

import numpy as np

from repro.serving.batching import BatcherClosedError, MicroBatcher
from repro.serving.manager import PredictorManager
from repro.serving.predictor import FrozenPredictor

__all__ = ["PredictServer", "run_server"]

log = logging.getLogger("repro.serving")

#: Hard cap on request bodies; a predict row is ~tens of floats, so even
#: generous batches sit far below this.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Delta-seconds hint sent with shed (503 overloaded) responses.
RETRY_AFTER_SECONDS = 1


class _BadRequest(ValueError):
    """Client-side error mapped to a 400 response."""


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; returns ``None`` on EOF/closed peer."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _BadRequest("malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _response(status: int, reason: str, payload: dict, keep_alive: bool,
              extra_headers: dict | None = None) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class PredictServer:
    """The serving loop: listener + router + batcher + reload manager.

    Parameters
    ----------
    predictor:
        A loaded :class:`~repro.serving.predictor.FrozenPredictor`
        (wrapped in a non-watching
        :class:`~repro.serving.manager.PredictorManager`) or a manager
        built by the caller (``run_server`` does this, with watching).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    batch_window:
        Micro-batch accumulation window in seconds.
    max_batch:
        Row threshold flushing a batch early.
    batching:
        ``False`` answers each request with its own kernel pass (the
        benchmark's unbatched baseline).
    max_pending:
        Admission limit: predicts allowed to wait at once before the
        server sheds with 503 + ``Retry-After``.
    request_timeout:
        Per-predict deadline in seconds (``None`` = unbounded).  Expiry
        answers 504; the workspace stays consistent.
    ready_fraction:
        ``/readyz`` degrades once the pending queue exceeds this
        fraction of ``max_pending`` (shedding is imminent).
    fault_injector:
        Optional :class:`~repro.serving.faults._FaultInjector` chaos
        hook (tests/bench only).
    """

    def __init__(self, predictor, host: str = "127.0.0.1",
                 port: int = 8000, *, batch_window: float = 0.001,
                 max_batch: int = 256, batching: bool = True,
                 max_pending: int = 64,
                 request_timeout: float | None = None,
                 ready_fraction: float = 0.8, fault_injector=None):
        if isinstance(predictor, PredictorManager):
            self.manager = predictor
        elif isinstance(predictor, FrozenPredictor):
            self.manager = PredictorManager.adopt(predictor)
        else:
            raise TypeError(
                "predictor must be a FrozenPredictor or a PredictorManager"
            )
        self.host = host
        self.port = int(port)
        self.batching = bool(batching)
        self.batcher = (
            MicroBatcher(self.manager.predict, window=batch_window,
                         max_batch=max_batch)
            if batching
            else None
        )
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self.request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self.high_water = max(1, int(ready_fraction * self.max_pending))
        self._faults = fault_injector
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._started = time.time()
        self.n_http_requests = 0
        self._pending = 0
        self.pending_high_water = 0
        self.n_shed = 0
        self.n_timeouts = 0
        self.n_errors = 0

    @property
    def predictor(self) -> FrozenPredictor:
        """The live predictor (changes across hot reloads)."""
        return self.manager.current

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.shutdown()

    async def shutdown(self, grace: float = 1.0) -> None:
        """Stop accepting, flush the batcher, wait for open connections.

        In-flight requests finish normally (the batcher flush resolves
        every accepted predict); connections still idle after ``grace``
        seconds are keep-alive sockets with no request in flight and are
        closed outright.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.batcher is not None:
            await self.batcher.aclose()
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections), timeout=grace
            )
            if pending:
                for writer in list(self._writers):
                    writer.close()
                await asyncio.gather(*pending, return_exceptions=True)

    def stats(self) -> dict:
        record = {
            "uptime_seconds": time.time() - self._started,
            "n_http_requests": self.n_http_requests,
            "batching": self.batching,
            "admission": {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "high_water": self.high_water,
                "pending_high_water": self.pending_high_water,
                "n_shed": self.n_shed,
                "n_timeouts": self.n_timeouts,
                "n_errors": self.n_errors,
            },
            "reload": self.manager.stats(),
        }
        if self.batcher is not None:
            record["batch"] = self.batcher.stats.as_dict()
        return record

    def readiness(self) -> tuple[bool, list[str]]:
        """The ``/readyz`` verdict: ``(ready, reasons-if-not)``."""
        reasons = []
        if self._draining:
            reasons.append("draining")
        if not self.manager.healthy:
            reasons.append(f"last reload failed: {self.manager.last_error}")
        if self._pending >= self.high_water:
            reasons.append(
                f"pending {self._pending} >= high-water {self.high_water}"
            )
        return not reasons, reasons

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    # Flush before closing: without the drain the error
                    # body can be lost in the close.
                    writer.write(_response(400, "Bad Request",
                                           {"error": str(exc)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self.n_http_requests += 1
                if self._faults is not None \
                        and self._faults.take_connection_drop():
                    break  # chaos: vanish without a response
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                status, reason, payload, extra = await self._route(
                    method, target, body
                )
                if self._faults is not None \
                        and self._faults.take_forced_close():
                    keep_alive = False  # chaos: answer, then hang up
                if self._draining:
                    keep_alive = False  # drained mid-request
                writer.write(
                    _response(status, reason, payload, keep_alive, extra)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass  # peer vanished mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, str, dict, dict | None]:
        path = target.partition("?")[0]
        if path == "/predict" and method == "POST":
            return await self._handle_predict(body)
        if path == "/healthz" and method == "GET":
            predictor = self.manager.current
            meta = predictor.meta
            ready, _reasons = self.readiness()
            return 200, "OK", {
                "status": "draining" if self._draining else "ok",
                "ready": ready,
                "generation": self.manager.generation,
                "model": {
                    "path": str(predictor.path),
                    "n_balls": predictor.n_balls,
                    "n_features": predictor.n_features,
                    "n_source_samples": meta.get("n_source_samples"),
                    "params": meta.get("params"),
                },
                "swaps": self.manager.history(),
                "stats": self.stats(),
            }, None
        if path == "/readyz" and method == "GET":
            ready, reasons = self.readiness()
            if ready:
                return 200, "OK", {"ready": True}, None
            return 503, "Service Unavailable", {
                "ready": False, "reasons": reasons,
            }, None
        if path == "/admin/reload" and method == "POST":
            entry = await self.manager.reload(reason="admin")
            if entry["status"] == "swapped":
                return 200, "OK", entry, None
            # The old model keeps serving; 409 tells the deploy script
            # its publish was refused without looking like a predict 5xx.
            return 409, "Conflict", entry, None
        return 404, "Not Found", {"error": f"no route {method} {path}"}, None

    async def _submit(self, x: np.ndarray) -> np.ndarray:
        """One predict through the chaos hook and batcher/manager."""
        if self._faults is not None:
            await self._faults.before_predict()
        if self.batcher is not None:
            return await self.batcher.submit(x)
        return self.manager.predict(x)

    async def _handle_predict(
        self, body: bytes
    ) -> tuple[int, str, dict, dict | None]:
        if self._draining:
            return 503, "Service Unavailable", {
                "error": "server draining"
            }, None
        try:
            payload = json.loads(body.decode("utf-8"))
            x = np.asarray(payload["x"], dtype=np.float64)
        except (ValueError, KeyError, TypeError):
            return 400, "Bad Request", {
                "error": 'body must be JSON {"x": [[...], ...]}'
            }, None
        if x.ndim not in (1, 2) or x.size == 0:
            return 400, "Bad Request", {
                "error": "x must be one sample or a non-empty matrix"
            }, None
        x = np.atleast_2d(x)
        n_features = self.manager.current.n_features
        if x.shape[1] != n_features:
            return 400, "Bad Request", {
                "error": f"x has {x.shape[1]} features, model expects "
                         f"{n_features}"
            }, None
        if self._pending >= self.max_pending:
            # Shed instead of queueing unboundedly: the client backs off
            # and retries, the server stays answerable.
            self.n_shed += 1
            return 503, "Service Unavailable", {
                "error": f"server overloaded ({self._pending} requests "
                         "pending); retry later",
            }, {"Retry-After": str(RETRY_AFTER_SECONDS)}
        self._pending += 1
        self.pending_high_water = max(self.pending_high_water, self._pending)
        try:
            if self.request_timeout is not None:
                labels = await asyncio.wait_for(
                    self._submit(x), self.request_timeout
                )
            else:
                labels = await self._submit(x)
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            return 504, "Gateway Timeout", {
                "error": f"predict exceeded the {self.request_timeout:g}s "
                         "deadline"
            }, None
        except BatcherClosedError:
            # The drain race: accepted before shutdown, submitted after
            # the batcher closed.  A retryable condition, not a failure.
            return 503, "Service Unavailable", {
                "error": "server draining"
            }, None
        except Exception:
            error_id = uuid.uuid4().hex[:12]
            self.n_errors += 1
            log.exception("predict failed [error_id %s]", error_id)
            return 500, "Internal Server Error", {
                "error": "internal predictor error",
                "error_id": error_id,
            }, None
        finally:
            self._pending -= 1
        return 200, "OK", {
            "labels": labels.tolist(), "n": int(x.shape[0])
        }, None


async def _serve_async(manager: PredictorManager, host: str, port: int, *,
                       batch_window: float, max_batch: int, batching: bool,
                       max_pending: int, request_timeout: float | None,
                       watch: bool) -> dict:
    server = PredictServer(
        manager, host, port, batch_window=batch_window,
        max_batch=max_batch, batching=batching, max_pending=max_pending,
        request_timeout=request_timeout,
    )
    await server.start()
    mode = (
        f"micro-batched (window {batch_window * 1e3:g} ms, "
        f"max {max_batch} rows)"
        if batching
        else "unbatched"
    )
    predictor = manager.current
    print(
        f"serving {predictor.path} on http://{server.host}:{server.port} "
        f"[{mode}; {predictor.n_balls} balls, "
        f"{predictor.n_features} features]",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    loop.add_signal_handler(
        signal.SIGHUP,
        lambda: asyncio.ensure_future(manager.reload(reason="sighup")),
    )
    if watch:
        await manager.start_watching()
    try:
        await server.serve_until(stop)
    finally:
        await manager.stop_watching()
    stats = server.stats()
    print(f"drained cleanly after {stats['n_http_requests']} requests",
          flush=True)
    return stats


def run_server(artifact_path, host: str = "127.0.0.1", port: int = 8000, *,
               batch_window: float = 0.001, max_batch: int = 256,
               batching: bool = True, verify: bool = True,
               max_pending: int = 64, request_timeout: float | None = 30.0,
               poll_interval: float = 2.0, watch: bool = True) -> int:
    """Blocking entry point used by ``repro serve``.

    Loads the artifact (mmap, optionally checksum-verified) behind a
    :class:`~repro.serving.manager.PredictorManager`, serves until
    SIGTERM/SIGINT (reloading on artifact change, SIGHUP or
    ``POST /admin/reload``), drains, and returns 0 on a clean exit.
    """
    manager = PredictorManager(
        artifact_path, verify=verify, poll_interval=poll_interval
    )
    try:
        asyncio.run(
            _serve_async(
                manager, host, port, batch_window=batch_window,
                max_batch=max_batch, batching=batching,
                max_pending=max_pending, request_timeout=request_timeout,
                watch=watch,
            )
        )
    finally:
        manager.close()
    return 0
