"""Hot artifact reload: watch, validate, atomically swap predictors.

``repro serve`` used to be a single-artifact process — rolling a model
meant killing the server.  :class:`PredictorManager` removes that
restart: it owns the *current* :class:`~repro.serving.predictor.FrozenPredictor`
and replaces it **under live traffic** whenever the artifact file
changes, with three triggers:

* **polling** — a background task stats the artifact path every
  ``poll_interval`` seconds and reloads when the ``(mtime_ns, size)``
  signature changes (``repro freeze`` publishes by atomic rename, so a
  changed signature always means a complete new file);
* **SIGHUP** — the classic "reload your config" signal, wired up by
  ``run_server``;
* **``POST /admin/reload``** — explicit, synchronous, returns the swap
  record (what deployment scripts gate on).

The swap discipline (the whole point):

1. the candidate artifact is **loaded and validated first** — mmap,
   checksum verify, header/kind/array checks, plus a probe predict that
   exercises the full kernel path — all in a worker thread so the event
   loop keeps serving;
2. only a candidate that survives validation is swapped in: one
   reference assignment on the event loop, so every request observes
   either the old predictor or the new one, never a mixture (all predict
   calls are synchronous on the loop — a swap can never interleave with
   a running kernel pass);
3. the old predictor is retired: by the time the swap runs no kernel
   pass is mid-flight, so its mapping unmaps immediately (a lingering
   view defers the close to the next sweep rather than crashing);
4. a candidate that **fails** validation changes nothing: the old
   predictor keeps serving, the failure is recorded in the swap history
   and :attr:`last_error` (which degrades ``/readyz``), and the bad
   file's signature is remembered so polling does not retry it in a loop
   — only a *new* publish re-arms the watcher.

Every attempt (initial load, swap, rollback) is appended to a bounded
swap history, exposed verbatim on ``/healthz`` — the operator's flight
recorder for "what did this server actually load, and when".
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.core.granular_ball import DEFAULT_ASSIGN_CHUNK
from repro.serving.predictor import FrozenPredictor

__all__ = ["PredictorManager"]


class PredictorManager:
    """Owns the live predictor and swaps it safely on artifact change.

    Parameters
    ----------
    path:
        Artifact file to serve and watch.
    verify:
        Checksum-verify every load (initial and reload).  Keep on: a
        reload is exactly the moment a torn transport would bite.
    poll_interval:
        Seconds between artifact-signature polls once
        :meth:`start_watching` runs.
    history_limit:
        Swap-history entries retained (oldest dropped first).
    fault_injector:
        Optional :class:`~repro.serving.faults._FaultInjector` test hook;
        consulted before every load attempt.
    predictor:
        Adopt an already-loaded predictor instead of loading ``path``
        (used by :meth:`adopt`; the file is still watched/reloadable).
    """

    def __init__(self, path, *, verify: bool = True,
                 poll_interval: float = 2.0,
                 chunk_size: int = DEFAULT_ASSIGN_CHUNK,
                 history_limit: int = 32, fault_injector=None,
                 predictor: FrozenPredictor | None = None):
        self.path = Path(path)
        self._verify = bool(verify)
        self.poll_interval = float(poll_interval)
        self._chunk_size = int(chunk_size)
        self._faults = fault_injector
        self._history: deque[dict] = deque(maxlen=int(history_limit))
        self._lock: asyncio.Lock | None = None
        self._watch_task: asyncio.Task | None = None
        self._retired: list[FrozenPredictor] = []
        self.generation = 1
        self.n_reloads = 0
        self.last_error: str | None = None
        if predictor is None:
            predictor = FrozenPredictor.load(
                self.path, verify=verify, chunk_size=chunk_size
            )
        self._current = predictor
        self._signature = self._stat_signature()
        self._record("loaded", "startup", error=None, seconds=0.0)

    @classmethod
    def adopt(cls, predictor: FrozenPredictor,
              **kwargs) -> "PredictorManager":
        """Wrap an already-loaded predictor (its path becomes the watched
        artifact); used by ``PredictServer`` for plain-predictor callers."""
        return cls(predictor.path, predictor=predictor, **kwargs)

    # -- serving surface ------------------------------------------------

    @property
    def current(self) -> FrozenPredictor:
        """The live predictor (atomically replaced by reloads)."""
        return self._current

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with whichever predictor is live *now*.

        Handlers and the micro-batcher call through this indirection, so
        a batch pending across a swap flushes with the new model instead
        of touching unmapped memory.
        """
        return self._current.predict(x)

    @property
    def healthy(self) -> bool:
        """``False`` while the on-disk artifact is newer than what is
        serving because its last load failed (``/readyz`` degrades)."""
        return self.last_error is None

    def history(self) -> list[dict]:
        """The swap history, oldest first (exposed on ``/healthz``)."""
        return list(self._history)

    def stats(self) -> dict:
        return {
            "generation": self.generation,
            "n_reloads": self.n_reloads,
            "last_error": self.last_error,
            "watching": self._watch_task is not None
            and not self._watch_task.done(),
            "poll_interval_seconds": self.poll_interval,
        }

    # -- reload machinery -----------------------------------------------

    def _stat_signature(self):
        """Cheap change detector: atomic publish ⇒ new inode ⇒ new stat."""
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _load_candidate(self) -> FrozenPredictor:
        """Load + validate the on-disk artifact (runs in a worker thread).

        Validation is the load itself (magic/version/layout/checksum all
        raise) plus a probe predict so a candidate that maps fine but
        cannot answer (e.g. missing acceleration array, zero balls) is
        rejected before it ever sees traffic.
        """
        if self._faults is not None:
            self._faults.before_load(self.path)
        candidate = FrozenPredictor.load(
            self.path, verify=self._verify, chunk_size=self._chunk_size
        )
        try:
            candidate.predict(np.zeros((1, candidate.n_features)))
        except Exception:
            candidate.close()
            raise
        return candidate

    async def reload(self, reason: str = "admin") -> dict:
        """Load the artifact and swap it in; never breaks the old model.

        Returns the swap-history entry: ``status`` is ``"swapped"`` on
        success or ``"rolled-back"`` on any validation failure (in which
        case the previous predictor keeps serving and
        :attr:`last_error` is set).  Concurrent triggers serialise on an
        internal lock — one wins, the rest reload the already-new file
        and swap again harmlessly.
        """
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            signature = self._stat_signature()
            started = time.perf_counter()
            loop = asyncio.get_running_loop()
            try:
                if signature is None:
                    raise FileNotFoundError(
                        f"{self.path}: artifact file is missing"
                    )
                candidate = await loop.run_in_executor(
                    None, self._load_candidate
                )
            except Exception as exc:
                # Roll back: keep the old predictor, remember the bad
                # file's signature so polling waits for a *new* publish.
                self._signature = signature
                self.last_error = f"{type(exc).__name__}: {exc}"
                return self._record(
                    "rolled-back", reason, error=self.last_error,
                    seconds=time.perf_counter() - started,
                )
            old, self._current = self._current, candidate
            self.generation += 1
            self.n_reloads += 1
            self._signature = signature
            self.last_error = None
            self._retire(old)
            return self._record(
                "swapped", reason, error=None,
                seconds=time.perf_counter() - started,
            )

    async def maybe_reload(self) -> dict | None:
        """Reload only if the artifact signature changed since last seen."""
        if self._stat_signature() == self._signature:
            return None
        return await self.reload(reason="poll")

    def _record(self, status: str, reason: str, *, error: str | None,
                seconds: float) -> dict:
        entry = {
            "status": status,
            "reason": reason,
            "generation": self.generation,
            "path": str(self.path),
            "error": error,
            "seconds": round(float(seconds), 6),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        self._history.append(entry)
        return entry

    def _retire(self, predictor: FrozenPredictor) -> None:
        """Unmap a replaced predictor; defer if a view is still alive."""
        try:
            predictor.close()
        except BufferError:
            self._retired.append(predictor)

    def _sweep_retired(self) -> None:
        still = []
        for predictor in self._retired:
            try:
                predictor.close()
            except BufferError:
                still.append(predictor)
        self._retired = still

    # -- watching -------------------------------------------------------

    async def start_watching(self) -> None:
        """Start the background signature-poll task (idempotent)."""
        if self._watch_task is not None and not self._watch_task.done():
            return
        self._watch_task = asyncio.ensure_future(self._watch_loop())

    async def _watch_loop(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            self._sweep_retired()
            try:
                await self.maybe_reload()
            except Exception:  # pragma: no cover - reload() records errors
                pass

    async def stop_watching(self) -> None:
        if self._watch_task is None:
            return
        self._watch_task.cancel()
        try:
            await self._watch_task
        except asyncio.CancelledError:
            pass
        self._watch_task = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the live predictor and any retired mappings."""
        self._sweep_retired()
        if self._current is not None:
            try:
                self._current.close()
            except BufferError:  # pragma: no cover - views owned by caller
                pass

    def __enter__(self) -> "PredictorManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
