"""The binary wire protocol: raw array rows instead of JSON float text.

At high concurrency the serving hot path spends more time encoding and
decoding JSON float literals than running the predict kernel
(``BENCH_serve.json`` → ``wire_formats``).  This module defines the
negotiated alternative: a tiny versioned binary frame that carries the
query rows (and the label response) as raw C-contiguous array bytes, so
both sides do one ``np.frombuffer`` instead of a float-text round trip.

Negotiation is plain HTTP content typing: a client that POSTs
``Content-Type: application/x-gbaf-batch`` gets a binary response body
with the same content type; JSON remains the default and error bodies
are always JSON (an error payload is human-facing and tiny).  A server
that does not speak the format answers ``415 Unsupported Media Type``
and :class:`~repro.serving.client.PredictClient` falls back to JSON
transparently.

The frame (all integers little-endian)::

    offset 0   magic  b"GBWB"                  (4 bytes)
    offset 4   protocol version, uint8 = 1     (1 byte)
    offset 5   frame kind, uint8               (1 byte)  1=request 2=response
    offset 6   dtype code, uint8               (1 byte)  see DTYPE_CODES
    offset 7   reserved, uint8 = 0             (1 byte)
    offset 8   n_rows, uint32                  (4 bytes)
    offset 12  n_cols, uint32                  (4 bytes)
    offset 16  payload: n_rows * n_cols raw C-order elements

Like the artifact container, the decoder **fails loudly**: bad magic, a
future version, an unknown kind/dtype, a payload shorter or longer than
the header promises — each raises :class:`WireError` naming the problem.
A frame is either exactly right or rejected; nothing is ever silently
reinterpreted.  Empty batches (``n_rows == 0``) are valid frames at this
layer — rejecting them is the server's admission decision, not the
codec's.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "WIRE_CONTENT_TYPE",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "DTYPE_CODES",
    "WireError",
    "encode_frame",
    "decode_frame",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]

#: The negotiated content type; anything else is served as JSON.
WIRE_CONTENT_TYPE = "application/x-gbaf-batch"

WIRE_MAGIC = b"GBWB"
WIRE_VERSION = 1

KIND_REQUEST = 1
KIND_RESPONSE = 2

#: Wire dtype codes.  Requests carry float rows (float32 is accepted and
#: widened to float64 server-side); responses carry integer labels.
DTYPE_CODES: dict[int, np.dtype] = {
    1: np.dtype("<f8"),
    2: np.dtype("<f4"),
    3: np.dtype("<i8"),
    4: np.dtype("<i4"),
}
_CODE_FOR_DTYPE = {dtype: code for code, dtype in DTYPE_CODES.items()}

_HEADER = struct.Struct("<4sBBBBII")
HEADER_BYTES = _HEADER.size  # 16


class WireError(ValueError):
    """A malformed wire frame (bad magic/version/kind/dtype/size).

    Subclasses :class:`ValueError` so generic bad-input handling — the
    server's 400 path, callers that predate the binary protocol — keeps
    working without knowing the new type.
    """


def encode_frame(array: np.ndarray, kind: int) -> bytes:
    """Serialise a 2-D array as one wire frame (header + raw bytes)."""
    array = np.ascontiguousarray(array)
    if array.ndim != 2:
        raise WireError(f"wire frames carry 2-D arrays, got {array.ndim}-D")
    dtype = array.dtype.newbyteorder("<")
    code = _CODE_FOR_DTYPE.get(dtype)
    if code is None:
        raise WireError(
            f"dtype {array.dtype} is not wire-encodable "
            f"(supported: {sorted(str(d) for d in _CODE_FOR_DTYPE)})"
        )
    header = _HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, kind, code, 0,
        array.shape[0], array.shape[1],
    )
    return header + array.astype(dtype, copy=False).tobytes(order="C")


def decode_frame(buf: bytes, expect_kind: int | None = None) -> np.ndarray:
    """Parse one wire frame back into a read-only 2-D array.

    The returned array is a zero-copy view over ``buf`` whenever the
    payload is non-empty.
    """
    if len(buf) < HEADER_BYTES:
        raise WireError(
            f"frame is {len(buf)} bytes, shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    magic, version, kind, code, _reserved, n_rows, n_cols = _HEADER.unpack(
        buf[:HEADER_BYTES]
    )
    if magic != WIRE_MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire protocol version {version} is not supported "
            f"(this build speaks version {WIRE_VERSION})"
        )
    if expect_kind is not None and kind != expect_kind:
        raise WireError(
            f"frame kind {kind} where kind {expect_kind} was expected"
        )
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise WireError(f"unknown frame kind {kind}")
    dtype = DTYPE_CODES.get(code)
    if dtype is None:
        raise WireError(f"unknown wire dtype code {code}")
    expected = HEADER_BYTES + n_rows * n_cols * dtype.itemsize
    if len(buf) != expected:
        raise WireError(
            f"frame is {len(buf)} bytes but the header promises "
            f"{expected} ({n_rows}x{n_cols} {dtype})"
        )
    payload = np.frombuffer(buf, dtype=dtype, offset=HEADER_BYTES)
    array = payload.reshape(n_rows, n_cols)
    array.flags.writeable = False
    return array


def encode_request(x: np.ndarray) -> bytes:
    """Encode a query batch; accepts anything array-like, keeps float32."""
    x = np.asarray(x)
    if x.dtype not in (np.dtype("<f4"), np.dtype("float32")):
        x = np.asarray(x, dtype=np.float64)
    return encode_frame(np.atleast_2d(x), KIND_REQUEST)


def decode_request(buf: bytes) -> np.ndarray:
    """Decode a request frame into the float64 rows the kernel expects."""
    x = decode_frame(buf, expect_kind=KIND_REQUEST)
    return np.ascontiguousarray(x, dtype=np.float64)


def encode_response(labels: np.ndarray) -> bytes:
    """Encode a label vector as a single-column int64 response frame."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1, 1)
    return encode_frame(labels, KIND_RESPONSE)


def decode_response(buf: bytes) -> np.ndarray:
    """Decode a response frame back into the 1-D int64 label vector."""
    labels = decode_frame(buf, expect_kind=KIND_RESPONSE)
    if labels.shape[1] != 1:
        raise WireError(
            f"response frames carry one label column, got {labels.shape[1]}"
        )
    return np.ascontiguousarray(labels[:, 0], dtype=np.int64)
