"""Frozen model prediction — the hot half of the freeze/serve split.

:class:`FrozenPredictor` answers the GBC decision rule from a memory-mapped
artifact.  Its contract, pinned by ``tests/serving``:

* **Bit-identical to the in-memory classifier.**  For the same query batch
  it returns exactly the labels a fitted
  :class:`~repro.classifiers.gb_classifier.GranularBallClassifier` would:
  both paths run the same chunked kernel
  (:func:`repro.core.granular_ball.assign_nearest_ball`) with the same
  canonical chunk size over the same arrays — the artifact even carries the
  precomputed squared centre norms so no acceleration state is derived
  twice.
* **Allocation-free steady state.**  The kernel's scratch buffers live on
  the predictor and are reused across calls; a predict allocates nothing
  beyond the output vector (plus numpy's small per-chunk argmin index
  temporary).
* **Shared, read-only model state.**  The ball arrays are views into the
  mapped file; N predictor processes on one machine share a single
  page-cache copy.
"""

from __future__ import annotations

import numpy as np

from repro.core.granular_ball import (
    DEFAULT_ASSIGN_CHUNK,
    AssignWorkspace,
    assign_nearest_ball,
)
from repro.serving.artifact import Artifact, load_artifact

__all__ = ["FrozenPredictor"]

_REQUIRED_ARRAYS = ("centers", "radii", "labels", "center_sq_norms")


class FrozenPredictor:
    """Read-only granular-ball predictor over a frozen artifact.

    Build one with :meth:`load` (the common case) or from an already-open
    :class:`~repro.serving.artifact.Artifact`.

    Parameters
    ----------
    artifact:
        A loaded artifact of kind ``granular-ball-classifier``.
    chunk_size:
        Query rows per kernel chunk.  **Leave at the default** unless you
        know what you are doing: the canonical chunk size is part of the
        bit-parity contract with the in-memory classifier.
    """

    def __init__(self, artifact: Artifact,
                 chunk_size: int = DEFAULT_ASSIGN_CHUNK):
        kind = artifact.meta.get("kind")
        if kind != "granular-ball-classifier":
            raise ValueError(
                f"{artifact.path}: artifact kind {kind!r} is not servable "
                "by FrozenPredictor (expected 'granular-ball-classifier')"
            )
        missing = [n for n in _REQUIRED_ARRAYS if n not in artifact.arrays]
        if missing:
            raise ValueError(
                f"{artifact.path}: artifact is missing arrays {missing}"
            )
        self._artifact = artifact
        self._centers = artifact.arrays["centers"]
        self._radii = artifact.arrays["radii"]
        self._labels = artifact.arrays["labels"]
        self._centers_sq = artifact.arrays["center_sq_norms"]
        self._chunk_size = int(chunk_size)
        self.classes_ = np.asarray(artifact.meta.get("classes", []))
        self.n_balls = int(self._radii.shape[0])
        self.n_features = int(self._centers.shape[1])
        self._workspace = AssignWorkspace(
            self._chunk_size, self.n_balls, self.n_features
        )
        # Reused output buffer for the assignment indices; grown on demand.
        self._assign_out = np.empty(self._chunk_size, dtype=np.intp)

    @classmethod
    def load(cls, path, verify: bool = True,
             chunk_size: int = DEFAULT_ASSIGN_CHUNK) -> "FrozenPredictor":
        """Map ``path`` read-only and wrap it in a predictor.

        ``verify`` checks the artifact checksum once at load (see
        :func:`repro.serving.artifact.load_artifact`).
        """
        return cls(load_artifact(path, verify=verify), chunk_size=chunk_size)

    @property
    def meta(self) -> dict:
        """The artifact's frozen metadata (params, provenance, counts)."""
        return self._artifact.meta

    @property
    def path(self):
        return self._artifact.path

    @property
    def nbytes(self) -> int:
        """Size of the mapped artifact in bytes."""
        return self._artifact.nbytes

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels of the nearest-surface balls, one per query row.

        Canonicalises the input exactly as the in-memory classifier does
        (``np.atleast_2d`` over float64), then runs the shared chunked
        kernel against the mapped arrays.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"query has {x.shape[1]} features, model expects "
                f"{self.n_features}"
            )
        n = x.shape[0]
        if n > self._assign_out.shape[0]:
            self._assign_out = np.empty(
                max(n, 2 * self._assign_out.shape[0]), dtype=np.intp
            )
        assigned = assign_nearest_ball(
            x,
            self._centers,
            self._radii,
            self._centers_sq,
            chunk_size=self._chunk_size,
            workspace=self._workspace,
            out=self._assign_out[:n],
        )
        return self._labels[assigned].astype(np.intp, copy=False)

    @property
    def closed(self) -> bool:
        """``True`` once the underlying mapping has been released."""
        return self._artifact.closed

    def close(self) -> None:
        """Release the underlying mapping."""
        self._centers = self._radii = None
        self._labels = self._centers_sq = None
        self._artifact.close()

    def __enter__(self) -> "FrozenPredictor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
