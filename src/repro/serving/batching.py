"""Micro-batching: coalesce concurrent predict calls into vectorised passes.

Per-request numpy dispatch overhead dwarfs per-row compute for small
queries; at high concurrency the winning move is to let requests pool for
a very short window (~1 ms) and answer the pool with **one** kernel pass.
:class:`MicroBatcher` implements that policy for a single asyncio event
loop:

* a submit starts (or joins) the current batch;
* the batch flushes when the window timer fires **or** the pooled row
  count reaches ``max_batch`` — whichever comes first, so a burst never
  waits out the timer;
* the flush concatenates the pooled queries, runs the predict function
  once, and slices the result back to each waiter;
* :meth:`aclose` drains the pending batch before refusing new work, which
  is what makes SIGTERM shutdown lossless.

The predict function runs synchronously on the event loop: it is a single
vectorised numpy pass, which is exactly the granularity at which blocking
the loop is cheaper than any hand-off.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BatcherClosedError", "BatchStats", "MicroBatcher"]


class BatcherClosedError(RuntimeError):
    """Submit refused because the batcher is closed (server draining).

    A dedicated type so the server can answer 503 for the drain race
    without also masking genuine predictor failures (which must surface
    as 500s) behind the same ``except RuntimeError``.  Subclasses
    :class:`RuntimeError` for compatibility with callers that predate the
    distinction.
    """


@dataclass
class BatchStats:
    """Counters exposed on ``/healthz`` and asserted by the test-suite."""

    n_requests: int = 0
    n_rows: int = 0
    n_batches: int = 0
    n_full_flushes: int = 0  # flushed by hitting max_batch, not the timer
    max_batch_rows: int = 0
    batch_rows_total: int = 0

    def as_dict(self) -> dict:
        mean = self.batch_rows_total / self.n_batches if self.n_batches else 0.0
        return {
            "n_requests": self.n_requests,
            "n_rows": self.n_rows,
            "n_batches": self.n_batches,
            "n_full_flushes": self.n_full_flushes,
            "max_batch_rows": self.max_batch_rows,
            "mean_batch_rows": mean,
        }


class MicroBatcher:
    """Accumulate predict requests briefly, answer them in one pass.

    Parameters
    ----------
    predict:
        ``(n, p) -> (n,)`` vectorised prediction function (typically
        ``FrozenPredictor.predict``).
    window:
        Seconds a lone request waits for company before the batch flushes
        (default 1 ms).  ``0`` flushes on the next loop iteration, which
        still coalesces bursts that arrive in the same tick.
    max_batch:
        Row threshold that flushes immediately without waiting the window.
    """

    def __init__(self, predict, *, window: float = 0.001,
                 max_batch: int = 256):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._predict = predict
        self._window = float(window)
        self._max_batch = int(max_batch)
        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._pending_rows = 0
        self._timer: asyncio.TimerHandle | None = None
        self._closed = False
        self.stats = BatchStats()

    async def submit(self, x: np.ndarray) -> np.ndarray:
        """Queue a query batch; resolves with its labels after the flush."""
        if self._closed:
            raise BatcherClosedError(
                "MicroBatcher is closed (draining/shut down)"
            )
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((x, future))
        self._pending_rows += x.shape[0]
        self.stats.n_requests += 1
        self.stats.n_rows += x.shape[0]
        if self._pending_rows >= self._max_batch:
            self.stats.n_full_flushes += 1
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self._window, self._flush)
        return await future

    def _flush(self) -> None:
        """Answer every pending request with one vectorised pass."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        rows, self._pending_rows = self._pending_rows, 0
        self.stats.n_batches += 1
        self.stats.batch_rows_total += rows
        self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
        xs = (
            batch[0][0]
            if len(batch) == 1
            else np.concatenate([x for x, _ in batch], axis=0)
        )
        try:
            labels = self._predict(xs)
        except Exception as exc:  # propagate to every waiter, not the loop
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        offset = 0
        for x, future in batch:
            n = x.shape[0]
            if not future.done():
                future.set_result(labels[offset:offset + n])
            offset += n

    async def aclose(self) -> None:
        """Flush whatever is pending, then refuse further submits."""
        self._closed = True
        self._flush()

    @property
    def pending_rows(self) -> int:
        """Rows currently waiting for the next flush."""
        return self._pending_rows
