"""Fault injection for the serving resilience suite (the chaos harness).

Production failure modes are rare by construction, so the test-suite has
to manufacture them.  :class:`_FaultInjector` is the seam: the server and
the :class:`~repro.serving.manager.PredictorManager` accept one through
their ``fault_injector`` test hook and consult it at the few points where
real deployments actually break —

* **before a predict** (:meth:`before_predict`): inject queueing delay
  (drives the admission-control and deadline paths) or a hard predictor
  failure (drives the 500-with-error-id path);
* **before an artifact load** (:meth:`before_load`): fail the next N
  loads, as a torn copy or bad disk would (drives reload rollback);
* **on a connection** (:meth:`take_connection_drop`,
  :meth:`take_forced_close`, :meth:`take_truncated_response`): drop the
  socket without a response, answer with ``Connection: close``, or send
  only a prefix of the response bytes before closing — a mid-body drop
  (drives client reconnect/retry, including the retry-after-partial-read
  path).

Multi-model serving adds a second axis: faults can be armed **per
model**.  :meth:`for_model` returns a scoped child injector that the
:class:`~repro.serving.router.ModelRouter` hands to that model's
manager and that the server consults for that model's predicts — so a
test can make exactly one model's loads fail while its siblings stay
healthy.  The parent's counters aggregate nothing; each scope counts
its own fired faults.

Armed faults are one-shot counters, so tests stay deterministic: arm
exactly N faults, observe exactly N failures, and the system must be
healthy again afterwards.  The ``n_*`` attributes count faults actually
fired.

:func:`corrupt_artifact` is the publish-side half of the harness: it
damages an artifact file in place (bit flip, truncation, header garbage)
the way a torn or bit-rotted publish would, for reload-rollback tests.

Everything here is test/bench machinery — no production code path
constructs an injector on its own.
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

__all__ = ["FaultInjected", "_FaultInjector", "corrupt_artifact"]


class FaultInjected(Exception):
    """Raised by an armed fault; deliberately NOT a ValueError/RuntimeError
    subclass so handlers cannot accidentally classify it as a known,
    benign condition."""


class _FaultInjector:
    """Deterministic one-shot fault source for server/manager test hooks."""

    def __init__(self):
        #: Seconds every predict waits before running (0 = no delay).
        self.predict_delay = 0.0
        self._predict_failures = 0
        self._load_failures = 0
        self._connection_drops = 0
        self._forced_closes = 0
        self._truncated_responses = 0
        #: Per-model child injectors (see :meth:`for_model`).
        self._models: dict[str, "_FaultInjector"] = {}
        # Counters of faults actually fired, asserted by the tests.
        self.n_delays = 0
        self.n_predict_failures = 0
        self.n_load_failures = 0
        self.n_connection_drops = 0
        self.n_forced_closes = 0
        self.n_truncated_responses = 0

    def for_model(self, name: str) -> "_FaultInjector":
        """The scoped injector for one model (created on first use).

        The router passes the scoped injector to that model's manager,
        and the server consults it via ``before_predict(model=name)`` —
        arming it therefore breaks exactly one model.
        """
        if name not in self._models:
            self._models[name] = _FaultInjector()
        return self._models[name]

    # -- arming ---------------------------------------------------------

    def delay_predicts(self, seconds: float) -> None:
        """Every subsequent predict sleeps this long before running."""
        self.predict_delay = float(seconds)

    def fail_predicts(self, n: int = 1) -> None:
        """The next ``n`` predicts raise :class:`FaultInjected`."""
        self._predict_failures += int(n)

    def fail_loads(self, n: int = 1) -> None:
        """The next ``n`` artifact loads raise :class:`FaultInjected`."""
        self._load_failures += int(n)

    def drop_connections(self, n: int = 1) -> None:
        """The next ``n`` requests get their socket closed, no response."""
        self._connection_drops += int(n)

    def force_close_responses(self, n: int = 1) -> None:
        """The next ``n`` responses carry ``Connection: close``."""
        self._forced_closes += int(n)

    def truncate_responses(self, n: int = 1) -> None:
        """The next ``n`` responses are cut off mid-body, then closed."""
        self._truncated_responses += int(n)

    # -- hooks consulted by server/manager ------------------------------

    async def before_predict(self, model: str | None = None) -> None:
        """Server hook: runs before each predict is submitted.

        ``model`` consults that model's scoped injector first (if one
        was ever armed), then this injector's own faults.
        """
        if model is not None and model in self._models:
            await self._models[model].before_predict()
        if self.predict_delay > 0:
            self.n_delays += 1
            await asyncio.sleep(self.predict_delay)
        if self._predict_failures > 0:
            self._predict_failures -= 1
            self.n_predict_failures += 1
            raise FaultInjected("injected predictor failure")

    def before_load(self, path) -> None:
        """Manager hook: runs before each artifact load attempt."""
        if self._load_failures > 0:
            self._load_failures -= 1
            self.n_load_failures += 1
            raise FaultInjected(f"injected load failure for {path}")

    def take_connection_drop(self) -> bool:
        """Server hook: ``True`` = close this connection without replying."""
        if self._connection_drops > 0:
            self._connection_drops -= 1
            self.n_connection_drops += 1
            return True
        return False

    def take_forced_close(self) -> bool:
        """Server hook: ``True`` = answer, but with ``Connection: close``."""
        if self._forced_closes > 0:
            self._forced_closes -= 1
            self.n_forced_closes += 1
            return True
        return False

    def take_truncated_response(self) -> bool:
        """Server hook: ``True`` = send half the response bytes, close."""
        if self._truncated_responses > 0:
            self._truncated_responses -= 1
            self.n_truncated_responses += 1
            return True
        return False


def corrupt_artifact(path, mode: str = "flip-bit") -> None:
    """Damage an artifact file in place, simulating a broken publish.

    Modes
    -----
    ``flip-bit``
        Flip one bit in the data section (checksum verification fails).
    ``truncate``
        Drop the final quarter of the file (size validation fails).
    ``garbage-header``
        Overwrite the JSON header bytes (header parse fails).

    Each mode produces a file :func:`~repro.serving.artifact.load_artifact`
    refuses with :class:`ValueError` — never one that silently serves
    wrong predictions.
    """
    path = Path(path)
    raw = bytearray(path.read_bytes())
    if mode == "flip-bit":
        raw[-8] ^= 0x40  # inside the last array of the data section
    elif mode == "truncate":
        raw = raw[: max(16, 3 * len(raw) // 4)]
    elif mode == "garbage-header":
        # Past magic/version/length prefix, into the JSON header itself.
        for i in range(16, min(48, len(raw))):
            raw[i] = 0xFF
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(raw)
        handle.flush()
        os.fsync(handle.fileno())
