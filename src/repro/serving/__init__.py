"""The serving subsystem: freeze once, predict millions of times.

Every model in this library is write-once/read-many — granulation is the
expensive build step, prediction afterwards is pure array lookups.  This
package is the "read many" half of that asymmetry (cf. the ZXC WORM codec
design: spend unbounded encoder time once so the million-times-repeated
decode path is as fast as the hardware allows):

* :mod:`repro.serving.artifact` — a versioned, checksummed, mmap-able
  binary container for frozen model state (SoA ball arrays + precomputed
  acceleration state), published by atomic rename.
* :mod:`repro.serving.predictor` — :class:`FrozenPredictor`, whose batched
  predict path is bit-identical to a fitted
  :class:`~repro.classifiers.gb_classifier.GranularBallClassifier` while
  allocating nothing per request beyond the output.
* :mod:`repro.serving.batching` — :class:`MicroBatcher`, coalescing
  concurrent requests into one vectorised pass per ~1 ms window.
* :mod:`repro.serving.manager` — :class:`PredictorManager`, hot artifact
  reload: watch the artifact path, validate the replacement, swap it
  atomically under live traffic, roll back on a corrupt publish.
* :mod:`repro.serving.router` — :class:`ModelRouter`, one server process
  routing many model names to independent managers
  (``POST /models/<name>/predict``), with per-model reload and fault
  isolation and all-models-ready aggregate readiness.
* :mod:`repro.serving.wire` — the versioned binary request/response
  codec (``Content-Type: application/x-gbaf-batch``): raw C-contiguous
  array rows instead of JSON float text on the hot path.
* :mod:`repro.serving.server` — the ``repro serve`` asyncio HTTP service
  with admission control, per-request deadlines, liveness/readiness
  endpoints and graceful SIGTERM drain.
* :mod:`repro.serving.client` — :class:`~repro.serving.client.PredictClient`
  with reconnect-on-close and capped exponential backoff, so fleets ride
  through reloads and shedding invisibly.
* :mod:`repro.serving.faults` — the chaos harness
  (:class:`~repro.serving.faults._FaultInjector`) driving the
  resilience test-suite.

See ``docs/architecture/serving.md`` for the format layout, the parity
contract, the micro-batching design and the resilience layer.
"""

from repro.serving.artifact import (
    Artifact,
    FORMAT_VERSION,
    freeze_classifier,
    load_artifact,
    write_artifact,
)
from repro.serving.batching import BatcherClosedError, MicroBatcher
from repro.serving.manager import PredictorManager
from repro.serving.predictor import FrozenPredictor
from repro.serving.router import ModelRouter, UnknownModelError
from repro.serving.wire import (
    WIRE_CONTENT_TYPE,
    WIRE_VERSION,
    WireError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

__all__ = [
    "Artifact",
    "BatcherClosedError",
    "FORMAT_VERSION",
    "FrozenPredictor",
    "MicroBatcher",
    "ModelRouter",
    "PredictorManager",
    "UnknownModelError",
    "WIRE_CONTENT_TYPE",
    "WIRE_VERSION",
    "WireError",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "freeze_classifier",
    "load_artifact",
    "write_artifact",
]
