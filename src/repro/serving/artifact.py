"""Versioned, checksummed, mmap-able model artifacts.

The container holds named float/int arrays (struct-of-arrays model state)
behind a small self-describing header::

    offset 0   magic          b"GBAF"                      (4 bytes)
    offset 4   format version uint32, little-endian        (4 bytes)
    offset 8   header length  uint64, little-endian        (8 bytes)
    offset 16  header         UTF-8 JSON
    ...        zero padding to a 64-byte boundary
    data       the arrays, each at a 64-byte-aligned offset
               (relative offsets recorded in the header)

The header JSON records every array's dtype/shape/offset, arbitrary model
metadata, and a CRC-32 over the whole data section.  Design goals, in
order:

* **mmap-read-only load.**  :func:`load_artifact` maps the file and hands
  out zero-copy array views; N serving processes opening the same artifact
  share one page-cache copy, so attach time is near zero and memory cost
  is paid once per machine, not per process (the lesson of the PR 3 data
  plane, applied to model state).
* **Fail loudly.**  A wrong magic, a future format version, a truncated
  file or a flipped payload bit each raise :class:`ValueError` with a
  message naming the problem — never an opaque numpy/JSON error.
* **Publish atomically.**  :func:`write_artifact` spools to a temporary
  sibling, fsyncs, and ``os.replace``-s into place, so readers only ever
  see complete artifacts (same discipline as the experiment cell store).

64-byte alignment keeps every array cacheline- and SIMD-aligned however
the preceding arrays are sized.
"""

from __future__ import annotations

import json
import mmap
import os
import time
import zlib
from pathlib import Path

import numpy as np

__all__ = [
    "Artifact",
    "FORMAT_VERSION",
    "MAGIC",
    "freeze_classifier",
    "load_artifact",
    "write_artifact",
]

MAGIC = b"GBAF"
FORMAT_VERSION = 1

_ALIGN = 64
_PREFIX_BYTES = 16  # magic + version + header length


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _corrupt(path, why: str) -> ValueError:
    return ValueError(f"{path}: corrupt model artifact — {why}")


def write_artifact(path, arrays: dict[str, np.ndarray], meta: dict) -> dict:
    """Write an artifact file atomically; returns the header written.

    Parameters
    ----------
    path:
        Destination file.  The write spools to a ``.tmp-<pid>`` sibling in
        the same directory and renames into place, so a crash never leaves
        a half-written artifact under the final name.
    arrays:
        Named model arrays.  Stored C-contiguous in insertion order.
    meta:
        JSON-serialisable model metadata, stored verbatim in the header.
    """
    path = Path(path)
    canonical = {
        name: np.ascontiguousarray(array) for name, array in arrays.items()
    }
    layout = {}
    rel = 0
    for name, array in canonical.items():
        rel = _align(rel)
        layout[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": rel,
            "nbytes": array.nbytes,
        }
        rel += array.nbytes
    data_nbytes = rel

    crc = 0
    cursor = 0
    for name, array in canonical.items():
        pad = layout[name]["offset"] - cursor
        if pad:
            crc = zlib.crc32(b"\0" * pad, crc)
        crc = zlib.crc32(array.view(np.uint8).reshape(-1).data, crc)
        cursor = layout[name]["offset"] + array.nbytes

    header = {
        "arrays": layout,
        "meta": meta,
        "data_nbytes": data_nbytes,
        "data_crc32": crc,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PREFIX_BYTES + len(header_bytes))

    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(FORMAT_VERSION.to_bytes(4, "little"))
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(header_bytes)
            handle.write(b"\0" * (data_start - _PREFIX_BYTES - len(header_bytes)))
            cursor = 0
            for name, array in canonical.items():
                pad = layout[name]["offset"] - cursor
                if pad:
                    handle.write(b"\0" * pad)
                handle.write(array.view(np.uint8).reshape(-1).data)
                cursor = layout[name]["offset"] + array.nbytes
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return header


class Artifact:
    """A loaded (memory-mapped) model artifact.

    Attributes
    ----------
    arrays:
        Name → read-only zero-copy array view into the mapping.
    meta:
        The metadata dict stored at freeze time.
    version:
        Format version of the file.
    nbytes:
        Total file size in bytes.

    The mapping stays open for the life of the object (array views borrow
    it); use as a context manager or call :meth:`close` when done.
    """

    def __init__(self, path, version: int, meta: dict,
                 arrays: dict[str, np.ndarray], mapping: mmap.mmap,
                 nbytes: int):
        self.path = Path(path)
        self.version = int(version)
        self.meta = meta
        self.arrays = arrays
        self.nbytes = int(nbytes)
        self._mapping = mapping

    @property
    def closed(self) -> bool:
        """``True`` once the mapping has been released."""
        return self._mapping is None

    def close(self) -> None:
        """Release the mapping (every array view must be dropped first)."""
        self.arrays = {}
        if self._mapping is not None:
            try:
                self._mapping.close()
            except BufferError:
                raise BufferError(
                    f"{self.path}: cannot close the artifact while array "
                    "views into it are still alive; drop them first"
                ) from None
            self._mapping = None

    def __enter__(self) -> "Artifact":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_artifact(path, verify: bool = True) -> Artifact:
    """Map an artifact read-only and return zero-copy array views.

    Parameters
    ----------
    path:
        Artifact file written by :func:`write_artifact`.
    verify:
        Check the data-section CRC-32 (touches every page once; later
        readers of the same artifact hit the shared page cache).  Pass
        ``False`` for the fastest possible attach when the file's
        integrity is assured by other means.

    Raises
    ------
    ValueError
        On a wrong magic, a format version this build cannot read, a
        corrupt header, a truncated file, or (with ``verify``) a checksum
        mismatch.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX_BYTES)
        if len(prefix) < _PREFIX_BYTES or prefix[:4] != MAGIC:
            raise ValueError(
                f"{path}: not a model artifact (bad magic; expected "
                f"{MAGIC!r})"
            )
        version = int.from_bytes(prefix[4:8], "little")
        if not 1 <= version <= FORMAT_VERSION:
            raise ValueError(
                f"{path}: artifact format version {version} is not "
                f"readable by this build (supports 1..{FORMAT_VERSION}); "
                "upgrade, or re-freeze the model with this release"
            )
        header_len = int.from_bytes(prefix[8:16], "little")
        file_size = os.fstat(handle.fileno()).st_size
        if _PREFIX_BYTES + header_len > file_size:
            raise _corrupt(path, "header extends past end of file")
        header_bytes = handle.read(header_len)
        try:
            header = json.loads(header_bytes.decode("utf-8"))
            layout = header["arrays"]
            meta = header["meta"]
            data_nbytes = int(header["data_nbytes"])
            data_crc32 = int(header["data_crc32"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise _corrupt(path, f"unreadable header ({exc})") from None

        data_start = _align(_PREFIX_BYTES + header_len)
        if data_start + data_nbytes != file_size:
            raise _corrupt(
                path,
                f"expected {data_start + data_nbytes} bytes, file has "
                f"{file_size} (truncated or trailing garbage)",
            )

        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        if verify:
            actual = zlib.crc32(memoryview(mapping)[data_start:])
            if actual != data_crc32:
                raise _corrupt(
                    path,
                    f"data checksum mismatch (stored {data_crc32:#010x}, "
                    f"computed {actual:#010x})",
                )
        arrays = {}
        for name, spec in layout.items():
            offset = data_start + int(spec["offset"])
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if offset + count * dtype.itemsize > file_size:
                raise _corrupt(path, f"array {name!r} extends past end of file")
            arrays[name] = np.frombuffer(
                mapping, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
    except Exception:
        mapping.close()
        raise
    return Artifact(path, version, meta, arrays, mapping, file_size)


def freeze_classifier(clf, path) -> dict:
    """Freeze a fitted :class:`GranularBallClassifier` into an artifact.

    The artifact stores the SoA ball geometry (centres, radii, original
    labels and their 0..K-1 codes) plus the precomputed acceleration state
    (cached squared centre norms) that the chunked nearest-ball kernel
    consumes — exactly the arrays the in-memory predict path uses, so
    :class:`~repro.serving.predictor.FrozenPredictor` is bit-identical to
    ``clf.predict`` by construction.

    Returns the header dict written (handy for logging the layout).
    """
    from repro.classifiers.base import validate_fitted

    validate_fitted(clf)
    ball_set = clf.ball_set_
    if len(ball_set) == 0:
        raise ValueError("cannot freeze an empty ball set")
    classes = np.asarray(clf.classes_)
    labels = ball_set.labels
    label_codes = np.searchsorted(classes, labels).astype(np.int64)
    arrays = {
        "centers": ball_set.centers.astype(np.float64, copy=False),
        "radii": ball_set.radii.astype(np.float64, copy=False),
        "labels": labels.astype(np.int64, copy=False),
        "label_codes": label_codes,
        "center_sq_norms": ball_set.center_sq_norms.astype(
            np.float64, copy=False
        ),
    }
    meta = {
        "kind": "granular-ball-classifier",
        "n_balls": int(len(ball_set)),
        "n_features": int(ball_set.centers.shape[1]),
        "n_source_samples": int(ball_set.n_source_samples),
        "classes": [int(c) for c in classes],
        "params": {
            "rho": int(clf.rho),
            "random_state": clf.random_state,
            "include_orphans": bool(clf.include_orphans),
            "backend": str(clf.backend),
        },
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    return write_artifact(path, arrays, meta)
