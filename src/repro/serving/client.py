"""Minimal asyncio HTTP client for the predict service.

Speaks just enough keep-alive HTTP/1.1 for the serving endpoints; used by
the test-suite, ``benchmarks/bench_serve.py`` and the CI serve-smoke —
anything that needs to drive ``repro serve`` without a third-party HTTP
dependency.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

__all__ = ["PredictClient"]


class PredictClient:
    """One keep-alive connection to a :class:`PredictServer`.

    Usage::

        client = await PredictClient.connect("127.0.0.1", 8000)
        labels = await client.predict([[0.1, 0.2]])
        await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "PredictClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        """One request/response round-trip; returns ``(status, body)``."""
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: predict\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, json.loads(raw) if raw else {}

    async def predict(self, x) -> list:
        """``POST /predict``; returns the label list or raises on error."""
        if isinstance(x, np.ndarray):
            x = x.tolist()
        status, payload = await self.request("POST", "/predict", {"x": x})
        if status != 200:
            raise RuntimeError(
                f"predict failed with {status}: {payload.get('error')}"
            )
        return payload["labels"]

    async def healthz(self) -> dict:
        status, payload = await self.request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"healthz failed with {status}")
        return payload

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
