"""Asyncio HTTP client for the predict service, with retry/backoff.

Speaks just enough keep-alive HTTP/1.1 for the serving endpoints; used by
the test-suite, ``benchmarks/bench_serve.py`` and the CI serve-smoke —
anything that needs to drive ``repro serve`` without a third-party HTTP
dependency.

The client is the fleet's half of the resilience contract: a serving
process that reloads, sheds load or drains answers with *retryable*
conditions (503, 504, ``Connection: close``, a reset socket), and
:meth:`PredictClient.predict` rides through them invisibly —

* **reconnect-on-close**: a response carrying ``Connection: close`` (or
  a vanished socket) marks the connection dead; the next request dials a
  fresh one instead of dying on ``readline() == b""``;
* **capped exponential backoff with jitter** on 503/504/connection
  errors: waits double per attempt up to ``max_backoff``, each scaled by
  a random factor in ``[0.5, 1.5)`` so a shed fleet does not retry in
  lock-step, and a server-sent ``Retry-After`` is honoured (capped by
  ``max_backoff``).  The delay schedule is the shared
  :class:`~repro.backoff.BackoffPolicy` — the same policy the store
  resilience layer retries with, so the two retry paths cannot drift;
* anything non-retryable (400, 404, …) raises :class:`PredictError`
  immediately.
"""

from __future__ import annotations

import asyncio
import json
import random

import numpy as np

from repro.backoff import BackoffPolicy

__all__ = ["PredictClient", "PredictError"]

#: Statuses worth retrying: overload/drain shedding and deadline expiry.
RETRYABLE_STATUSES = (503, 504)


class PredictError(RuntimeError):
    """A non-retryable (or retries-exhausted) predict failure.

    Subclasses :class:`RuntimeError` so callers that predate the retry
    layer keep working; :attr:`status` carries the HTTP status code.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)


class PredictClient:
    """One logical connection to a :class:`PredictServer`, auto-healing.

    Usage::

        client = await PredictClient.connect("127.0.0.1", 8000)
        labels = await client.predict([[0.1, 0.2]])
        await client.close()

    Parameters
    ----------
    retries:
        Retry attempts for :meth:`predict` beyond the first try, spent
        on 503/504 responses and connection failures.
    backoff:
        First retry delay in seconds; doubles per attempt.
    max_backoff:
        Delay cap (also caps a server-sent ``Retry-After``).
    rng:
        Random source for the jitter draw (a seeded
        :class:`random.Random` makes retry schedules deterministic in
        tests; defaults to the module-level generator).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, host: str | None = None,
                 port: int | None = None, retries: int = 3,
                 backoff: float = 0.05, max_backoff: float = 1.0,
                 rng: random.Random | None = None):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._connected = True
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._policy = BackoffPolicy(
            base=self.backoff, cap=self.max_backoff,
            rng=rng if rng is not None else random,
        )
        #: Response headers of the most recent request (lower-cased names).
        self.last_headers: dict[str, str] = {}
        self.n_retries = 0
        self.n_reconnects = 0

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "PredictClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port, **kwargs)

    # -- connection management ------------------------------------------

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ConnectionError(
                "connection closed and no host/port to reconnect to"
            )
        await self._shutdown_socket()
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._connected = True
        self.n_reconnects += 1

    async def _shutdown_socket(self) -> None:
        self._connected = False
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- one round-trip --------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        """One request/response round-trip; returns ``(status, body)``.

        Reconnects first if the previous response closed the connection.
        No retries at this level — :meth:`predict` layers the policy.
        """
        if not self._connected:
            await self._reconnect()
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: predict\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            self._connected = False
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        self.last_headers = headers
        if headers.get("connection", "").lower() == "close":
            # Honour the server's close instead of failing the next
            # request on a dead socket.
            await self._shutdown_socket()
        return status, json.loads(raw) if raw else {}

    # -- endpoints -------------------------------------------------------

    async def predict(self, x) -> list:
        """``POST /predict`` with retry/backoff; returns the label list.

        Retries 503/504 and connection failures up to ``retries`` times,
        then raises (:class:`PredictError` for HTTP failures,
        :class:`ConnectionError` for transport ones).
        """
        if isinstance(x, np.ndarray):
            x = x.tolist()
        for attempt in range(self.retries + 1):
            retry_after = 0.0
            try:
                status, payload = await self.request(
                    "POST", "/predict", {"x": x}
                )
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                self._connected = False
                if attempt >= self.retries:
                    raise ConnectionError(
                        f"predict failed after {attempt + 1} attempts: {exc}"
                    ) from exc
            else:
                if status == 200:
                    return payload["labels"]
                if status not in RETRYABLE_STATUSES \
                        or attempt >= self.retries:
                    raise PredictError(
                        status,
                        f"predict failed with {status}: "
                        f"{payload.get('error')}",
                    )
                try:
                    retry_after = float(
                        self.last_headers.get("retry-after", 0)
                    )
                except ValueError:
                    retry_after = 0.0
            self.n_retries += 1
            # Shared policy, caller-owned clock: the policy computes, the
            # coroutine sleeps (a server-sent Retry-After is the floor).
            await asyncio.sleep(self._policy.delay(attempt, floor=retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    async def healthz(self) -> dict:
        status, payload = await self.request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"healthz failed with {status}")
        return payload

    async def readyz(self) -> tuple[bool, dict]:
        """``GET /readyz``; returns ``(ready, body)`` without raising."""
        status, payload = await self.request("GET", "/readyz")
        return status == 200, payload

    async def reload(self) -> tuple[int, dict]:
        """``POST /admin/reload``; returns ``(status, swap-entry)``."""
        return await self.request("POST", "/admin/reload")

    async def close(self) -> None:
        await self._shutdown_socket()
