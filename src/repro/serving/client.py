"""Asyncio HTTP client for the predict service, with retry/backoff.

Speaks just enough keep-alive HTTP/1.1 for the serving endpoints; used by
the test-suite, ``benchmarks/bench_serve.py`` and the CI serve-smoke —
anything that needs to drive ``repro serve`` without a third-party HTTP
dependency.

The client is the fleet's half of the resilience contract: a serving
process that reloads, sheds load or drains answers with *retryable*
conditions (503, 504, ``Connection: close``, a reset socket), and
:meth:`PredictClient.predict` rides through them invisibly —

* **reconnect-on-close**: a response carrying ``Connection: close`` (or
  a vanished socket, including one that died mid-body) marks the
  connection dead; the next request dials a fresh one instead of dying
  on ``readline() == b""``;
* **capped exponential backoff with jitter** on 503/504/connection
  errors: waits double per attempt up to ``max_backoff``, each scaled by
  a random factor in ``[0.5, 1.5)`` so a shed fleet does not retry in
  lock-step, and a server-sent ``Retry-After`` is honoured (capped by
  ``max_backoff``; a missing or unparseable value means no floor).  The
  delay schedule is the shared :class:`~repro.backoff.BackoffPolicy` —
  the same policy the store resilience layer retries with, so the two
  retry paths cannot drift;
* anything non-retryable (400, 404, …) raises :class:`PredictError`
  immediately.

Two serving-surface extensions ride on the same machinery:

* **binary wire protocol** (``binary=True``): predict bodies go out as
  :mod:`repro.serving.wire` frames instead of JSON and the response is
  decoded the same way — no float text on the hot path.  A server that
  answers ``415 Unsupported Media Type`` (pre-binary build, or binary
  disabled) triggers a **transparent fallback**: the client downgrades
  itself to JSON, re-sends the same request, and stays on JSON for the
  rest of its life (``n_binary_fallbacks`` counts the downgrade);
* **model routing**: construct with ``model="name"`` (or pass
  ``model=`` per call) to target ``POST /models/<name>/predict`` on a
  multi-model server; the default targets ``/predict``, the server's
  default-model alias.
"""

from __future__ import annotations

import asyncio
import json
import random

import numpy as np

from repro.backoff import BackoffPolicy
from repro.serving import wire

__all__ = ["PredictClient", "PredictError"]

#: Statuses worth retrying: overload/drain shedding and deadline expiry.
RETRYABLE_STATUSES = (503, 504)


class PredictError(RuntimeError):
    """A non-retryable (or retries-exhausted) predict failure.

    Subclasses :class:`RuntimeError` so callers that predate the retry
    layer keep working; :attr:`status` carries the HTTP status code.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)


class PredictClient:
    """One logical connection to a :class:`PredictServer`, auto-healing.

    Usage::

        client = await PredictClient.connect("127.0.0.1", 8000)
        labels = await client.predict([[0.1, 0.2]])
        await client.close()

    Parameters
    ----------
    retries:
        Retry attempts for :meth:`predict` beyond the first try, spent
        on 503/504 responses and connection failures.
    backoff:
        First retry delay in seconds; doubles per attempt.
    max_backoff:
        Delay cap (also caps a server-sent ``Retry-After``).
    binary:
        Send predict requests as binary wire frames
        (``application/x-gbaf-batch``).  Falls back to JSON permanently
        if the server answers 415.
    model:
        Default model name to route predicts to (``None`` targets the
        server's default-model alias ``/predict``).
    rng:
        Random source for the jitter draw (a seeded
        :class:`random.Random` makes retry schedules deterministic in
        tests; defaults to the module-level generator).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, host: str | None = None,
                 port: int | None = None, retries: int = 3,
                 backoff: float = 0.05, max_backoff: float = 1.0,
                 binary: bool = False, model: str | None = None,
                 rng: random.Random | None = None):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._connected = True
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.binary = bool(binary)
        self.model = model
        self._policy = BackoffPolicy(
            base=self.backoff, cap=self.max_backoff,
            rng=rng if rng is not None else random,
        )
        #: Response headers of the most recent request (lower-cased names).
        self.last_headers: dict[str, str] = {}
        self.n_retries = 0
        self.n_reconnects = 0
        self.n_binary_fallbacks = 0

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "PredictClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port, **kwargs)

    # -- connection management ------------------------------------------

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ConnectionError(
                "connection closed and no host/port to reconnect to"
            )
        await self._shutdown_socket()
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._connected = True
        self.n_reconnects += 1

    async def _shutdown_socket(self) -> None:
        self._connected = False
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- one round-trip --------------------------------------------------

    async def request_bytes(
        self, method: str, path: str, body: bytes = b"",
        content_type: str = "application/json",
    ) -> tuple[int, bytes]:
        """One raw round-trip; returns ``(status, response body bytes)``.

        Reconnects first if the previous response closed the connection.
        No retries at this level — :meth:`predict` layers the policy.  A
        socket that dies mid-response surfaces as
        :class:`asyncio.IncompleteReadError` with the connection marked
        dead, so the caller's next attempt dials fresh.
        """
        if not self._connected:
            await self._reconnect()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: predict\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

        try:
            status_line = await self._reader.readline()
            if not status_line:
                self._connected = False
                raise ConnectionError("server closed the connection")
            status = int(status_line.split()[1])
            headers = {}
            while True:
                line = await self._reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line == b"":
                    # EOF before the blank line: the response was cut off
                    # mid-headers, which must read as a dead connection —
                    # not as a complete header block missing its
                    # Content-Length.
                    self._connected = False
                    raise ConnectionError(
                        "connection closed mid-response headers"
                    )
                name, sep, value = line.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            raw = await self._reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError:
            # Mid-body drop: the headers (or body) were cut short.  Mark
            # the socket dead so a retry reconnects instead of reading
            # from a half-consumed stream.
            self._connected = False
            raise
        self.last_headers = headers
        if headers.get("connection", "").lower() == "close":
            # Honour the server's close instead of failing the next
            # request on a dead socket.
            await self._shutdown_socket()
        return status, raw

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        """One JSON request/response round-trip: ``(status, body dict)``."""
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        status, raw = await self.request_bytes(method, path, body)
        return status, json.loads(raw) if raw else {}

    # -- endpoints -------------------------------------------------------

    def _predict_path(self, model: str | None) -> str:
        name = model if model is not None else self.model
        return "/predict" if name is None else f"/models/{name}/predict"

    @staticmethod
    def _retry_after(headers: dict) -> float:
        """The ``Retry-After`` floor; absent/unparseable values mean 0."""
        try:
            value = float(headers.get("retry-after", 0))
        except (TypeError, ValueError):
            return 0.0
        return max(0.0, value)

    async def _predict_once(self, x_list, x_bytes,
                            path: str) -> tuple[int, bytes | dict]:
        """One predict round-trip in the current wire format.

        Handles the 415 downgrade inline: if the server refuses the
        binary content type, flip to JSON for good and re-send the same
        request — the caller never sees the 415.
        """
        if self.binary:
            status, raw = await self.request_bytes(
                "POST", path, x_bytes, wire.WIRE_CONTENT_TYPE
            )
            if status != 415:
                return status, raw
            self.binary = False
            self.n_binary_fallbacks += 1
        body = json.dumps({"x": x_list}).encode("utf-8")
        status, raw = await self.request_bytes("POST", path, body)
        return status, raw

    async def predict(self, x, model: str | None = None) -> list:
        """``POST /predict`` with retry/backoff; returns the label list.

        Retries 503/504 and connection failures up to ``retries`` times,
        then raises (:class:`PredictError` for HTTP failures,
        :class:`ConnectionError` for transport ones).  ``model`` routes
        to ``/models/<model>/predict`` (overriding the constructor
        default) on a multi-model server.
        """
        x_array = np.asarray(x, dtype=np.float64)
        x_list = x_array.tolist()
        x_bytes = wire.encode_request(x_array) if self.binary else b""
        path = self._predict_path(model)
        for attempt in range(self.retries + 1):
            retry_after = 0.0
            try:
                status, raw = await self._predict_once(
                    x_list, x_bytes, path
                )
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                self._connected = False
                if attempt >= self.retries:
                    raise ConnectionError(
                        f"predict failed after {attempt + 1} attempts: {exc}"
                    ) from exc
            else:
                if status == 200:
                    if self.last_headers.get("content-type", "") \
                            == wire.WIRE_CONTENT_TYPE:
                        return wire.decode_response(raw).tolist()
                    return json.loads(raw)["labels"]
                payload = {}
                if raw:
                    try:
                        payload = json.loads(raw)
                    except ValueError:
                        payload = {"error": raw[:200].decode("latin-1")}
                if status not in RETRYABLE_STATUSES \
                        or attempt >= self.retries:
                    raise PredictError(
                        status,
                        f"predict failed with {status}: "
                        f"{payload.get('error')}",
                    )
                retry_after = self._retry_after(self.last_headers)
            self.n_retries += 1
            # Shared policy, caller-owned clock: the policy computes, the
            # coroutine sleeps (a server-sent Retry-After is the floor).
            await asyncio.sleep(self._policy.delay(attempt, floor=retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    async def healthz(self) -> dict:
        status, payload = await self.request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"healthz failed with {status}")
        return payload

    async def readyz(self) -> tuple[bool, dict]:
        """``GET /readyz``; returns ``(ready, body)`` without raising."""
        status, payload = await self.request("GET", "/readyz")
        return status == 200, payload

    async def reload(self, model: str | None = None) -> tuple[int, dict]:
        """``POST /admin/reload``; returns ``(status, swap-entry)``.

        ``model`` reloads only that model; ``None`` reloads every model
        the server routes.
        """
        payload = None if model is None else {"model": model}
        return await self.request("POST", "/admin/reload", payload)

    async def close(self) -> None:
        await self._shutdown_socket()
