"""Multi-model routing: one server process, many independent artifacts.

PR 7 put a :class:`~repro.serving.manager.PredictorManager` between the
server and its predictor so one model could be hot-swapped under
traffic.  :class:`ModelRouter` is the next turn of that seam: a mapping
from **model names** to fully independent managers — each with its own
artifact path, watcher, generation counter, swap history and fault
domain — behind one HTTP listener:

* ``POST /models/<name>/predict`` routes to that model's manager;
  ``POST /predict`` is an alias for the configurable **default model**,
  so single-model deployments and old clients keep working unchanged.
* Reload triggers are per model: the watcher polls every artifact
  independently, ``POST /admin/reload`` takes an optional model name
  (no name = reload everything), and SIGHUP reloads all models.
* Fault isolation is the point: a corrupt publish of one model rolls
  that model back and degrades aggregate readiness, while sibling
  models keep answering with zero errors
  (``tests/serving/test_router.py`` pins this).

Aggregate health is conservative: the router is **ready** only when
every model is (a fleet that load-balances on ``/readyz`` must not
route traffic to a server that would 500 one of its models), and the
per-model detail is exposed on ``/healthz`` so an operator can see
*which* model degraded readiness.
"""

from __future__ import annotations

from pathlib import Path

from repro.serving.manager import PredictorManager

__all__ = ["DEFAULT_MODEL_NAME", "ModelRouter", "UnknownModelError"]

#: Name under which a bare single artifact is registered (the alias the
#: historical one-model ``repro serve model.gba`` form serves under).
DEFAULT_MODEL_NAME = "default"

#: Characters allowed in a model name: it is a URL path segment and a
#: CLI token, so keep it boring.
_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


class UnknownModelError(KeyError):
    """Lookup of a model name this router does not serve (HTTP 404)."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown model {self.name!r} (serving: "
            f"{', '.join(sorted(self.known))})"
        )


def validate_model_name(name: str) -> str:
    """Reject names that cannot survive a URL path or a CLI flag."""
    if not name or not set(name) <= _NAME_OK or name.startswith("."):
        raise ValueError(
            f"invalid model name {name!r}: use letters, digits, '.', '_', "
            "'-' (must not start with '.')"
        )
    return name


class ModelRouter:
    """Name → :class:`PredictorManager` routing with a default alias.

    Build one from artifact paths with :meth:`from_specs` (what the CLI
    does) or from already-constructed managers (tests, embedders).

    Parameters
    ----------
    managers:
        Mapping of model name to manager.  Each manager is owned by the
        router from here on: :meth:`close` closes them all.
    default:
        The model ``/predict`` aliases to.  Must be a key of
        ``managers``; defaults to the only model when there is exactly
        one.
    """

    def __init__(self, managers: dict[str, PredictorManager],
                 default: str | None = None):
        if not managers:
            raise ValueError("ModelRouter needs at least one model")
        self._managers = {
            validate_model_name(name): manager
            for name, manager in managers.items()
        }
        if default is None:
            if len(self._managers) != 1:
                raise ValueError(
                    "default model is required when serving more than one "
                    f"model (have: {', '.join(sorted(self._managers))})"
                )
            default = next(iter(self._managers))
        if default not in self._managers:
            raise ValueError(
                f"default model {default!r} is not among the served models "
                f"({', '.join(sorted(self._managers))})"
            )
        self.default = default

    @classmethod
    def from_specs(cls, specs: dict[str, str | Path],
                   default: str | None = None, *, verify: bool = True,
                   poll_interval: float = 2.0,
                   fault_injector=None) -> "ModelRouter":
        """Load one manager per ``name -> artifact path`` entry.

        A load failure closes the managers already opened before
        re-raising — startup either serves every requested model or
        nothing.  ``fault_injector`` (tests only) is scoped per model via
        :meth:`~repro.serving.faults._FaultInjector.for_model`, so chaos
        can be armed against one model without touching its siblings.
        """
        managers: dict[str, PredictorManager] = {}
        try:
            for name, path in specs.items():
                validate_model_name(name)
                injector = (
                    fault_injector.for_model(name)
                    if fault_injector is not None
                    else None
                )
                managers[name] = PredictorManager(
                    path, verify=verify, poll_interval=poll_interval,
                    fault_injector=injector,
                )
        except Exception:
            for manager in managers.values():
                manager.close()
            raise
        return cls(managers, default)

    @classmethod
    def adopt(cls, manager: PredictorManager,
              name: str = DEFAULT_MODEL_NAME) -> "ModelRouter":
        """Wrap a single existing manager (the back-compat constructor)."""
        return cls({name: manager}, name)

    # -- lookup ----------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Served model names, sorted (stable for health payloads)."""
        return sorted(self._managers)

    def __len__(self) -> int:
        return len(self._managers)

    def __contains__(self, name: str) -> bool:
        return name in self._managers

    def get(self, name: str | None = None) -> PredictorManager:
        """The manager for ``name`` (``None`` = the default model)."""
        if name is None:
            name = self.default
        try:
            return self._managers[name]
        except KeyError:
            raise UnknownModelError(name, self.names) from None

    def items(self):
        return self._managers.items()

    # -- aggregate health ------------------------------------------------

    @property
    def healthy(self) -> bool:
        """``True`` only when every model's last reload succeeded."""
        return all(m.healthy for m in self._managers.values())

    def unhealthy_models(self) -> dict[str, str]:
        """``name -> last_error`` for every currently unhealthy model."""
        return {
            name: manager.last_error
            for name, manager in self._managers.items()
            if not manager.healthy
        }

    def stats(self) -> dict:
        return {
            "default_model": self.default,
            "n_models": len(self._managers),
            "models": {
                name: manager.stats()
                for name, manager in sorted(self._managers.items())
            },
        }

    def describe_models(self) -> dict:
        """Per-model health detail for ``/healthz``."""
        out = {}
        for name, manager in sorted(self._managers.items()):
            predictor = manager.current
            out[name] = {
                "path": str(predictor.path),
                "n_balls": predictor.n_balls,
                "n_features": predictor.n_features,
                "generation": manager.generation,
                "healthy": manager.healthy,
                "last_error": manager.last_error,
                "swaps": manager.history(),
            }
        return out

    # -- reload fan-out --------------------------------------------------

    async def reload(self, model: str | None = None,
                     reason: str = "admin") -> dict:
        """Reload one model, or every model when ``model`` is ``None``.

        One model returns its swap-history entry directly (plus the
        ``model`` key).  All-model reloads return
        ``{"status": ..., "models": {name: entry}}`` where the aggregate
        status is ``"swapped"`` only if every per-model attempt swapped —
        a deploy script gating on the aggregate cannot miss a partial
        failure.  A single-model router returns the plain entry either
        way, so pre-router callers (which read ``seconds``/``reason``
        off a bare reload) keep working.
        """
        if model is None and len(self._managers) == 1:
            model = self.default
        if model is not None:
            entry = dict(await self.get(model).reload(reason=reason))
            entry["model"] = model
            return entry
        entries = {}
        for name, manager in sorted(self._managers.items()):
            entries[name] = await manager.reload(reason=reason)
        aggregate = (
            "swapped"
            if all(e["status"] == "swapped" for e in entries.values())
            else "rolled-back"
        )
        return {"status": aggregate, "models": entries}

    async def start_watching(self) -> None:
        for manager in self._managers.values():
            await manager.start_watching()

    async def stop_watching(self) -> None:
        for manager in self._managers.values():
            await manager.stop_watching()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        for manager in self._managers.values():
            manager.close()

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
