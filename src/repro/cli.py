"""Command-line interface: sample / granulate / inspect CSV datasets.

For users who want the paper's methods without writing Python::

    python -m repro.cli sample data.csv --out sampled.csv
    python -m repro.cli sample data.csv --method ggbs --label-column 0
    python -m repro.cli granulate data.csv --save balls.npz
    python -m repro.cli info data.csv
    python -m repro.cli freeze data.csv --out model.gba
    python -m repro.cli serve model.gba --port 8000
    python -m repro.cli bench table2 --jobs 4
    python -m repro.cli bench --profile full --jobs 0 --no-cache
    python -m repro.cli bench table2 --distributed --workers 4
    python -m repro.cli bench --workers-external --store /mnt/shared/grid

CSV convention: one sample per row, features as floats, the class label in
the last column by default (``--label-column`` overrides).  A header row is
detected and skipped automatically.

``bench`` regenerates the paper's tables/figures: ``--jobs N`` fans the
cross-validation grid over N worker processes (``0`` = all cores,
bit-identical results) with payload resolution pooled and datasets shipped
zero-copy through the shared-memory data plane, completed cells persist
under ``benchmarks/output/cellstore/`` so interrupted runs resume, and
``--no-cache`` disables that disk store.  ``--distributed`` coordinates
standalone worker processes (``python -m repro.experiments.worker``) over
a shared store instead — ``--workers N`` launches them locally,
``--workers-external`` waits for workers started elsewhere (e.g. other
machines sharing ``--store`` over a network filesystem).  ``--store`` /
``--store-url`` accepts a directory or a store URL (``file://``,
``fakes3://DIR``, ``s3://bucket/prefix``), selecting the storage backend
behind the claim/lease protocol (see docs/architecture/store-backends.md)::

    python -m repro.cli bench table2 --distributed \
        --store-url fakes3://bucket-dir

``freeze`` fits a granular-ball classifier once and writes the versioned,
checksummed, mmap-able model artifact; ``serve`` answers ``POST /predict``
over HTTP from that artifact with micro-batching, bit-identical to the
in-memory classifier (see docs/architecture/serving.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.gbabs import GBABS
from repro.core.rdgbg import RDGBG
from repro.datasets import imbalance_ratio
from repro.sampling import SAMPLER_NAMES, make_sampler

__all__ = ["main", "load_csv", "save_csv"]


def load_csv(path, label_column: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Read a labelled dataset from a CSV file.

    The label column is removed from the feature matrix and returned as an
    integer vector; a non-numeric header line is skipped.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    skip = 0
    with open(path) as handle:
        first = handle.readline()
    try:
        [float(tok) for tok in first.strip().split(",") if tok]
    except ValueError:
        skip = 1
    data = np.loadtxt(path, delimiter=",", skiprows=skip, ndmin=2)
    if data.shape[1] < 2:
        raise ValueError("need at least one feature column and one label column")
    label_column = label_column % data.shape[1]
    y = data[:, label_column]
    x = np.delete(data, label_column, axis=1)
    if not np.allclose(y, np.round(y)):
        raise ValueError("label column must contain integer class labels")
    return x, y.astype(np.intp)


def save_csv(path, x: np.ndarray, y: np.ndarray) -> None:
    """Write a labelled dataset as CSV with the label in the last column."""
    data = np.column_stack([x, y.astype(np.float64)])
    np.savetxt(path, data, delimiter=",", fmt="%.10g")


def _cmd_sample(args) -> int:
    x, y = load_csv(args.csv, args.label_column)
    kwargs: dict = {"random_state": args.seed}
    if args.method == "gbabs":
        kwargs["rho"] = args.rho
        kwargs["backend"] = args.backend
        if args.projection_dims:
            kwargs["projection_dims"] = args.projection_dims
    if args.method in ("srs", "systematic", "stratified"):
        if args.ratio is None:
            raise SystemExit(f"--ratio is required for method {args.method!r}")
        kwargs["ratio"] = args.ratio
    if args.method == "smnc":
        raise SystemExit(
            "smnc needs a categorical-column specification; use the Python API"
        )
    if args.method == "tomek":
        kwargs = {}
    sampler = make_sampler(args.method, **kwargs)
    xs, ys = sampler.fit_resample(x, y)
    save_csv(args.out, xs, ys)
    print(
        f"{args.method}: {x.shape[0]} -> {xs.shape[0]} samples "
        f"({xs.shape[0] / x.shape[0]:.1%}) written to {args.out}"
    )
    if args.method == "gbabs":
        report = sampler.report_
        print(
            f"  balls: {report.n_balls} ({report.n_borderline_balls} borderline), "
            f"noise removed: {report.n_noise_removed}"
        )
    return 0


def _cmd_granulate(args) -> int:
    x, y = load_csv(args.csv, args.label_column)
    generator = RDGBG(rho=args.rho, random_state=args.seed, backend=args.backend)
    if args.batch_size is not None:
        try:
            result = generator.generate_batches(x, y, batch_size=args.batch_size)
        except ValueError as exc:
            # e.g. batch_size < 1; the engine owns the validation rule.
            raise SystemExit(f"granulate: {exc}")
    else:
        result = generator.generate(x, y)
    summary = result.ball_set.summary()
    print(f"RD-GBG [{args.backend}] on {x.shape[0]} samples:")
    for key, value in summary.items():
        print(f"  {key:12s} {value}")
    print(f"  noise        {result.noise_indices.size}")
    if args.save:
        result.ball_set.save(args.save)
        print(f"ball set saved to {args.save}")
    return 0


def _cmd_bench(args) -> int:
    """Forward to the experiment harness (tables/figures regeneration)."""
    from repro.experiments.run_all import main as run_all_main

    argv = list(args.experiments)
    argv += ["--profile", args.profile, "--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.json:
        argv += ["--json", args.json]
    if args.distributed:
        argv += ["--distributed", "--workers", str(args.workers)]
    if args.workers_external:
        argv.append("--workers-external")
    if args.max_restarts is not None:
        argv += ["--max-restarts", str(args.max_restarts)]
    if args.outage_grace is not None:
        argv += ["--outage-grace", str(args.outage_grace)]
    if args.store:
        argv += ["--store", args.store]
    if args.store_codec:
        argv += ["--store-codec", args.store_codec]
    if args.min_workers is not None:
        argv += ["--min-workers", str(args.min_workers)]
    if args.max_workers is not None:
        argv += ["--max-workers", str(args.max_workers)]
    if args.timeout is not None:
        argv += ["--timeout", str(args.timeout)]
    return run_all_main(argv)


def _cmd_freeze(args) -> int:
    from repro.classifiers.gb_classifier import GranularBallClassifier

    x, y = load_csv(args.csv, args.label_column)
    clf = GranularBallClassifier(
        rho=args.rho,
        random_state=args.seed,
        include_orphans=not args.no_orphans,
        backend=args.backend,
    ).fit(x, y)
    header = clf.freeze(args.out)
    meta = header["meta"]
    size = Path(args.out).stat().st_size
    print(
        f"froze {x.shape[0]} samples -> {meta['n_balls']} balls "
        f"({clf.compression_ratio():.1%} of the data) in {args.out} "
        f"({size} bytes, crc32 {header['data_crc32']:#010x})"
    )
    return 0


def _parse_model_specs(pairs) -> dict:
    """``NAME=PATH`` tokens from repeated ``--model`` flags, validated."""
    from repro.serving.router import validate_model_name

    specs = {}
    for pair in pairs:
        name, sep, path = pair.partition("=")
        if not sep or not path:
            raise SystemExit(
                f"serve: --model needs NAME=PATH, got {pair!r}"
            )
        try:
            validate_model_name(name)
        except ValueError as exc:
            raise SystemExit(f"serve: {exc}")
        if name in specs:
            raise SystemExit(f"serve: model {name!r} given twice")
        specs[name] = path
    return specs


def _cmd_serve(args) -> int:
    from repro.serving.server import run_server

    if args.batch_window_ms < 0:
        raise SystemExit("serve: --batch-window-ms must be >= 0")
    if args.max_batch < 1:
        raise SystemExit("serve: --max-batch must be >= 1")
    if args.max_pending < 1:
        raise SystemExit("serve: --max-pending must be >= 1")
    if args.poll_interval_s <= 0:
        raise SystemExit("serve: --poll-interval-s must be > 0")
    models = _parse_model_specs(args.model or [])
    if args.artifact is None and not models:
        raise SystemExit(
            "serve: give an artifact path or at least one --model NAME=PATH"
        )
    if args.artifact is not None and models:
        raise SystemExit(
            "serve: pass either a positional artifact or --model "
            "NAME=PATH flags, not both"
        )
    if models:
        default_model = args.default_model
        if default_model is None and len(models) == 1:
            default_model = next(iter(models))
        if default_model is None:
            raise SystemExit(
                "serve: --default-model is required with more than one "
                "--model"
            )
        if default_model not in models:
            raise SystemExit(
                f"serve: --default-model {default_model!r} is not among "
                f"the --model names ({', '.join(sorted(models))})"
            )
    else:
        if args.default_model is not None:
            raise SystemExit(
                "serve: --default-model needs --model NAME=PATH flags"
            )
        default_model = None
    try:
        return run_server(
            args.artifact,
            models=models or None,
            default_model=default_model,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            batching=not args.no_batch,
            verify=not args.no_verify,
            max_pending=args.max_pending,
            request_timeout=(
                None if args.request_timeout_s <= 0
                else args.request_timeout_s
            ),
            poll_interval=args.poll_interval_s,
            binary=not args.no_binary,
            watch=not args.no_reload,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"serve: {exc}")


def _cmd_info(args) -> int:
    x, y = load_csv(args.csv, args.label_column)
    classes, counts = np.unique(y, return_counts=True)
    print(f"samples:  {x.shape[0]}")
    print(f"features: {x.shape[1]}")
    print(f"classes:  {classes.size} {dict(zip(classes.tolist(), counts.tolist()))}")
    print(f"IR:       {imbalance_ratio(y):.2f}")
    probe = GBABS(rho=args.rho, random_state=args.seed, backend=args.backend)
    probe.fit_resample(x, y)
    print(f"GBABS sampling ratio at rho={args.rho}: "
          f"{probe.report_.sampling_ratio:.2%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("csv", help="input CSV (label in last column by default)")
        p.add_argument("--label-column", type=int, default=-1)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rho", type=int, default=5,
                       help="density tolerance for GB methods")
        p.add_argument("--backend", choices=("engine", "legacy"),
                       default="engine",
                       help="granulation backend (bit-identical results; "
                            "'engine' is the vectorised default)")

    p_sample = sub.add_parser("sample", help="resample a dataset")
    common(p_sample)
    p_sample.add_argument("--method", choices=sorted(SAMPLER_NAMES),
                          default="gbabs")
    p_sample.add_argument("--out", required=True, help="output CSV path")
    p_sample.add_argument("--ratio", type=float, default=None,
                          help="kept fraction for srs/systematic/stratified")
    p_sample.add_argument("--projection-dims", type=int, default=None,
                          help="random-projection scan directions (gbabs)")
    p_sample.set_defaults(func=_cmd_sample)

    p_gran = sub.add_parser("granulate", help="run RD-GBG and report the balls")
    common(p_gran)
    p_gran.add_argument("--save", default=None, help="write ball set .npz here")
    p_gran.add_argument("--batch-size", type=int, default=None,
                        help="granulate in chunks of this many samples "
                             "(bounded memory; no cross-chunk overlap checks)")
    p_gran.set_defaults(func=_cmd_granulate)

    p_info = sub.add_parser("info", help="dataset profile + GBABS ratio probe")
    common(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_freeze = sub.add_parser(
        "freeze",
        help="fit a GB classifier and write an mmap-able serving artifact",
    )
    common(p_freeze)
    p_freeze.add_argument("--out", required=True,
                          help="artifact output path (e.g. model.gba)")
    p_freeze.add_argument("--no-orphans", action="store_true",
                          help="drop radius-0 orphan balls from the "
                               "decision rule before freezing")
    p_freeze.set_defaults(func=_cmd_freeze)

    p_serve = sub.add_parser(
        "serve",
        help="serve POST /predict over HTTP from frozen artifacts "
             "(single artifact or --model NAME=PATH multi-model)",
    )
    p_serve.add_argument("artifact", nargs="?", default=None,
                         help="artifact written by `repro freeze` "
                              "(single-model form; or use --model)")
    p_serve.add_argument("--model", action="append", metavar="NAME=PATH",
                         help="serve this artifact under /models/NAME/"
                              "predict (repeatable; mutually exclusive "
                              "with the positional artifact)")
    p_serve.add_argument("--default-model", default=None, metavar="NAME",
                         help="model that plain /predict aliases to "
                              "(required with more than one --model)")
    p_serve.add_argument("--no-binary", action="store_true",
                         help="refuse the binary wire protocol "
                              "(application/x-gbaf-batch gets 415; "
                              "clients fall back to JSON)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="TCP port (0 = ephemeral, printed on start)")
    p_serve.add_argument("--batch-window-ms", type=float, default=1.0,
                         metavar="MS",
                         help="micro-batch accumulation window "
                              "(default: 1 ms)")
    p_serve.add_argument("--max-batch", type=int, default=256, metavar="N",
                         help="flush a batch early at this many rows")
    p_serve.add_argument("--no-batch", action="store_true",
                         help="answer each request individually "
                              "(benchmark baseline)")
    p_serve.add_argument("--no-verify", action="store_true",
                         help="skip the artifact checksum at load")
    p_serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                         help="admission limit: predicts allowed to wait "
                              "at once before shedding with 503 + "
                              "Retry-After (default: 64)")
    p_serve.add_argument("--request-timeout-s", type=float, default=30.0,
                         metavar="S",
                         help="per-predict deadline; expiry answers 504 "
                              "(0 disables; default: 30)")
    p_serve.add_argument("--poll-interval-s", type=float, default=2.0,
                         metavar="S",
                         help="artifact-change poll interval for hot "
                              "reload (default: 2); SIGHUP and POST "
                              "/admin/reload also trigger a reload")
    p_serve.add_argument("--no-reload", action="store_true",
                         help="disable artifact watching (SIGHUP and "
                              "/admin/reload still reload explicitly)")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "bench",
        help="regenerate paper tables/figures (parallel grid + result store)",
    )
    p_bench.add_argument("experiments", nargs="*",
                         help="experiment names, e.g. table2 fig9 (default: all)")
    p_bench.add_argument("--profile", choices=("quick", "medium", "full"),
                         default="quick")
    p_bench.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the CV grid "
                              "(0 = all cores; payloads resolve in the pool, "
                              "datasets ship via shared memory; results "
                              "identical to serial)")
    p_bench.add_argument("--no-cache", action="store_true",
                         help="disable the persistent cell store")
    p_bench.add_argument("--json", metavar="DIR", default=None,
                         help="also dump raw results as JSON files")
    p_bench.add_argument("--distributed", action="store_true",
                         help="split the grid over standalone worker "
                              "processes sharing the cell store")
    p_bench.add_argument("--workers", type=int, default=2, metavar="N",
                         help="workers launched locally in --distributed "
                              "mode (default: 2)")
    p_bench.add_argument("--workers-external", action="store_true",
                         help="distributed, but wait for externally "
                              "launched workers instead of spawning any")
    p_bench.add_argument("--max-restarts", type=int, default=None,
                         metavar="N",
                         help="supervisor restarts per crashed worker slot "
                              "in --distributed mode")
    p_bench.add_argument("--outage-grace", type=float, default=None,
                         metavar="S",
                         help="seconds workers ride out a store outage "
                              "before exiting (distributed mode)")
    p_bench.add_argument("--store", "--store-url", dest="store",
                         metavar="DIR_OR_URL", default=None,
                         help="shared cell store for distributed runs: a "
                              "directory or a file:// / mem:// / "
                              "fakes3:// / s3:// URL")
    p_bench.add_argument("--store-codec", default=None, metavar="CODEC",
                         help="cell-store payload compression "
                              "(zlib | lzma | none; default: zlib)")
    p_bench.add_argument("--min-workers", type=int, default=None,
                         metavar="N",
                         help="elastic fleet floor in --distributed mode "
                              "(enables queue-depth autoscaling)")
    p_bench.add_argument("--max-workers", type=int, default=None,
                         metavar="N",
                         help="elastic fleet ceiling (default: --workers)")
    p_bench.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="fail a distributed wait after this long")
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
