"""Sampler → classifier composition with an estimator interface.

Downstream users almost always pair a sampler with a classifier; this
module provides the obvious composition (mirroring ``imblearn.pipeline``):
the sampler resamples *training* data inside ``fit`` and is bypassed at
prediction time, which is exactly the per-fold protocol the evaluation
harness applies manually.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, clone as clone_classifier

__all__ = ["SamplingPipeline"]


class SamplingPipeline:
    """Resample-then-fit pipeline.

    Parameters
    ----------
    sampler:
        Any object with ``fit_resample(x, y)`` (or ``None`` for a
        pass-through pipeline).
    classifier:
        Any :class:`~repro.classifiers.base.BaseClassifier`.

    Attributes
    ----------
    resampled_size_:
        Training-set size after resampling (set by :meth:`fit`).
    sampling_ratio_:
        ``resampled_size_ / original_size`` (> 1 for oversamplers).
    granulation_summary_:
        :meth:`~repro.core.granular_ball.GranularBallSet.summary` of the
        sampler's ball set when the sampler is granulation-backed (GBABS,
        GGBS, IGBS — anything exposing ``ball_set_``), else ``None``.  Gives
        observability into the shared granulation engine without re-running
        it.  Computed on demand: the summary's pairwise overlap check is
        O(m²) in the number of balls and must not tax every ``fit``.
    """

    def __init__(self, sampler, classifier: BaseClassifier):
        self.sampler = sampler
        self.classifier = classifier
        self.resampled_size_: int | None = None
        self.sampling_ratio_: float | None = None
        self._granulation_ball_set = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SamplingPipeline":
        """Resample the training data, then fit the classifier on it."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if self.sampler is not None:
            x_fit, y_fit = self.sampler.fit_resample(x, y)
            if np.unique(y_fit).size < 2 <= np.unique(y).size:
                # Safety net shared with the evaluation harness: a sampler
                # must not collapse training onto a single class.
                x_fit, y_fit = x, y
        else:
            x_fit, y_fit = x, y
        self.resampled_size_ = int(x_fit.shape[0])
        self.sampling_ratio_ = self.resampled_size_ / max(x.shape[0], 1)
        self._granulation_ball_set = getattr(self.sampler, "ball_set_", None)
        self.classifier.fit(x_fit, y_fit)
        return self

    @property
    def granulation_summary_(self) -> dict | None:
        """Ball-set statistics of granulation-backed samplers (on demand)."""
        if self._granulation_ball_set is None:
            return None
        return self._granulation_ball_set.summary()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict with the fitted classifier (sampler is not involved)."""
        return self.classifier.predict(x)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of the fitted classifier."""
        return self.classifier.score(x, y)

    @property
    def classes_(self):
        """Classes seen by the fitted classifier."""
        return self.classifier.classes_

    def clone(self) -> "SamplingPipeline":
        """Unfitted copy; the sampler is reused (samplers are stateless
        between ``fit_resample`` calls), the classifier is re-instantiated.
        """
        return SamplingPipeline(self.sampler, clone_classifier(self.classifier))
