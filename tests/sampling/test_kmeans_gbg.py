"""Unit tests for the classic 2-means GBG baseline."""

import numpy as np
import pytest

from repro.core.rdgbg import RDGBG
from repro.sampling.kmeans_gbg import KMeansGBG


class TestKMeansGBG:
    def test_partition_and_coverage(self, blobs3):
        x, y = blobs3
        ball_set = KMeansGBG(random_state=0).generate(x, y)
        assert ball_set.is_partition()
        assert ball_set.coverage() == 1.0

    def test_purity_threshold_or_small(self, moons):
        x, y = moons
        threshold = 0.9
        ball_set = KMeansGBG(
            purity_threshold=threshold, min_samples=2, random_state=0
        ).generate(x, y)
        purity = ball_set.purity_against(y)
        for pu, size, ball in zip(purity, ball_set.sizes, ball_set):
            if pu < threshold and size > 2:
                members = x[ball.indices]
                assert np.allclose(members, members[0]), (
                    "impure large balls only allowed for duplicate points"
                )

    def test_lower_threshold_fewer_balls(self, moons):
        x, y = moons
        strict = KMeansGBG(purity_threshold=1.0, random_state=0).generate(x, y)
        loose = KMeansGBG(purity_threshold=0.7, random_state=0).generate(x, y)
        assert len(loose) <= len(strict)

    def test_eq1_geometry(self, blobs2):
        x, y = blobs2
        ball_set = KMeansGBG(random_state=0).generate(x, y)
        ball = max(ball_set, key=lambda b: b.n_samples)
        members = x[ball.indices]
        np.testing.assert_allclose(ball.center, members.mean(axis=0), atol=1e-9)
        mean_dist = np.linalg.norm(members - ball.center, axis=1).mean()
        assert ball.radius == pytest.approx(mean_dist)

    def test_overlap_versus_rdgbg(self, noisy_blobs2):
        """The historical geometry overlaps under label noise; RD-GBG never
        does (the motivating comparison of §III-A vs §IV-B)."""
        x, y = noisy_blobs2
        classic = KMeansGBG(random_state=0).generate(x, y)
        modern = RDGBG(rho=5, random_state=0).generate(x, y).ball_set
        assert classic.max_overlap() > 0
        assert modern.max_overlap() <= 1e-9

    def test_duplicate_points_terminate(self):
        x = np.repeat([[1.0, 2.0]], 30, axis=0)
        y = np.array([0, 1] * 15)
        ball_set = KMeansGBG(random_state=0).generate(x, y)
        assert ball_set.coverage() == 1.0

    def test_deterministic(self, blobs2):
        x, y = blobs2
        a = KMeansGBG(random_state=3).generate(x, y)
        b = KMeansGBG(random_state=3).generate(x, y)
        np.testing.assert_array_equal(a.member_indices, b.member_indices)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KMeansGBG(purity_threshold=0.0)
        with pytest.raises(ValueError):
            KMeansGBG(min_samples=0)
        with pytest.raises(ValueError):
            KMeansGBG().generate(np.empty((0, 2)), np.empty(0))
