"""Unit tests for simple random sampling."""

import numpy as np
import pytest

from repro.sampling.srs import SimpleRandomSampler


class TestSimpleRandomSampler:
    def test_ratio_respected(self, blobs2):
        x, y = blobs2
        sampler = SimpleRandomSampler(ratio=0.3, random_state=0)
        xs, ys = sampler.fit_resample(x, y)
        assert xs.shape[0] == round(0.3 * x.shape[0])
        assert ys.shape[0] == xs.shape[0]

    def test_no_replacement(self, blobs2):
        x, y = blobs2
        sampler = SimpleRandomSampler(ratio=0.5, random_state=1)
        sampler.fit_resample(x, y)
        idx = sampler.sample_indices_
        assert idx.size == np.unique(idx).size

    def test_output_is_subset(self, blobs2):
        x, y = blobs2
        sampler = SimpleRandomSampler(ratio=0.4, random_state=2)
        xs, ys = sampler.fit_resample(x, y)
        np.testing.assert_array_equal(xs, x[sampler.sample_indices_])
        np.testing.assert_array_equal(ys, y[sampler.sample_indices_])

    def test_deterministic(self, blobs2):
        x, y = blobs2
        a = SimpleRandomSampler(ratio=0.5, random_state=7)
        b = SimpleRandomSampler(ratio=0.5, random_state=7)
        a.fit_resample(x, y)
        b.fit_resample(x, y)
        np.testing.assert_array_equal(a.sample_indices_, b.sample_indices_)

    def test_different_seeds_differ(self, blobs2):
        x, y = blobs2
        a = SimpleRandomSampler(ratio=0.5, random_state=1)
        b = SimpleRandomSampler(ratio=0.5, random_state=2)
        a.fit_resample(x, y)
        b.fit_resample(x, y)
        assert not np.array_equal(a.sample_indices_, b.sample_indices_)

    def test_ratio_one_keeps_everything(self, blobs2):
        x, y = blobs2
        xs, _ = SimpleRandomSampler(ratio=1.0, random_state=0).fit_resample(x, y)
        assert xs.shape[0] == x.shape[0]

    def test_tiny_ratio_keeps_at_least_one(self):
        x = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        xs, _ = SimpleRandomSampler(ratio=0.001, random_state=0).fit_resample(x, y)
        assert xs.shape[0] == 1

    @pytest.mark.parametrize("ratio", [0.0, -0.5, 1.5])
    def test_rejects_bad_ratio(self, ratio):
        with pytest.raises(ValueError, match="ratio"):
            SimpleRandomSampler(ratio=ratio)
