"""Unit tests for the sampler base contract and validation."""

import numpy as np
import pytest

from repro.sampling.base import BaseSampler, IdentitySampler, check_xy


class TestCheckXY:
    def test_canonicalises_dtypes(self):
        x, y = check_xy([[1, 2], [3, 4]], [0.0, 1.0])
        assert x.dtype == np.float64
        assert np.issubdtype(y.dtype, np.integer)

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-D"):
            check_xy(np.zeros(5), np.zeros(5))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(ValueError, match="aligned"):
            check_xy(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_xy(np.empty((0, 2)), np.empty(0))

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError, match="aligned"):
            check_xy(np.zeros((5, 2)), np.zeros((5, 1)))


class TestIdentitySampler:
    def test_returns_dataset_unchanged(self, blobs2):
        x, y = blobs2
        xs, ys = IdentitySampler().fit_resample(x, y)
        np.testing.assert_array_equal(xs, x)
        np.testing.assert_array_equal(ys, y)

    def test_sample_indices_complete(self, blobs2):
        x, y = blobs2
        sampler = IdentitySampler()
        sampler.fit_resample(x, y)
        np.testing.assert_array_equal(
            sampler.sample_indices_, np.arange(x.shape[0])
        )
        assert sampler.sampling_ratio(x.shape[0]) == 1.0


class TestSamplingRatio:
    def test_requires_fit(self):
        class Dummy(BaseSampler):
            def fit_resample(self, x, y):
                return x, y

        with pytest.raises(RuntimeError, match="undersamplers"):
            Dummy().sampling_ratio(10)
