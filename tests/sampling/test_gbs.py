"""Unit tests for the GGBS / IGBS baselines and k-division GBG."""

import numpy as np
import pytest

from repro.sampling.gbs import GGBS, IGBS, KDivisionGBG


class TestKDivisionGBG:
    def test_purity_threshold_reached_or_small(self, blobs3):
        x, y = blobs3
        p = x.shape[1]
        ball_set = KDivisionGBG(purity_threshold=0.95, random_state=0).generate(x, y)
        purity = ball_set.purity_against(y)
        sizes = ball_set.sizes
        for pu, sz in zip(purity, sizes):
            assert pu >= 0.95 or sz <= 2 * p

    def test_partition_property(self, blobs3):
        x, y = blobs3
        ball_set = KDivisionGBG(random_state=0).generate(x, y)
        assert ball_set.is_partition()
        assert ball_set.coverage() == 1.0

    def test_eq1_geometry(self, blobs2):
        """Centres are member means; radii are mean member distances."""
        x, y = blobs2
        ball_set = KDivisionGBG(random_state=0).generate(x, y)
        ball = max(ball_set, key=lambda b: b.n_samples)
        members = x[ball.indices]
        np.testing.assert_allclose(ball.center, members.mean(axis=0), atol=1e-9)
        mean_dist = np.linalg.norm(members - ball.center, axis=1).mean()
        assert ball.radius == pytest.approx(mean_dist)

    def test_duplicate_points_terminate(self):
        x = np.repeat([[0.0, 0.0], [0.0, 0.0]], 20, axis=0)
        y = np.array([0, 1] * 20)
        ball_set = KDivisionGBG(random_state=0).generate(x, y)
        assert ball_set.coverage() == 1.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            KDivisionGBG(purity_threshold=0.0)


class TestGGBS:
    def test_small_balls_kept_whole(self):
        """With n <= 2p everything is one small ball: nothing is dropped."""
        gen = np.random.default_rng(0)
        x = gen.normal(size=(6, 4))  # 6 <= 2 * 4
        y = np.array([0, 0, 0, 1, 1, 1])
        sampler = GGBS(random_state=0)
        xs, _ = sampler.fit_resample(x, y)
        assert xs.shape[0] == 6

    def test_large_balls_subsampled(self, blobs2):
        x, y = blobs2
        sampler = GGBS(random_state=0)
        xs, _ = sampler.fit_resample(x, y)
        assert 0 < xs.shape[0] < x.shape[0]

    def test_output_subset_no_duplicates(self, blobs3):
        x, y = blobs3
        sampler = GGBS(random_state=0)
        xs, ys = sampler.fit_resample(x, y)
        idx = sampler.sample_indices_
        assert idx.size == np.unique(idx).size
        np.testing.assert_array_equal(xs, x[idx])
        np.testing.assert_array_equal(ys, y[idx])

    def test_ball_set_available_after_fit(self, blobs2):
        x, y = blobs2
        sampler = GGBS(random_state=0)
        sampler.fit_resample(x, y)
        assert sampler.ball_set_ is not None
        assert len(sampler.ball_set_) >= 1

    def test_noise_saturates_ratio(self, blobs2):
        """Label noise forces deep splitting: GGBS keeps almost everything
        (the failure mode motivating the paper, Fig. 6)."""
        x, y = blobs2
        gen = np.random.default_rng(9)
        y_noisy = y.copy()
        flip = gen.choice(y.size, size=int(0.3 * y.size), replace=False)
        y_noisy[flip] = 1 - y_noisy[flip]
        sampler = GGBS(random_state=0)
        sampler.fit_resample(x, y_noisy)
        assert sampler.sampling_ratio(x.shape[0]) > 0.9


class TestIGBS:
    def test_rebalances_toward_parity(self, imbalanced2):
        x, y = imbalanced2
        sampler = IGBS(random_state=0)
        _, ys = sampler.fit_resample(x, y)
        counts = np.bincount(ys)
        # Sampled majority/minority ratio must be far below the input 9:1.
        assert counts.max() / counts.min() < 4.0

    def test_minority_preserved(self, imbalanced2):
        x, y = imbalanced2
        sampler = IGBS(random_state=0)
        _, ys = sampler.fit_resample(x, y)
        # The minority class is never undersampled away.
        assert (ys == 1).sum() >= int(0.5 * (y == 1).sum())

    def test_output_subset(self, imbalanced2):
        x, y = imbalanced2
        sampler = IGBS(random_state=0)
        xs, ys = sampler.fit_resample(x, y)
        idx = sampler.sample_indices_
        np.testing.assert_array_equal(xs, x[idx])
        np.testing.assert_array_equal(ys, y[idx])
        assert idx.size == np.unique(idx).size

    def test_multiclass(self, blobs3):
        x, y = blobs3
        sampler = IGBS(random_state=0)
        _, ys = sampler.fit_resample(x, y)
        assert set(np.unique(ys)) == {0, 1, 2}
