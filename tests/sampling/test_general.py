"""Unit tests for systematic / stratified / bootstrap sampling."""

import numpy as np
import pytest

from repro.sampling.general import (
    BootstrapSampler,
    StratifiedSampler,
    SystematicSampler,
)


class TestSystematicSampler:
    def test_fixed_interval(self, blobs2):
        x, y = blobs2
        sampler = SystematicSampler(ratio=0.25, random_state=0)
        sampler.fit_resample(x, y)
        steps = np.diff(sampler.sample_indices_)
        assert (steps == 4).all()

    def test_ratio_approximate(self, blobs2):
        x, y = blobs2
        sampler = SystematicSampler(ratio=0.5, random_state=0)
        xs, _ = sampler.fit_resample(x, y)
        assert abs(xs.shape[0] / x.shape[0] - 0.5) < 0.05

    def test_start_depends_on_seed(self, blobs2):
        x, y = blobs2
        starts = set()
        for seed in range(10):
            sampler = SystematicSampler(ratio=0.2, random_state=seed)
            sampler.fit_resample(x, y)
            starts.add(int(sampler.sample_indices_[0]))
        assert len(starts) > 1

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            SystematicSampler(ratio=0.0)


class TestStratifiedSampler:
    def test_preserves_class_shares(self, imbalanced2):
        x, y = imbalanced2
        sampler = StratifiedSampler(ratio=0.5, random_state=0)
        xs, ys = sampler.fit_resample(x, y)
        orig_share = np.mean(y == 1)
        new_share = np.mean(ys == 1)
        assert abs(orig_share - new_share) < 0.02

    def test_every_class_survives(self, imbalanced2):
        x, y = imbalanced2
        sampler = StratifiedSampler(ratio=0.05, random_state=0)
        _, ys = sampler.fit_resample(x, y)
        assert set(np.unique(ys)) == set(np.unique(y))

    def test_indices_sorted_unique(self, blobs3):
        x, y = blobs3
        sampler = StratifiedSampler(ratio=0.4, random_state=1)
        sampler.fit_resample(x, y)
        idx = sampler.sample_indices_
        assert (np.diff(idx) > 0).all()


class TestBootstrapSampler:
    def test_size_preserved(self, blobs2):
        x, y = blobs2
        xs, ys = BootstrapSampler(random_state=0).fit_resample(x, y)
        assert xs.shape == x.shape
        assert ys.shape == y.shape

    def test_samples_with_replacement(self, blobs2):
        x, y = blobs2
        xs, _ = BootstrapSampler(random_state=0).fit_resample(x, y)
        # A bootstrap of 200 samples almost surely repeats rows.
        unique_rows = np.unique(xs, axis=0)
        assert unique_rows.shape[0] < xs.shape[0]

    def test_no_sample_indices(self, blobs2):
        x, y = blobs2
        sampler = BootstrapSampler(random_state=0)
        sampler.fit_resample(x, y)
        assert sampler.sample_indices_ is None
