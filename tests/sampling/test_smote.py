"""Unit tests for SMOTE, Borderline-SMOTE and SMOTENC."""

import numpy as np
import pytest

from repro.sampling.smote import SMOTE, SMOTENC, BorderlineSMOTE


class TestSMOTE:
    def test_balances_all_classes(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_original_samples_preserved(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xs[: x.shape[0]], x)
        np.testing.assert_array_equal(ys[: y.shape[0]], y)

    def test_synthetic_points_in_class_bounding_box(self, imbalanced2):
        """Interpolation stays on segments between same-class points."""
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        synth = xs[x.shape[0]:]
        minority = x[y == 1]
        lo, hi = minority.min(axis=0), minority.max(axis=0)
        assert (synth >= lo - 1e-9).all()
        assert (synth <= hi + 1e-9).all()

    def test_multiclass_balancing(self, blobs3):
        x, y = blobs3
        y = y.copy()
        # Make class 2 rare.
        keep = np.concatenate(
            [np.flatnonzero(y != 2), np.flatnonzero(y == 2)[:15]]
        )
        xs, ys = SMOTE(random_state=0).fit_resample(x[keep], y[keep])
        counts = np.bincount(ys)
        assert counts[0] == counts[1] == counts[2]

    def test_single_sample_class_duplicates(self):
        x = np.vstack([np.zeros((10, 2)), [[5.0, 5.0]]])
        y = np.array([0] * 10 + [1])
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        synth = xs[(ys == 1)][1:]
        np.testing.assert_allclose(synth, 5.0)

    def test_balanced_input_unchanged(self, blobs2):
        x, y = blobs2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        assert xs.shape[0] == x.shape[0]

    def test_deterministic(self, imbalanced2):
        x, y = imbalanced2
        a, _ = SMOTE(random_state=3).fit_resample(x, y)
        b, _ = SMOTE(random_state=3).fit_resample(x, y)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SMOTE(k_neighbors=0)


class TestBorderlineSMOTE:
    def test_balances_classes(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_synthesis_prefers_danger_zone(self):
        """Synthetic minority mass should concentrate near the boundary."""
        gen = np.random.default_rng(0)
        # Majority band on the left, minority blob touching it.
        x_maj = gen.normal([0.0, 0.0], 0.7, (200, 2))
        x_min = gen.normal([2.0, 0.0], 0.7, (40, 2))
        x = np.vstack([x_maj, x_min])
        y = np.array([0] * 200 + [1] * 40)
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x, y)
        synth = xs[240:]
        # DANGER minority samples sit at low x-coordinates (toward class 0),
        # so synthetic points should lean left of the minority mean.
        assert synth[:, 0].mean() < x_min[:, 0].mean() + 0.1

    def test_fallback_when_no_danger_samples(self, blobs2):
        """Well-separated classes have no DANGER zone; the sampler must
        still balance (falls back to plain SMOTE seeds)."""
        x, y = blobs2
        y = y.copy()
        keep = np.concatenate([np.flatnonzero(y == 0), np.flatnonzero(y == 1)[:30]])
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x[keep], y[keep])
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            BorderlineSMOTE(m_neighbors=0)


class TestSMOTENC:
    @pytest.fixture
    def mixed(self):
        gen = np.random.default_rng(1)
        x_cont = np.vstack(
            [gen.normal(0, 1, (90, 2)), gen.normal(3, 1, (20, 2))]
        )
        x_cat = np.vstack(
            [gen.integers(0, 3, (90, 1)), gen.integers(0, 3, (20, 1))]
        ).astype(float)
        x = np.hstack([x_cont, x_cat])
        y = np.array([0] * 90 + [1] * 20)
        return x, y

    def test_balances_classes(self, mixed):
        x, y = mixed
        xs, ys = SMOTENC(categorical_features=[2], random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_categorical_values_are_existing_levels(self, mixed):
        x, y = mixed
        xs, ys = SMOTENC(categorical_features=[2], random_state=0).fit_resample(x, y)
        synth = xs[x.shape[0]:]
        levels = set(np.unique(x[:, 2]).tolist())
        assert set(np.unique(synth[:, 2]).tolist()) <= levels

    def test_boolean_mask_spec(self, mixed):
        x, y = mixed
        mask = np.array([False, False, True])
        xs, _ = SMOTENC(categorical_features=mask, random_state=0).fit_resample(x, y)
        assert xs.shape[0] > x.shape[0]

    def test_all_categorical_degenerates_to_mismatch_metric(self):
        gen = np.random.default_rng(2)
        x = gen.integers(0, 4, (60, 3)).astype(float)
        y = np.array([0] * 45 + [1] * 15)
        xs, ys = SMOTENC(
            categorical_features=[0, 1, 2], random_state=0
        ).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]
        # All features categorical: synthetic rows only reuse seen levels.
        for col in range(3):
            assert set(np.unique(xs[:, col])) <= set(np.unique(x[:, col]))

    def test_rejects_wrong_mask_length(self, mixed):
        x, y = mixed
        with pytest.raises(ValueError, match="wrong length"):
            SMOTENC(categorical_features=np.array([True, False])).fit_resample(x, y)
