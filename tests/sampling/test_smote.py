"""Unit tests for SMOTE, Borderline-SMOTE and SMOTENC."""

import numpy as np
import pytest

from repro.sampling.smote import SMOTE, SMOTENC, BorderlineSMOTE


class TestSMOTE:
    def test_balances_all_classes(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_original_samples_preserved(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        np.testing.assert_array_equal(xs[: x.shape[0]], x)
        np.testing.assert_array_equal(ys[: y.shape[0]], y)

    def test_synthetic_points_in_class_bounding_box(self, imbalanced2):
        """Interpolation stays on segments between same-class points."""
        x, y = imbalanced2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        synth = xs[x.shape[0]:]
        minority = x[y == 1]
        lo, hi = minority.min(axis=0), minority.max(axis=0)
        assert (synth >= lo - 1e-9).all()
        assert (synth <= hi + 1e-9).all()

    def test_multiclass_balancing(self, blobs3):
        x, y = blobs3
        y = y.copy()
        # Make class 2 rare.
        keep = np.concatenate(
            [np.flatnonzero(y != 2), np.flatnonzero(y == 2)[:15]]
        )
        xs, ys = SMOTE(random_state=0).fit_resample(x[keep], y[keep])
        counts = np.bincount(ys)
        assert counts[0] == counts[1] == counts[2]

    def test_single_sample_class_duplicates(self):
        x = np.vstack([np.zeros((10, 2)), [[5.0, 5.0]]])
        y = np.array([0] * 10 + [1])
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        synth = xs[(ys == 1)][1:]
        np.testing.assert_allclose(synth, 5.0)

    def test_balanced_input_unchanged(self, blobs2):
        x, y = blobs2
        xs, ys = SMOTE(random_state=0).fit_resample(x, y)
        assert xs.shape[0] == x.shape[0]

    def test_deterministic(self, imbalanced2):
        x, y = imbalanced2
        a, _ = SMOTE(random_state=3).fit_resample(x, y)
        b, _ = SMOTE(random_state=3).fit_resample(x, y)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SMOTE(k_neighbors=0)


class TestBorderlineSMOTE:
    def test_balances_classes(self, imbalanced2):
        x, y = imbalanced2
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_synthesis_prefers_danger_zone(self):
        """Synthetic minority mass should concentrate near the boundary."""
        gen = np.random.default_rng(0)
        # Majority band on the left, minority blob touching it.
        x_maj = gen.normal([0.0, 0.0], 0.7, (200, 2))
        x_min = gen.normal([2.0, 0.0], 0.7, (40, 2))
        x = np.vstack([x_maj, x_min])
        y = np.array([0] * 200 + [1] * 40)
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x, y)
        synth = xs[240:]
        # DANGER minority samples sit at low x-coordinates (toward class 0),
        # so synthetic points should lean left of the minority mean.
        assert synth[:, 0].mean() < x_min[:, 0].mean() + 0.1

    def test_fallback_when_no_danger_samples(self, blobs2):
        """Well-separated classes have no DANGER zone; the sampler must
        still balance (falls back to plain SMOTE seeds)."""
        x, y = blobs2
        y = y.copy()
        keep = np.concatenate([np.flatnonzero(y == 0), np.flatnonzero(y == 1)[:30]])
        xs, ys = BorderlineSMOTE(random_state=0).fit_resample(x[keep], y[keep])
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            BorderlineSMOTE(m_neighbors=0)

    def test_rng_compat_default_pins_historical_stream(self):
        """Golden pin of the compat stream: the default mode must keep
        reproducing the exact synthetic rows every published result used
        (interleaved scalar partner/gap draws)."""
        gen = np.random.default_rng(5)
        x = np.vstack(
            [gen.normal([0, 0], 0.8, (30, 2)), gen.normal([1.5, 0], 0.8, (10, 2))]
        )
        y = np.array([0] * 30 + [1] * 10)
        sampler = BorderlineSMOTE(random_state=7)
        assert sampler.rng_compat
        xs, _ys = sampler.fit_resample(x, y)
        expected_head = np.array(
            [
                [0.58799301, -0.92629384],
                [1.76919109, -0.2390103],
                [0.87195072, -0.34717525],
            ]
        )
        assert xs.shape[0] - x.shape[0] == 20
        np.testing.assert_allclose(xs[40:43], expected_head, atol=1e-8)

    def test_rng_compat_false_is_deterministic_and_balances(self, imbalanced2):
        x, y = imbalanced2
        a = BorderlineSMOTE(random_state=3, rng_compat=False).fit_resample(x, y)
        b = BorderlineSMOTE(random_state=3, rng_compat=False).fit_resample(x, y)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        counts = np.bincount(a[1])
        assert counts[0] == counts[1]
        # Originals are preserved; synthetic rows stay inside the minority
        # bounding box (same invariants as compat mode).
        np.testing.assert_array_equal(a[0][: x.shape[0]], x)
        synth = a[0][x.shape[0]:]
        minority = x[y == 1]
        assert (synth >= minority.min(axis=0) - 1e-9).all()
        assert (synth <= minority.max(axis=0) + 1e-9).all()

    def test_rng_compat_modes_share_base_choice(self, imbalanced2, monkeypatch):
        """Both modes draw base positions identically (the first batched
        ``integers`` call); only the partner/gap stream after it differs."""
        x, y = imbalanced2
        real_default_rng = np.random.default_rng

        class SpyRng:
            def __init__(self, inner, log):
                self._inner = inner
                self._log = log

            def integers(self, *args, **kwargs):
                value = self._inner.integers(*args, **kwargs)
                self._log.append(np.array(value, ndmin=1, copy=True))
                return value

            def random(self, *args, **kwargs):
                return self._inner.random(*args, **kwargs)

        def base_draw(rng_compat):
            log = []
            monkeypatch.setattr(
                np.random,
                "default_rng",
                lambda seed=None: SpyRng(real_default_rng(seed), log),
            )
            result = BorderlineSMOTE(
                random_state=11, rng_compat=rng_compat
            ).fit_resample(x, y)
            monkeypatch.setattr(np.random, "default_rng", real_default_rng)
            assert log, "sampler drew no integers"
            return log[0], result

        compat_base, compat = base_draw(True)
        batched_base, batched = base_draw(False)
        assert compat_base.size > 1  # the batched base_pos draw, not a scalar
        np.testing.assert_array_equal(compat_base, batched_base)
        assert compat[0].shape == batched[0].shape
        np.testing.assert_array_equal(compat[1], batched[1])


class TestSMOTENC:
    @pytest.fixture
    def mixed(self):
        gen = np.random.default_rng(1)
        x_cont = np.vstack(
            [gen.normal(0, 1, (90, 2)), gen.normal(3, 1, (20, 2))]
        )
        x_cat = np.vstack(
            [gen.integers(0, 3, (90, 1)), gen.integers(0, 3, (20, 1))]
        ).astype(float)
        x = np.hstack([x_cont, x_cat])
        y = np.array([0] * 90 + [1] * 20)
        return x, y

    def test_balances_classes(self, mixed):
        x, y = mixed
        xs, ys = SMOTENC(categorical_features=[2], random_state=0).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]

    def test_categorical_values_are_existing_levels(self, mixed):
        x, y = mixed
        xs, ys = SMOTENC(categorical_features=[2], random_state=0).fit_resample(x, y)
        synth = xs[x.shape[0]:]
        levels = set(np.unique(x[:, 2]).tolist())
        assert set(np.unique(synth[:, 2]).tolist()) <= levels

    def test_boolean_mask_spec(self, mixed):
        x, y = mixed
        mask = np.array([False, False, True])
        xs, _ = SMOTENC(categorical_features=mask, random_state=0).fit_resample(x, y)
        assert xs.shape[0] > x.shape[0]

    def test_all_categorical_degenerates_to_mismatch_metric(self):
        gen = np.random.default_rng(2)
        x = gen.integers(0, 4, (60, 3)).astype(float)
        y = np.array([0] * 45 + [1] * 15)
        xs, ys = SMOTENC(
            categorical_features=[0, 1, 2], random_state=0
        ).fit_resample(x, y)
        counts = np.bincount(ys)
        assert counts[0] == counts[1]
        # All features categorical: synthetic rows only reuse seen levels.
        for col in range(3):
            assert set(np.unique(xs[:, col])) <= set(np.unique(x[:, col]))

    def test_rejects_wrong_mask_length(self, mixed):
        x, y = mixed
        with pytest.raises(ValueError, match="wrong length"):
            SMOTENC(categorical_features=np.array([True, False])).fit_resample(x, y)
