"""Unit tests for the sampler registry."""

import numpy as np
import pytest

from repro.core.gbabs import GBABS
from repro.sampling import SAMPLER_NAMES, make_sampler
from repro.sampling.srs import SimpleRandomSampler


class TestMakeSampler:
    def test_all_names_constructible(self):
        for name in SAMPLER_NAMES:
            kwargs = {}
            if name in ("srs", "systematic", "stratified"):
                kwargs["ratio"] = 0.5
            if name == "smnc":
                kwargs["categorical_features"] = [0]
            sampler = make_sampler(name, **kwargs)
            assert hasattr(sampler, "fit_resample")

    def test_gbabs_returns_core_class(self):
        assert isinstance(make_sampler("gbabs", random_state=0), GBABS)

    def test_srs_with_ratio(self):
        sampler = make_sampler("srs", ratio=0.3, random_state=1)
        assert isinstance(sampler, SimpleRandomSampler)
        assert sampler.ratio == 0.3

    def test_case_insensitive(self):
        assert isinstance(make_sampler("SRS", ratio=0.5), SimpleRandomSampler)

    def test_tomek_ignores_random_state(self):
        sampler = make_sampler("tomek", random_state=5)
        assert not hasattr(sampler, "random_state")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("does-not-exist")

    def test_every_sampler_runs(self, imbalanced2):
        x, y = imbalanced2
        for name in SAMPLER_NAMES:
            kwargs = {"random_state": 0}
            if name in ("srs", "systematic", "stratified"):
                kwargs["ratio"] = 0.5
            if name == "smnc":
                kwargs["categorical_features"] = [1]
            sampler = make_sampler(name, **kwargs)
            xs, ys = sampler.fit_resample(x, y)
            assert xs.shape[0] == ys.shape[0]
            assert xs.shape[0] > 0
            assert set(np.unique(ys)) <= set(np.unique(y))
