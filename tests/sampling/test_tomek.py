"""Unit tests for Tomek links."""

import numpy as np

from repro.sampling.tomek import TomekLinks, find_tomek_links


class TestFindTomekLinks:
    def test_hand_built_link(self):
        # Two close heterogeneous points far from everything else.
        x = np.array([[0.0, 0.0], [0.2, 0.0], [10.0, 0.0], [10.3, 0.0]])
        y = np.array([0, 1, 0, 0])
        links = find_tomek_links(x, y)
        assert links.shape == (1, 2)
        assert tuple(links[0]) == (0, 1)

    def test_homogeneous_mutual_pairs_are_not_links(self):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        y = np.array([0, 0, 1, 1])
        assert find_tomek_links(x, y).shape == (0, 2)

    def test_non_mutual_neighbours_are_not_links(self):
        # b's nearest is c, but c's nearest is d: no (b, c) link.
        x = np.array([[0.0], [1.0], [1.6], [1.7]])
        y = np.array([0, 0, 1, 1])
        links = find_tomek_links(x, y)
        assert all(tuple(link) != (1, 2) for link in links)

    def test_tiny_input(self):
        assert find_tomek_links(np.zeros((1, 2)), np.zeros(1)).shape == (0, 2)


class TestTomekLinks:
    def test_removes_majority_member(self):
        x = np.array([[0.0, 0.0], [0.2, 0.0], [10.0, 0.0], [10.3, 0.0], [-5.0, 0.0]])
        y = np.array([0, 1, 0, 0, 0])  # class 0 is the majority
        sampler = TomekLinks()
        xs, ys = sampler.fit_resample(x, y)
        # The class-0 member of the (0, 1) link is dropped.
        assert 0 not in sampler.sample_indices_
        assert 1 in sampler.sample_indices_
        assert xs.shape[0] == 4

    def test_remove_both_variant(self):
        x = np.array([[0.0, 0.0], [0.2, 0.0], [10.0, 0.0], [10.3, 0.0], [-5.0, 0.0]])
        y = np.array([0, 1, 0, 0, 0])
        sampler = TomekLinks(remove_both=True)
        sampler.fit_resample(x, y)
        assert 0 not in sampler.sample_indices_
        assert 1 not in sampler.sample_indices_

    def test_no_links_keeps_everything(self, blobs2):
        x, y = blobs2
        sampler = TomekLinks()
        xs, _ = sampler.fit_resample(x, y)
        # Well-separated blobs have no heterogeneous mutual pairs.
        assert xs.shape[0] == x.shape[0]

    def test_boundary_cleaning_on_overlap(self, noisy_blobs2):
        x, y = noisy_blobs2
        sampler = TomekLinks()
        xs, _ = sampler.fit_resample(x, y)
        # Flipped labels create heterogeneous mutual pairs to clean.
        assert xs.shape[0] < x.shape[0]

    def test_deterministic(self, moons):
        x, y = moons
        a = TomekLinks()
        b = TomekLinks()
        a.fit_resample(x, y)
        b.fit_resample(x, y)
        np.testing.assert_array_equal(a.sample_indices_, b.sample_indices_)
