"""Shared fixtures: small, deterministic datasets used across the suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_cellstore(tmp_path_factory):
    """Point the experiment result store at a per-session temp directory.

    Keeps the test suite hermetic: no test reads cells persisted by an
    earlier run (stale results would mask behaviour changes) and no test
    pollutes ``benchmarks/output/cellstore``.
    """
    from repro.experiments.runner import configure_store

    configure_store(root=tmp_path_factory.mktemp("cellstore"))
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def blobs2():
    """Two well-separated Gaussian blobs (easy binary problem), n=200."""
    gen = np.random.default_rng(0)
    x = np.vstack(
        [gen.normal([0.0, 0.0], 0.6, (100, 2)), gen.normal([4.0, 4.0], 0.6, (100, 2))]
    )
    y = np.repeat([0, 1], 100)
    perm = gen.permutation(200)
    return x[perm], y[perm]


@pytest.fixture
def blobs3():
    """Three moderately overlapping blobs in 3-D, n=240."""
    gen = np.random.default_rng(1)
    centers = np.array([[0, 0, 0], [3, 0, 1], [0, 3, -1]], dtype=float)
    x = np.vstack([gen.normal(c, 1.0, (80, 3)) for c in centers])
    y = np.repeat([0, 1, 2], 80)
    perm = gen.permutation(240)
    return x[perm], y[perm]


@pytest.fixture
def moons():
    """Two interleaved crescents with mild noise, n=300."""
    gen = np.random.default_rng(2)
    n = 150
    t0 = gen.uniform(0, np.pi, n)
    t1 = gen.uniform(0, np.pi, n)
    x = np.vstack(
        [
            np.column_stack([np.cos(t0), np.sin(t0)]),
            np.column_stack([1 - np.cos(t1), 0.5 - np.sin(t1)]),
        ]
    )
    x += gen.normal(scale=0.12, size=x.shape)
    y = np.repeat([0, 1], n)
    perm = gen.permutation(2 * n)
    return x[perm], y[perm]


@pytest.fixture
def noisy_blobs2(blobs2):
    """The blobs2 dataset with 20% flipped labels."""
    x, y = blobs2
    gen = np.random.default_rng(3)
    y_noisy = y.copy()
    flip = gen.choice(y.size, size=int(0.2 * y.size), replace=False)
    y_noisy[flip] = 1 - y_noisy[flip]
    return x, y_noisy


@pytest.fixture
def imbalanced2():
    """Binary dataset with a 9:1 class ratio, n=300."""
    gen = np.random.default_rng(4)
    x = np.vstack(
        [gen.normal([0, 0], 1.0, (270, 2)), gen.normal([2.5, 2.5], 0.8, (30, 2))]
    )
    y = np.array([0] * 270 + [1] * 30)
    perm = gen.permutation(300)
    return x[perm], y[perm]
