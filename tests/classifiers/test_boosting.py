"""Unit tests for the gradient-boosting classifiers."""

import numpy as np
import pytest

from repro.classifiers.boosting import (
    LightGBMClassifier,
    XGBoostClassifier,
    _Binner,
)


class TestBinner:
    def test_codes_in_range(self, rng):
        x = rng.normal(size=(100, 4))
        binner = _Binner(max_bins=16).fit(x)
        codes = binner.transform(x)
        assert codes.min() >= 0
        assert codes.max() < 16

    def test_train_test_consistency(self, rng):
        x = rng.normal(size=(100, 2))
        binner = _Binner(max_bins=8).fit(x)
        codes_a = binner.transform(x[:10])
        codes_b = binner.transform(x[:10])
        np.testing.assert_array_equal(codes_a, codes_b)

    def test_monotone_in_value(self, rng):
        x = rng.normal(size=(200, 1))
        binner = _Binner(max_bins=32).fit(x)
        order = np.argsort(x[:, 0])
        codes = binner.transform(x)[order, 0]
        assert (np.diff(codes) >= 0).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            _Binner().transform(np.zeros((2, 2)))

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            _Binner(max_bins=1)


@pytest.mark.parametrize("cls", [XGBoostClassifier, LightGBMClassifier])
class TestBoostingCommon:
    def test_separable_binary(self, cls, blobs2):
        x, y = blobs2
        model = cls(n_estimators=20).fit(x, y)
        assert model.score(x, y) >= 0.99

    def test_multiclass(self, cls, blobs3):
        x, y = blobs3
        model = cls(n_estimators=25).fit(x, y)
        assert model.score(x, y) >= 0.9

    def test_more_rounds_do_not_hurt_train_fit(self, cls, moons):
        x, y = moons
        small = cls(n_estimators=5).fit(x, y).score(x, y)
        large = cls(n_estimators=40).fit(x, y).score(x, y)
        assert large >= small - 1e-9

    def test_proba_rows_sum_to_one(self, cls, blobs3):
        x, y = blobs3
        model = cls(n_estimators=10).fit(x, y)
        proba = model.predict_proba(x[:15])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_deterministic(self, cls, moons):
        x, y = moons
        a = cls(n_estimators=8).fit(x, y).predict(x)
        b = cls(n_estimators=8).fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)

    def test_noncontiguous_labels(self, cls):
        gen = np.random.default_rng(0)
        x = np.vstack([gen.normal(0, 0.5, (40, 2)), gen.normal(4, 0.5, (40, 2))])
        y = np.array([7] * 40 + [70] * 40)
        model = cls(n_estimators=10).fit(x, y)
        assert set(np.unique(model.predict(x))) <= {7, 70}
        assert model.score(x, y) >= 0.99

    def test_rejects_bad_n_estimators(self, cls):
        with pytest.raises(ValueError):
            cls(n_estimators=0)


class TestGrowthPolicies:
    def test_leafwise_num_leaves_bound(self, moons):
        x, y = moons
        model = LightGBMClassifier(n_estimators=3, num_leaves=4).fit(x, y)
        for round_trees in model._trees:
            for tree in round_trees:
                n_leaves = int((tree.feature_ == -1).sum())
                assert n_leaves <= 4

    def test_depthwise_max_depth_bound(self, moons):
        x, y = moons

        def depth_of(tree):
            depth = np.zeros(tree.feature_.size, dtype=int)
            for nid in range(tree.feature_.size):
                if tree.feature_[nid] != -1:
                    depth[tree.left_[nid]] = depth[nid] + 1
                    depth[tree.right_[nid]] = depth[nid] + 1
            return depth.max() if depth.size else 0

        model = XGBoostClassifier(n_estimators=3, max_depth=2).fit(x, y)
        for round_trees in model._trees:
            for tree in round_trees:
                assert depth_of(tree) <= 2

    def test_lightgbm_rejects_bad_num_leaves(self):
        with pytest.raises(ValueError):
            LightGBMClassifier(num_leaves=1)

    def test_min_child_samples_limits_growth(self, moons):
        x, y = moons
        strict = LightGBMClassifier(n_estimators=2, min_child_samples=100).fit(x, y)
        loose = LightGBMClassifier(n_estimators=2, min_child_samples=5).fit(x, y)

        def total_leaves(model):
            return sum(
                int((t.feature_ == -1).sum())
                for rt in model._trees
                for t in rt
            )

        assert total_leaves(strict) <= total_leaves(loose)
