"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.classifiers.tree import DecisionTreeClassifier


class TestTreeFitting:
    def test_perfect_fit_on_separable(self, blobs2):
        x, y = blobs2
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_perfect_fit_on_distinct_points(self, rng):
        """Unbounded CART memorises any dataset with distinct rows."""
        x = rng.normal(size=(80, 3))
        y = rng.integers(0, 3, size=80)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_xor_structure_learnable(self):
        """Zero-gain first cut (XOR) must not stop the tree."""
        gen = np.random.default_rng(0)
        x = gen.uniform(-1, 1, size=(200, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.score(x, y) == 1.0

    def test_single_class_training(self):
        x = np.random.default_rng(1).normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == 0).all()
        assert tree.n_nodes_ == 1

    def test_max_depth_respected(self, moons):
        x, y = moons
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf_respected(self, moons):
        x, y = moons
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(x, y)
        leaf_sizes = tree.value_[tree.feature_ == -1].sum(axis=1)
        assert (leaf_sizes >= 10).all()

    def test_min_samples_split_respected(self, moons):
        x, y = moons
        tree = DecisionTreeClassifier(min_samples_split=50).fit(x, y)
        internal = tree.feature_ != -1
        node_sizes = tree.value_.sum(axis=1)
        assert (node_sizes[internal] >= 50).all()

    def test_deterministic_without_feature_subsampling(self, moons):
        x, y = moons
        a = DecisionTreeClassifier().fit(x, y)
        b = DecisionTreeClassifier().fit(x, y)
        query = x[:50]
        np.testing.assert_array_equal(a.predict(query), b.predict(query))

    def test_feature_subsampling_uses_seed(self, blobs3):
        x, y = blobs3
        a = DecisionTreeClassifier(max_features=1, random_state=1).fit(x, y)
        b = DecisionTreeClassifier(max_features=1, random_state=1).fit(x, y)
        np.testing.assert_array_equal(a.feature_, b.feature_)


class TestTreePrediction:
    def test_predict_proba_rows_sum_to_one(self, moons):
        x, y = moons
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        proba = tree.predict_proba(x[:20])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_apply_returns_leaves(self, moons):
        x, y = moons
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)
        leaves = tree.apply(x[:30])
        assert (tree.feature_[leaves] == -1).all()

    def test_threshold_semantics(self):
        """Points equal to the threshold go left (<=)."""
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        thr = tree.threshold_[0]
        assert 1.0 <= thr < 2.0
        assert tree.predict(np.array([[thr]]))[0] == 0

    def test_noncontiguous_labels(self):
        x = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([5, 5, 99, 99])
        tree = DecisionTreeClassifier().fit(x, y)
        np.testing.assert_array_equal(tree.predict(x), y)


class TestTreeValidation:
    def test_rejects_bad_min_samples_split(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_rejects_bad_min_samples_leaf(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_rejects_bad_max_features(self, blobs2):
        x, y = blobs2
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features="bogus").fit(x, y)
        with pytest.raises(ValueError, match="out of range"):
            DecisionTreeClassifier(max_features=99).fit(x, y)

    def test_predict_before_fit(self, blobs2):
        x, _ = blobs2
        with pytest.raises(RuntimeError, match="fitted"):
            DecisionTreeClassifier().predict(x)
