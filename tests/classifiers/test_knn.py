"""Unit tests for the k-nearest-neighbour classifier."""

import numpy as np
import pytest

from repro.classifiers.knn import KNeighborsClassifier


class TestKNN:
    def test_hand_computed_vote(self):
        x = np.array([[0.0], [0.1], [0.2], [5.0], [5.1]])
        y = np.array([0, 0, 0, 1, 1])
        knn = KNeighborsClassifier(n_neighbors=3).fit(x, y)
        assert knn.predict(np.array([[0.05]]))[0] == 0
        assert knn.predict(np.array([[5.05]]))[0] == 1

    def test_k_one_is_nearest_neighbor_rule(self, blobs2):
        x, y = blobs2
        knn = KNeighborsClassifier(n_neighbors=1).fit(x, y)
        assert knn.score(x, y) == 1.0

    def test_perfect_on_separable(self, blobs2):
        x, y = blobs2
        knn = KNeighborsClassifier(n_neighbors=5).fit(x, y)
        assert knn.score(x, y) == 1.0

    def test_k_clipped_to_training_size(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        knn = KNeighborsClassifier(n_neighbors=10).fit(x, y)
        pred = knn.predict(np.array([[0.4]]))
        assert pred[0] in (0, 1)

    def test_permutation_invariance(self, blobs3):
        x, y = blobs3
        gen = np.random.default_rng(0)
        perm = gen.permutation(x.shape[0])
        a = KNeighborsClassifier().fit(x, y)
        b = KNeighborsClassifier().fit(x[perm], y[perm])
        query = gen.normal(size=(20, 3))
        np.testing.assert_array_equal(a.predict(query), b.predict(query))

    def test_predict_proba_rows_sum_to_one(self, blobs3):
        x, y = blobs3
        knn = KNeighborsClassifier().fit(x, y)
        proba = knn.predict_proba(x[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (10, 3)

    def test_classes_preserved_for_noncontiguous_labels(self):
        x = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array([10, 10, 42, 42])
        knn = KNeighborsClassifier(n_neighbors=1).fit(x, y)
        np.testing.assert_array_equal(knn.classes_, [10, 42])
        assert knn.predict(np.array([[5.05]]))[0] == 42

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)
