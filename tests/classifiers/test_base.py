"""Unit tests for the estimator protocol (params, clone, validation)."""

import numpy as np
import pytest

from repro.classifiers.base import check_fit_inputs, clone, validate_fitted
from repro.classifiers.knn import KNeighborsClassifier
from repro.classifiers.tree import DecisionTreeClassifier


class TestParams:
    def test_get_params_roundtrip(self):
        tree = DecisionTreeClassifier(max_depth=4, min_samples_leaf=2)
        params = tree.get_params()
        assert params["max_depth"] == 4
        assert params["min_samples_leaf"] == 2

    def test_set_params(self):
        tree = DecisionTreeClassifier()
        tree.set_params(max_depth=7)
        assert tree.max_depth == 7

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            DecisionTreeClassifier().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, blobs2):
        x, y = blobs2
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        copy = clone(tree)
        assert copy.max_depth == 3
        assert copy.classes_ is None
        assert copy is not tree


class TestValidation:
    def test_check_fit_inputs_canonicalises(self):
        x, y = check_fit_inputs([[1, 2]], [1.0])
        assert x.dtype == np.float64
        assert np.issubdtype(y.dtype, np.integer)

    def test_check_fit_inputs_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_fit_inputs(np.empty((0, 2)), np.empty(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            validate_fitted(KNeighborsClassifier())

    def test_score_is_accuracy(self, blobs2):
        x, y = blobs2
        knn = KNeighborsClassifier().fit(x, y)
        assert knn.score(x, y) == pytest.approx(
            np.mean(knn.predict(x) == y)
        )
