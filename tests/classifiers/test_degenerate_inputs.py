"""Classifier behaviour on degenerate feature matrices.

Constant features, duplicated rows and single-column inputs are the inputs
real pipelines feed after aggressive sampling; every classifier must handle
them without crashing or looping.
"""

import numpy as np
import pytest

from repro.classifiers import (
    CLASSIFIER_NAMES,
    make_classifier,
)
from repro.classifiers.boosting import _Binner
from repro.classifiers.tree import DecisionTreeClassifier


def _small(name):
    kwargs = {}
    if name in ("rf",):
        kwargs = {"n_estimators": 5, "random_state": 0}
    if name in ("xgboost", "lightgbm"):
        kwargs = {"n_estimators": 5}
    if name == "gb":
        kwargs = {"random_state": 0}
    return make_classifier(name, **kwargs)


class TestConstantFeatures:
    @pytest.mark.parametrize("name", CLASSIFIER_NAMES)
    def test_all_constant_features(self, name):
        """Nothing separates the classes; majority prediction is fine."""
        x = np.ones((30, 3))
        y = np.array([0] * 20 + [1] * 10)
        clf = _small(name).fit(x, y)
        preds = clf.predict(x)
        assert preds.shape == (30,)
        assert set(np.unique(preds)) <= {0, 1}

    def test_tree_stops_on_constant_node(self):
        x = np.ones((20, 2))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.n_nodes_ == 1  # no valid boundary anywhere

    def test_binner_constant_column(self):
        x = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        binner = _Binner(max_bins=8).fit(x)
        codes = binner.transform(x)
        assert (codes[:, 0] == codes[0, 0]).all()


class TestDuplicatedRows:
    @pytest.mark.parametrize("name", CLASSIFIER_NAMES)
    def test_conflicting_duplicates(self, name):
        """Identical points with different labels cannot be separated but
        must not break fitting."""
        x = np.repeat([[0.0, 0.0], [5.0, 5.0]], 10, axis=0)
        y = np.array([0] * 9 + [1] + [1] * 9 + [0])
        clf = _small(name).fit(x, y)
        assert clf.score(x, y) >= 0.5


class TestSingleColumn:
    @pytest.mark.parametrize("name", CLASSIFIER_NAMES)
    def test_one_feature(self, name):
        gen = np.random.default_rng(0)
        x = np.concatenate([gen.normal(0, 0.3, 40), gen.normal(3, 0.3, 40)])[:, None]
        y = np.repeat([0, 1], 40)
        clf = _small(name).fit(x, y)
        assert clf.score(x, y) >= 0.95


class TestTwoSamples:
    @pytest.mark.parametrize("name", ["dt", "gb"])
    def test_minimal_dataset(self, name):
        x = np.array([[0.0], [10.0]])
        y = np.array([0, 1])
        clf = _small(name).fit(x, y)
        np.testing.assert_array_equal(clf.predict(x), y)

    def test_minimal_dataset_knn(self):
        # k is clipped to the training size; with two samples a default
        # k=5 becomes a 2-vote tie, so the 1-NN setting is the meaningful
        # minimal configuration.
        x = np.array([[0.0], [10.0]])
        y = np.array([0, 1])
        clf = make_classifier("knn", n_neighbors=1).fit(x, y)
        np.testing.assert_array_equal(clf.predict(x), y)
