"""Unit tests for the random forest."""

import numpy as np
import pytest

from repro.classifiers.forest import RandomForestClassifier


class TestRandomForest:
    def test_perfect_on_separable(self, blobs2):
        x, y = blobs2
        rf = RandomForestClassifier(n_estimators=15, random_state=0).fit(x, y)
        assert rf.score(x, y) == 1.0

    def test_number_of_trees(self, blobs2):
        x, y = blobs2
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(x, y)
        assert len(rf.estimators_) == 7

    def test_deterministic_given_seed(self, blobs3):
        x, y = blobs3
        a = RandomForestClassifier(n_estimators=10, random_state=3).fit(x, y)
        b = RandomForestClassifier(n_estimators=10, random_state=3).fit(x, y)
        query = x[:40]
        np.testing.assert_array_equal(a.predict(query), b.predict(query))

    def test_seed_changes_forest(self, moons):
        x, y = moons
        a = RandomForestClassifier(n_estimators=5, random_state=1).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, random_state=2).fit(x, y)
        pa = a.predict_proba(x)
        pb = b.predict_proba(x)
        assert not np.allclose(pa, pb)

    def test_proba_rows_sum_to_one(self, blobs3):
        x, y = blobs3
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(x, y)
        proba = rf.predict_proba(x[:20])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (20, 3)

    def test_proba_alignment_with_missing_class_in_bootstrap(self):
        """A rare class can vanish from some bootstrap draws; per-tree
        probabilities must still land in the right forest column."""
        gen = np.random.default_rng(0)
        x = np.vstack([gen.normal(0, 1, (60, 2)), gen.normal(6, 0.3, (3, 2))])
        y = np.array([0] * 60 + [1] * 3)
        rf = RandomForestClassifier(n_estimators=25, random_state=0).fit(x, y)
        proba = rf.predict_proba(np.array([[6.0, 6.0], [0.0, 0.0]]))
        assert proba[0, 1] > proba[0, 0]
        assert proba[1, 0] > proba[1, 1]

    def test_without_bootstrap(self, blobs2):
        x, y = blobs2
        rf = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(x, y)
        assert rf.score(x, y) == 1.0

    def test_forest_beats_single_stump_on_moons(self, moons):
        from repro.classifiers.tree import DecisionTreeClassifier

        x, y = moons
        train, test = slice(0, 200), slice(200, None)
        stump = DecisionTreeClassifier(max_depth=1).fit(x[train], y[train])
        rf = RandomForestClassifier(n_estimators=30, random_state=0).fit(
            x[train], y[train]
        )
        assert rf.score(x[test], y[test]) > stump.score(x[test], y[test])

    def test_rejects_bad_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
