"""Unit tests for the classifier registry."""

import pytest

from repro.classifiers import CLASSIFIER_NAMES, make_classifier


class TestMakeClassifier:
    def test_all_names_constructible(self):
        for name in CLASSIFIER_NAMES:
            clf = make_classifier(name)
            assert hasattr(clf, "fit") and hasattr(clf, "predict")

    def test_kwargs_forwarded(self):
        rf = make_classifier("rf", n_estimators=3)
        assert rf.n_estimators == 3

    def test_case_insensitive(self):
        assert make_classifier("DT") is not None

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown classifier"):
            make_classifier("svm")

    def test_all_fit_and_predict(self, blobs2):
        x, y = blobs2
        for name in CLASSIFIER_NAMES:
            kwargs = {}
            if name in ("rf",):
                kwargs = {"n_estimators": 5, "random_state": 0}
            if name in ("xgboost", "lightgbm"):
                kwargs = {"n_estimators": 5}
            clf = make_classifier(name, **kwargs).fit(x, y)
            assert clf.score(x, y) > 0.95
