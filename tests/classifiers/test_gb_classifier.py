"""Unit tests for the granular-ball classifier."""

import numpy as np
import pytest

from repro.classifiers.gb_classifier import GranularBallClassifier


class TestGranularBallClassifier:
    def test_perfect_on_separable(self, blobs2):
        x, y = blobs2
        clf = GranularBallClassifier(rho=5, random_state=0).fit(x, y)
        assert clf.score(x, y) == 1.0

    def test_multiclass(self, blobs3):
        x, y = blobs3
        clf = GranularBallClassifier(rho=5, random_state=0).fit(x, y)
        assert clf.score(x, y) > 0.85
        assert set(np.unique(clf.predict(x))) <= {0, 1, 2}

    def test_compression(self, blobs2):
        x, y = blobs2
        clf = GranularBallClassifier(rho=5, random_state=0).fit(x, y)
        assert 0.0 < clf.compression_ratio() < 1.0
        assert clf.n_balls_ == len(clf.ball_set_)

    def test_orphan_exclusion_reduces_model(self, noisy_blobs2):
        x, y = noisy_blobs2
        with_orphans = GranularBallClassifier(
            rho=5, random_state=0, include_orphans=True
        ).fit(x, y)
        without = GranularBallClassifier(
            rho=5, random_state=0, include_orphans=False
        ).fit(x, y)
        assert without.n_balls_ <= with_orphans.n_balls_

    def test_noise_robustness(self, blobs2, noisy_blobs2):
        """Trained on 20% flipped labels, scored against the clean ones."""
        x, y_clean = blobs2
        _, y_noisy = noisy_blobs2
        clf = GranularBallClassifier(rho=5, random_state=0).fit(x, y_noisy)
        # RD-GBG's noise removal keeps the decision surface near the truth.
        assert np.mean(clf.predict(x) == y_clean) > 0.85

    def test_single_class(self):
        gen = np.random.default_rng(0)
        x = gen.normal(size=(30, 2))
        y = np.zeros(30, dtype=int)
        clf = GranularBallClassifier(rho=5, random_state=0).fit(x, y)
        assert (clf.predict(x) == 0).all()

    def test_predict_before_fit_raises(self, blobs2):
        x, _ = blobs2
        with pytest.raises(RuntimeError):
            GranularBallClassifier().predict(x)

    def test_registry_name(self, blobs2):
        from repro.classifiers import make_classifier

        x, y = blobs2
        clf = make_classifier("gb", random_state=0).fit(x, y)
        assert clf.score(x, y) == 1.0
