"""Smoke tests for the table regenerators on a micro profile."""

import numpy as np
import pytest

from repro.experiments import tables
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_cache

MICRO = ExperimentConfig(
    name="micro-test",
    size_factor=0.05,
    datasets=("S2", "S5", "S6"),
    n_splits=2,
    n_repeats=1,
    n_estimators=3,
    noise_ratios=(0.1, 0.3),
    rho_grid=(3, 9),
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestTable1:
    def test_structure_and_format(self):
        result = tables.table1(MICRO)
        assert len(result["rows"]) == 13
        text = tables.format_table1(result)
        assert "banana" in text and "USPS" in text


class TestTable2:
    def test_structure(self):
        result = tables.table2(MICRO)
        assert result["datasets"] == ["S2", "S5", "S6"]
        for method in ("gbabs", "ggbs", "srs", "ori"):
            assert result["accuracy"][method].shape == (3,)
            assert 0.0 <= result["average"][method] <= 1.0
        # The no-sampling pipeline keeps everything.
        np.testing.assert_allclose(result["sampling_ratio"]["ori"], 1.0)
        # GBABS actually compresses.
        assert (result["sampling_ratio"]["gbabs"] < 1.0).all()

    def test_format_contains_rows(self):
        result = tables.table2(MICRO)
        text = tables.format_table2(result)
        assert "GBABS-DT" in text and "Average" in text


class TestTable3:
    def test_wilcoxon_over_table2(self):
        t2 = tables.table2(MICRO)
        result = tables.table3(MICRO, t2)
        assert set(result["comparisons"]) == {"ggbs", "srs", "ori"}
        for comp in result["comparisons"].values():
            assert 0.0 <= comp["p_value"] <= 1.0
        text = tables.format_table3(result)
        assert "GBABS-DT vs. GGBS-DT" in text


class TestTable4:
    def test_structure(self):
        result = tables.table4(MICRO)
        assert result["noise_ratios"] == [0.1, 0.3]
        for clf in result["classifiers"]:
            for method in result["methods"]:
                values = result["mean_accuracy"][(clf, method)]
                assert len(values) == 2
        # per-dataset slices exist for the figure reuse.
        assert ("dt", "gbabs", 0.1) in result["per_dataset"]
        assert result["per_dataset"][("dt", "gbabs", 0.1)].shape == (3,)

    def test_format(self):
        result = tables.table4(MICRO)
        text = tables.format_table4(result)
        assert "GBABS-XGBoost" in text
        assert "10%" in text and "30%" in text
