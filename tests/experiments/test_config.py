"""Unit tests for experiment configuration profiles."""

import pytest

from repro.experiments.config import FULL, MEDIUM, QUICK, active_config


class TestProfiles:
    def test_full_matches_paper_protocol(self):
        assert FULL.size_factor == 1.0
        assert FULL.n_splits == 5
        assert FULL.n_repeats == 5
        assert FULL.n_estimators == 100
        assert len(FULL.datasets) == 13
        assert FULL.noise_ratios == (0.05, 0.10, 0.20, 0.30, 0.40)
        assert FULL.rho_grid == (3, 5, 7, 9, 11, 13, 15, 17, 19)

    def test_quick_is_reduced(self):
        assert QUICK.size_factor < MEDIUM.size_factor < FULL.size_factor
        assert QUICK.n_estimators < FULL.n_estimators
        assert set(QUICK.datasets) <= set(FULL.datasets)

    def test_scaled_replaces_fields(self):
        cfg = QUICK.scaled(size_factor=0.5, n_splits=4)
        assert cfg.size_factor == 0.5
        assert cfg.n_splits == 4
        assert cfg.datasets == QUICK.datasets  # untouched fields preserved
        assert QUICK.size_factor != 0.5  # original frozen

    def test_active_config_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "medium")
        assert active_config() is MEDIUM
        monkeypatch.delenv("REPRO_PROFILE")
        assert active_config() is QUICK

    def test_active_config_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "gigantic")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            active_config()
