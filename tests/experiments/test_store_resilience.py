"""Fault-tolerant store I/O: retry/backoff/circuit-breaker suite.

What PR 4 proved for worker *crashes* (SIGKILL mid-cell → parity holds),
this suite proves for store *failures*: a grid completes bit-identically
to serial through transient backend errors, timed brownout windows and a
supervisor-restarted worker — with zero unexpected worker deaths.

Layers under test, bottom-up:

* the shared :class:`~repro.backoff.BackoffPolicy` (deterministic with
  an injected RNG — the serving client and the store retries consume
  the same policy);
* error classification (:func:`classify_default`, and
  :func:`classify_boto3` against a scripted S3 client: throttles/5xx/
  connection errors retry, ``AccessDenied``/``NoSuchBucket`` fail fast
  with **no retry storm**);
* :class:`ResilientBackend` retry/exhaustion/per-op-timeout semantics
  and the :class:`CircuitBreaker` open → half-open → closed lifecycle,
  all on injected clocks (no real sleeping);
* :class:`ClaimHeartbeat` surviving a refresh outage (the satellite-1
  fix: a store blip must not silently expire a live lease);
* the worker loop's ``--outage-grace`` degradation and the
  :class:`FleetSupervisor` restart policy;
* end-to-end chaos: a two-worker fleet over fault-injected ``fakes3://``
  riding out a timed brownout (bit-parity, zero deaths), and a
  supervisor restarting a SIGKILLed worker mid-grid.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest
import random

from repro.backoff import BackoffPolicy
from repro.experiments import dispatch, worker
from repro.experiments.backends import (
    Boto3ObjectStore,
    FakeObjectStore,
    MemoryBucket,
    ObjectStoreBackend,
    resolve_backend,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.resilience import (
    FAULTS_ENV,
    RESILIENCE_ENV,
    CircuitBreaker,
    FaultSchedule,
    ResilientBackend,
    StorePermanentError,
    StoreUnavailableError,
    classify_boto3,
    classify_default,
)
from repro.experiments.store import CellStore, ClaimHeartbeat

from tests.experiments.distributed_helpers import worker_env


def no_sleep(_seconds):
    """Injected sleep for retry tests: record nothing, wait nothing."""


def make_resilient(schedule=None, **kwargs):
    """A ResilientBackend over a fresh in-memory fake, faults optional.

    Retry delays are computed (deterministic RNG) but never slept, so
    every unit test here runs in microseconds of wall clock.
    """
    client = FakeObjectStore(
        MemoryBucket(),
        error_injector=schedule.injector() if schedule is not None else None,
    )
    inner = ObjectStoreBackend(client, url="mem://resilience-test")
    kwargs.setdefault("backoff", BackoffPolicy(rng=random.Random(7)))
    kwargs.setdefault("sleep", no_sleep)
    return ResilientBackend(inner, **kwargs)


# ----------------------------------------------------------------------
# The shared backoff policy
# ----------------------------------------------------------------------


class TestBackoffPolicy:
    def test_deterministic_with_injected_rng(self):
        a = BackoffPolicy(rng=random.Random(42))
        b = BackoffPolicy(rng=random.Random(42))
        assert [a.delay(i) for i in range(6)] == [b.delay(i) for i in range(6)]

    def test_doubles_then_caps(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5,
                               jitter=(1.0, 1.0))
        assert [policy.delay(i) for i in range(5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5
        ]

    def test_floor_raises_delay_but_never_past_cap(self):
        policy = BackoffPolicy(base=0.05, cap=1.0, jitter=(1.0, 1.0))
        assert policy.delay(0, floor=0.7) == 0.7   # Retry-After honoured
        assert policy.delay(0, floor=30.0) == 1.0  # but capped
        assert policy.delay(5, floor=0.1) == 1.0   # growth past the floor

    def test_jitter_stays_in_bounds(self):
        policy = BackoffPolicy(base=0.2, cap=0.2, jitter=(0.5, 1.5),
                               rng=random.Random(0))
        for attempt in range(50):
            assert 0.1 <= policy.delay(attempt) < 0.3


# ----------------------------------------------------------------------
# Error classification
# ----------------------------------------------------------------------


class FakeClientError(Exception):
    """boto3 ``ClientError`` shape: the code rides in ``.response``."""

    def __init__(self, code):
        super().__init__(code)
        self.response = {"Error": {"Code": code}}


class EndpointConnectionError(Exception):
    """botocore connection errors carry no code — matched by type name."""


class TestClassification:
    @pytest.mark.parametrize("exc", [
        ConnectionError("reset"), TimeoutError("slow"), OSError(5, "EIO"),
        ConnectionResetError("peer"), StoreUnavailableError("already"),
    ])
    def test_default_transient(self, exc):
        assert classify_default(exc) == "transient"

    @pytest.mark.parametrize("exc", [
        PermissionError(13, "EACCES"), ValueError("a bug"),
        KeyError("nope"), StorePermanentError("already"),
    ])
    def test_default_permanent(self, exc):
        assert classify_default(exc) == "permanent"

    @pytest.mark.parametrize("code", [
        "Throttling", "ThrottlingException", "SlowDown", "TooManyRequests",
        "RequestTimeout", "InternalError", "ServiceUnavailable", "503",
    ])
    def test_boto3_throttles_and_5xx_are_transient(self, code):
        assert classify_boto3(FakeClientError(code)) == "transient"

    @pytest.mark.parametrize("code", [
        "AccessDenied", "NoSuchBucket", "InvalidAccessKeyId",
        "SignatureDoesNotMatch",
    ])
    def test_boto3_config_faults_are_permanent(self, code):
        assert classify_boto3(FakeClientError(code)) == "permanent"

    def test_boto3_connection_errors_match_by_type_name(self):
        assert classify_boto3(EndpointConnectionError("down")) == "transient"

    def test_boto3_unknown_codes_fall_back_to_default(self):
        assert classify_boto3(FakeClientError("SomethingNew")) == "permanent"
        assert classify_boto3(ConnectionError("raw")) == "transient"


# ----------------------------------------------------------------------
# ResilientBackend retry semantics (injected clocks, zero wall time)
# ----------------------------------------------------------------------


class TestResilientRetries:
    def test_transient_faults_retry_and_heal(self):
        backend = make_resilient(FaultSchedule(fail_first={"put_object": 2}))
        backend.put_atomic("a.json", b"payload")  # 2 failures, then lands
        assert backend.get("a.json") == b"payload"
        stats = backend.stats()
        assert stats["transient_errors"] == 2
        assert stats["retries"] == 2
        assert stats["exhausted"] == 0
        assert stats["per_op"]["put_atomic"] == 1

    def test_exhausted_retries_raise_unavailable(self):
        backend = make_resilient(FaultSchedule(fail_first={"*": 999}),
                                 max_attempts=3)
        with pytest.raises(StoreUnavailableError) as info:
            backend.get("a.json")
        assert info.value.op == "get"
        assert info.value.attempts == 3
        assert backend.stats()["exhausted"] == 1

    def test_permanent_fault_fails_fast_without_retry(self):
        calls = []
        schedule = FaultSchedule(fail_first={"*": 999}, kind="permanent")
        inject = schedule.injector()

        def counting(op, key):
            calls.append(op)
            inject(op, key)

        client = FakeObjectStore(MemoryBucket(), error_injector=counting)
        backend = ResilientBackend(
            ObjectStoreBackend(client, url="mem://perm"), sleep=no_sleep
        )
        with pytest.raises(StorePermanentError):
            backend.get("a.json")
        assert len(calls) == 1, "permanent errors must not be retried"
        stats = backend.stats()
        assert stats["permanent_errors"] == 1
        assert stats["transient_errors"] == 0

    def test_op_timeout_bounds_the_retry_loop(self):
        clock = {"now": 0.0}
        backend = make_resilient(
            FaultSchedule(fail_first={"*": 999}),
            max_attempts=100,
            op_timeout=1.0,
            backoff=BackoffPolicy(base=0.5, cap=1.0, jitter=(1.0, 1.0)),
            sleep=lambda s: clock.__setitem__("now", clock["now"] + s),
            clock=lambda: clock["now"],
            breaker=CircuitBreaker(threshold=10_000),
        )
        with pytest.raises(StoreUnavailableError) as info:
            backend.get("a.json")
        # 0.5s + 1.0s of backoff crosses the 1.0s budget on attempt 3 —
        # far short of max_attempts: the deadline, not the count, stopped it.
        assert info.value.attempts == 3

    def test_unknown_attributes_delegate_to_inner(self):
        backend = make_resilient()
        assert backend.client is backend.inner.client  # driver extension
        assert backend.url == backend.inner.url

    def test_retried_conditional_put_converges(self):
        # The injected fault fires before the bucket is touched, so the
        # retry finds the key still absent and wins cleanly; a fault
        # *after* a server-side win would report a lost race whose
        # orphaned claim simply ages out by TTL — safe either way.
        backend = make_resilient(
            FaultSchedule(fail_first={"put_object": 1})
        )
        assert backend.try_claim_exclusive("k.claim", b"me") is True
        assert backend.inner.exists("k.claim")
        assert backend.stats()["transient_errors"] == 1


class TestCircuitBreaker:
    def make(self, threshold=3, reset_after=10.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(threshold=threshold, reset_after=reset_after,
                                 clock=lambda: clock["now"])
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(10):  # failures interleaved with successes
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 6.0
        assert breaker.allow(), "reset_after elapsed: probe admitted"
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(), "second caller must wait for the probe"

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock["now"] = 6.0
        assert breaker.allow()
        breaker.record_failure()          # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(), "re-opened with a fresh window"
        clock["now"] = 12.0
        assert breaker.allow()
        breaker.record_success()          # probe succeeded
        assert breaker.state == CircuitBreaker.CLOSED
        stats = breaker.stats()
        assert stats["opens"] == 2
        assert stats["half_opens"] == 2
        assert stats["closes"] == 1

    def test_open_breaker_fast_fails_without_touching_backend(self):
        calls = []

        def counting(op, key):
            calls.append(op)
            raise ConnectionError("down")

        client = FakeObjectStore(MemoryBucket(), error_injector=counting)
        backend = ResilientBackend(
            ObjectStoreBackend(client, url="mem://breaker"),
            max_attempts=2,
            sleep=no_sleep,
            breaker=CircuitBreaker(threshold=2, reset_after=60.0),
        )
        with pytest.raises(StoreUnavailableError):
            backend.get("a.json")         # 2 attempts, opens the breaker
        before = len(calls)
        with pytest.raises(StoreUnavailableError) as info:
            backend.get("b.json")         # fast-fail: no backend call
        assert info.value.circuit_open
        assert len(calls) == before
        assert backend.stats()["breaker_fast_fails"] == 1


# ----------------------------------------------------------------------
# Fault schedules (the declarative chaos seam)
# ----------------------------------------------------------------------


class TestFaultSchedule:
    def test_json_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            fail_first={"get_object": 3, "*": 1},
            brownouts=[(100.0, 200.0)],
            throttle_rate=0.25,
            seed=9,
            kind="timeout",
        )
        path = schedule.dump(tmp_path / "faults.json")
        assert FaultSchedule.load(path) == schedule

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSchedule(kind="gremlins")

    def test_brownout_window_fails_everything_then_clears(self):
        clock = {"now": 0.0}
        inject = FaultSchedule(brownouts=[(10.0, 20.0)]).injector(
            clock=lambda: clock["now"]
        )
        inject("get_object", "k")             # before the window: clean
        clock["now"] = 15.0
        with pytest.raises(ConnectionError, match="brownout"):
            inject("get_object", "k")
        clock["now"] = 20.0                   # end is exclusive
        inject("get_object", "k")

    def test_throttle_rate_is_seeded_and_deterministic(self):
        def outcomes(seed):
            inject = FaultSchedule(throttle_rate=0.5, seed=seed).injector()
            results = []
            for _ in range(40):
                try:
                    inject("get_object", "k")
                    results.append(True)
                except ConnectionError:
                    results.append(False)
            return results

        assert outcomes(3) == outcomes(3)
        assert True in outcomes(3) and False in outcomes(3)

    def test_env_schedule_attaches_to_resolved_fakes(self, tmp_path,
                                                     monkeypatch):
        path = FaultSchedule(fail_first={"get_object": 2}).dump(
            tmp_path / "faults.json"
        )
        monkeypatch.setenv(FAULTS_ENV, str(path))
        backend = resolve_backend(f"mem://env-faults-{tmp_path.name}")
        assert isinstance(backend, ResilientBackend)
        backend.put_atomic("a.json", b"v")
        assert backend.get("a.json") == b"v"  # first-2 faults retried away
        assert backend.stats()["transient_errors"] == 2

    def test_kill_switch_resolves_raw_backends(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESILIENCE_ENV, "off")
        backend = resolve_backend(f"mem://raw-{tmp_path.name}")
        assert isinstance(backend, ObjectStoreBackend)
        assert not isinstance(backend, ResilientBackend)


# ----------------------------------------------------------------------
# Boto3ObjectStore error mapping against a scripted S3 client
# ----------------------------------------------------------------------


class Body:
    def __init__(self, data):
        self._data = data

    def read(self):
        return self._data


class ScriptedS3:
    """Minimal boto3-shaped client: a scripted fault per call, in order.

    ``script`` entries are error codes (raised as :class:`FakeClientError`),
    an exception instance (raised as-is), or ``None`` (the call succeeds).
    An exhausted script means success.
    """

    def __init__(self, script=(), objects=None):
        self.script = list(script)
        self.objects = dict(objects or {})
        self.calls = 0

    def _step(self):
        self.calls += 1
        if self.script:
            fault = self.script.pop(0)
            if isinstance(fault, BaseException):
                raise fault
            if fault is not None:
                raise FakeClientError(fault)

    def get_object(self, Bucket, Key):
        self._step()
        if Key not in self.objects:
            raise FakeClientError("NoSuchKey")
        return {"Body": Body(self.objects[Key])}

    def put_object(self, Bucket, Key, Body, **kwargs):
        self._step()
        self.objects[Key] = Body

    def list_objects_v2(self, Bucket, Prefix="", **kwargs):
        self._step()
        keys = sorted(k for k in self.objects if k.startswith(Prefix))
        return {"Contents": [{"Key": k} for k in keys], "IsTruncated": False}

    def delete_object(self, Bucket, Key):
        self._step()
        self.objects.pop(Key, None)


def resilient_s3(script, objects=None, **kwargs):
    client = ScriptedS3(script, objects)
    inner = ObjectStoreBackend(
        Boto3ObjectStore("bucket", client=client), url="s3://bucket"
    )
    kwargs.setdefault("sleep", no_sleep)
    kwargs.setdefault("backoff", BackoffPolicy(rng=random.Random(1)))
    return ResilientBackend(inner, classify=classify_boto3, **kwargs), client


class TestBoto3Classification:
    def test_throttles_are_retried_to_success(self):
        backend, client = resilient_s3(
            ["Throttling", "SlowDown"], objects={"k": b"value"}
        )
        assert backend.get("k") == b"value"
        assert client.calls == 3
        assert backend.stats()["transient_errors"] == 2

    def test_5xx_and_connection_errors_are_retried(self):
        backend, client = resilient_s3(
            ["InternalError", "503", EndpointConnectionError("down")],
            objects={"k": b"value"},
        )
        assert backend.get("k") == b"value"
        assert client.calls == 4

    def test_access_denied_fails_fast_no_retry_storm(self):
        backend, client = resilient_s3(["AccessDenied"] * 50)
        with pytest.raises(StorePermanentError):
            backend.get("k")
        assert client.calls == 1

    def test_no_such_bucket_fails_fast_on_list(self):
        backend, client = resilient_s3(["NoSuchBucket"] * 50)
        with pytest.raises(StorePermanentError):
            backend.list()
        assert client.calls == 1

    def test_missing_key_is_a_clean_none_not_an_error(self):
        backend, client = resilient_s3([])
        assert backend.get("absent") is None
        assert backend.stats()["permanent_errors"] == 0


# ----------------------------------------------------------------------
# ClaimHeartbeat outage survival (the satellite-1 fix)
# ----------------------------------------------------------------------


class FlakyRefreshStore:
    """CellStore stand-in scripting ``refresh_claim`` outcomes."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)  # exceptions, True, or False
        self.calls = 0

    def refresh_claim(self, kind, key, owner):
        self.calls += 1
        outcome = self.outcomes.pop(0) if self.outcomes else True
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


def run_heartbeat(store, duration=0.5):
    beat = ClaimHeartbeat(store, "cell", "k", "me", interval=0.02)
    with beat:
        time.sleep(duration)
    return beat


class TestClaimHeartbeat:
    def test_refresh_errors_do_not_kill_the_heartbeat(self):
        store = FlakyRefreshStore([ConnectionError("blip")] * 3)
        beat = run_heartbeat(store, duration=0.4)
        assert beat.refresh_errors == 3
        assert not beat.lost and not beat.failed
        assert store.calls > 3, "heartbeat must keep refreshing after blips"

    def test_permanent_refresh_failure_sets_failed(self):
        store = FlakyRefreshStore([StorePermanentError("denied")])
        beat = run_heartbeat(store, duration=0.2)
        assert beat.failed and not beat.lost
        assert store.calls == 1, "permanent rejection must stop the thread"

    def test_lost_lease_still_detected(self):
        store = FlakyRefreshStore([True, False])
        beat = run_heartbeat(store, duration=0.2)
        assert beat.lost and not beat.failed

    def test_live_lease_restamped_after_real_outage(self):
        """End-to-end over a real backend: a refresh outage must neither
        kill the heartbeat nor silently expire the live lease — the lease
        is re-stamped the moment the store recovers."""
        failing = {"on": False}

        def injector(op, key):
            if failing["on"]:
                raise ConnectionError("injected refresh outage")

        backend = ObjectStoreBackend(
            FakeObjectStore(MemoryBucket(), error_injector=injector),
            url="mem://hb-outage",
        )
        store = CellStore(backend, lease_ttl=30.0)
        assert store.try_claim("cell", "k1", "me")
        claim = store.claim_name("cell", "k1")
        with ClaimHeartbeat(store, "cell", "k1", "me", interval=0.05) as beat:
            time.sleep(0.12)
            failing["on"] = True
            time.sleep(0.3)
            failing["on"] = False
            recovered_at = time.time()
            time.sleep(0.3)
        assert beat.refresh_errors >= 1
        assert not beat.lost and not beat.failed
        assert backend.mtime(claim) >= recovered_at - 0.25
        # The lease is still exclusively ours.
        assert not store.try_claim("cell", "k1", "intruder")


# ----------------------------------------------------------------------
# Worker outage grace
# ----------------------------------------------------------------------

#: Chaos grid: small enough for CI, big enough that a brownout window
#: reliably overlaps live claim/execute/poll traffic from two workers.
CHAOS_CFG = ExperimentConfig(
    name="chaos-tiny",
    size_factor=0.1,
    datasets=("S5", "S6"),
    n_splits=2,
    n_repeats=2,
    n_estimators=3,
)

_SERIAL_CACHE: dict = {}


def chaos_plan(target):
    units = dispatch.plan_grid(CHAOS_CFG, ["table2"])
    dispatch.write_manifest(target, CHAOS_CFG, units)
    return units


def chaos_serial(units):
    if "value" not in _SERIAL_CACHE:
        _SERIAL_CACHE["value"] = ExperimentExecutor(
            CHAOS_CFG, n_jobs=1, store=CellStore(None)
        ).run([u.spec for u in units])
    return _SERIAL_CACHE["value"]


def assert_bit_parity(target, units):
    store = CellStore(target, lease_ttl=2.0)
    for unit, reference in zip(units, chaos_serial(units)):
        loaded = store.get("cell", unit.key)
        assert loaded is not None, f"missing cell {unit.key}"
        assert reference.exactly_equal(loaded), f"parity broken: {unit.key}"
    # A release that failed mid-brownout legitimately orphans its claim;
    # that is not a leak — orphans age out by TTL.  Wait them out.
    deadline = time.monotonic() + 10.0
    while store.claim_names():
        assert time.monotonic() < deadline, (
            f"claims never aged out: {store.claim_names()}"
        )
        time.sleep(0.1)
        store.reap_stale()
    assert store.backend.stray_spools() == []


class TestWorkerOutageGrace:
    def test_outage_within_grace_is_survived_in_process(self, tmp_path):
        """worker_loop rides out a brownout shorter than --outage-grace."""
        bucket = f"fakes3://{tmp_path / 'bucket'}"
        units = chaos_plan(bucket)
        # The window is already open when the loop starts, so its very
        # first store operation fails — no racing the (tiny) grid.
        schedule = FaultSchedule(
            brownouts=[(time.time() - 1.0, time.time() + 1.5)]
        )
        backend = resolve_backend(bucket)
        backend.inner.client.error_injector = schedule.injector()
        stats = worker.worker_loop(
            backend, jobs=1, lease_ttl=2.0, poll=0.05,
            max_idle=60.0, outage_grace=30.0, units=units,
        )
        # An outage can interrupt a round *after* its cell landed but
        # before the counter ticked, so "computed" may undercount — the
        # invariant is survival plus a complete, bit-identical grid.
        assert 1 <= stats["computed"] <= len(units)
        assert stats["outages"] + stats["heartbeat_retries"] >= 1 or \
            stats["store_resilience"]["transient_errors"] >= 1
        assert_bit_parity(bucket, units)

    def test_outage_past_grace_raises_unavailable(self, tmp_path):
        bucket = f"fakes3://{tmp_path / 'bucket'}"
        chaos_plan(bucket)
        backend = resolve_backend(bucket)
        backend.inner.client.error_injector = FaultSchedule(
            brownouts=[(0.0, float("inf"))]
        ).injector()
        with pytest.raises(StoreUnavailableError):
            worker.worker_loop(
                backend, jobs=1, lease_ttl=2.0, poll=0.02,
                max_idle=60.0, outage_grace=0.5,
            )

    def test_permanent_error_escapes_immediately(self, tmp_path):
        bucket = f"fakes3://{tmp_path / 'bucket'}"
        chaos_plan(bucket)
        backend = resolve_backend(bucket)
        backend.inner.client.error_injector = FaultSchedule(
            fail_first={"*": 9999}, kind="permanent"
        ).injector()
        started = time.monotonic()
        with pytest.raises(StorePermanentError):
            worker.worker_loop(
                backend, jobs=1, lease_ttl=2.0, poll=0.02,
                max_idle=60.0, outage_grace=60.0,
            )
        assert time.monotonic() - started < 10.0, \
            "permanent errors must not wait out the grace window"


# ----------------------------------------------------------------------
# Fleet supervision
# ----------------------------------------------------------------------


def crash_once_command(flag_path, crash_code=17):
    """argv for a process that crashes on first run, succeeds after."""
    script = (
        "import os, sys\n"
        f"flag = {str(flag_path)!r}\n"
        "if not os.path.exists(flag):\n"
        "    open(flag, 'w').close()\n"
        f"    sys.exit({crash_code})\n"
        "sys.exit(0)\n"
    )
    return [sys.executable, "-c", script]


def drive_to_completion(supervisor, timeout=30.0):
    deadline = time.monotonic() + timeout
    supervisor.poll()
    while not supervisor.fleet_dead():
        assert time.monotonic() < deadline, "fleet never settled"
        time.sleep(0.02)
        supervisor.poll()


FAST_RESTARTS = BackoffPolicy(base=0.05, cap=0.1, jitter=(1.0, 1.0))


class TestFleetSupervisor:
    def test_crashed_worker_is_restarted_with_original_command(self, tmp_path):
        supervisor = dispatch.FleetSupervisor(
            [crash_once_command(tmp_path / "flag")],
            max_restarts=2, backoff=FAST_RESTARTS,
        )
        supervisor.start()
        drive_to_completion(supervisor)
        (entry,) = supervisor.summary()
        assert entry["restarts"] == 1
        assert entry["exit_codes"] == [17, 0]
        assert not entry["gave_up"]

    def test_max_restarts_caps_a_crash_loop(self):
        always_crash = [sys.executable, "-c", "import sys; sys.exit(9)"]
        supervisor = dispatch.FleetSupervisor(
            [always_crash], max_restarts=2, backoff=FAST_RESTARTS,
        )
        supervisor.start()
        drive_to_completion(supervisor)
        (entry,) = supervisor.summary()
        assert entry["restarts"] == 2
        assert entry["exit_codes"] == [9, 9, 9]
        assert entry["gave_up"]

    def test_permanent_store_exit_is_never_restarted(self):
        fatal = [sys.executable, "-c", "import sys; sys.exit(2)"]
        supervisor = dispatch.FleetSupervisor(
            [fatal], max_restarts=5, backoff=FAST_RESTARTS,
        )
        supervisor.start()
        drive_to_completion(supervisor)
        (entry,) = supervisor.summary()
        assert entry["restarts"] == 0
        assert entry["exit_codes"] == [2]
        assert entry["gave_up"]

    def test_benign_exits_are_not_restarted(self):
        done = [sys.executable, "-c", "import sys; sys.exit(0)"]
        idle = [sys.executable, "-c", "import sys; sys.exit(3)"]
        supervisor = dispatch.FleetSupervisor(
            [done, idle], max_restarts=5, backoff=FAST_RESTARTS,
        )
        supervisor.start()
        drive_to_completion(supervisor)
        first, second = supervisor.summary()
        assert first["exit_codes"] == [0] and first["restarts"] == 0
        assert second["exit_codes"] == [3] and second["restarts"] == 0
        assert not first["gave_up"] and not second["gave_up"]

    def test_terminate_cancels_pending_restarts(self):
        crash = [sys.executable, "-c", "import sys; sys.exit(9)"]
        supervisor = dispatch.FleetSupervisor(
            [crash], max_restarts=5,
            backoff=BackoffPolicy(base=30.0, cap=30.0, jitter=(1.0, 1.0)),
        )
        supervisor.start()
        deadline = time.monotonic() + 10.0
        while supervisor.total_restarts() == 0:
            supervisor.poll()
            (entry,) = supervisor.summary()
            if entry["exit_codes"]:
                break  # crash observed, restart scheduled 30s out
            assert time.monotonic() < deadline
            time.sleep(0.02)
        supervisor.terminate()
        assert supervisor.fleet_dead()
        assert supervisor.total_restarts() == 0


# ----------------------------------------------------------------------
# End-to-end chaos: the acceptance scenarios
# ----------------------------------------------------------------------


def spawn_chaos_worker(target, faults_path=None, *extra):
    env = worker_env()
    if faults_path is not None:
        env[FAULTS_ENV] = str(faults_path)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.worker",
         "--store", str(target), "--ttl", "2.0", "--poll", "0.05",
         "--outage-grace", "45", "--max-idle", "30", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def worker_stats(output: str) -> dict:
    """The final-line JSON stats a worker prints on clean exit."""
    lines = [l for l in output.strip().splitlines() if l.strip()]
    return json.loads(lines[-1])


class TestChaosEndToEnd:
    def test_grid_under_brownout_is_bit_identical_with_zero_deaths(
        self, tmp_path
    ):
        """Acceptance: a two-worker fakes3 fleet rides out a timed store
        brownout — every worker survives to exit 0 and the store is
        bit-identical to serial."""
        target = f"fakes3://{tmp_path / 'bucket'}"
        units = chaos_plan(target)
        # Two fault sources compose: a brownout window that opens before
        # the workers boot (their first store traffic lands inside it on
        # any normally-loaded machine), plus fail-first-K faults whose
        # process-local counters guarantee *each* worker weathers
        # transient errors even if a pathologically slow boot misses the
        # window entirely — the weathering assertion below never races
        # the wall clock.  --outage-grace comfortably covers the window.
        schedule = FaultSchedule(
            fail_first={"*": 3},
            brownouts=[(time.time() - 1.0, time.time() + 6.0)],
        )
        faults = schedule.dump(tmp_path / "faults.json")
        workers = [
            spawn_chaos_worker(target, faults, "--claim-order", order)
            for order in ("sorted", "reversed")
        ]
        outputs = []
        for process in workers:
            out, _ = process.communicate(timeout=300)
            outputs.append(out)
            # "Zero deaths" means no crash/fatal/outage exit.  0 is the
            # normal finish; 3 is the benign straggler case — a worker
            # that booted slowly enough (loaded CI machine) that its
            # peer finished the grid and pruned the manifests first.
            assert process.returncode in (0, 3), out
        assert_bit_parity(target, units)
        stats = [worker_stats(out) for out in outputs]
        weathered = sum(
            s["outages"] + s["heartbeat_retries"]
            + s.get("store_resilience", {}).get("transient_errors", 0)
            for s in stats
        )
        assert weathered >= 1, (
            "brownout window never intersected worker traffic:\n"
            + "\n".join(outputs)
        )

    def test_supervisor_restarts_sigkilled_worker_and_grid_completes(
        self, tmp_path
    ):
        """Acceptance: SIGKILL one worker of a supervised fleet mid-grid;
        the supervisor restarts it and parity holds."""
        target = f"fakes3://{tmp_path / 'bucket'}"
        units = chaos_plan(target)
        commands = [
            dispatch.worker_command(
                target, index, jobs=1, lease_ttl=2.0, stagger=3,
                extra_args=["--poll", "0.05", "--max-idle", "60",
                            "--outage-grace", "30"],
            )
            for index in range(2)
        ]
        events = []
        supervisor = dispatch.FleetSupervisor(
            commands, max_restarts=2, backoff=FAST_RESTARTS,
            env=worker_env(), log=events.append,
        )
        supervisor.start()
        store = CellStore(target, lease_ttl=2.0)
        try:
            deadline = time.monotonic() + 120
            while not store.claim_names():
                supervisor.poll()
                assert not supervisor.fleet_dead(), "\n".join(events)
                assert time.monotonic() < deadline, "no worker ever claimed"
                time.sleep(0.005)
            victim = supervisor.processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            # Drive the supervisor until the restart is performed — a
            # small grid can otherwise complete inside the backoff
            # window and terminate() would cancel the pending respawn.
            restart_deadline = time.monotonic() + 60.0
            while supervisor.total_restarts() == 0:
                assert time.monotonic() < restart_deadline, \
                    "\n".join(events)
                supervisor.poll()
                time.sleep(0.02)

            dispatch.wait_for_grid(
                store, units, poll=0.05, timeout=240,
                should_abort=lambda: (supervisor.poll(),
                                      supervisor.fleet_dead())[1],
            )
        finally:
            supervisor.terminate()
        assert supervisor.total_restarts() >= 1, "\n".join(events)
        summary = supervisor.summary()
        assert any(-signal.SIGKILL in s["exit_codes"] for s in summary)
        assert not any(s["gave_up"] for s in summary), "\n".join(events)
        assert_bit_parity(target, units)
