"""Unit tests for the worker loop's plumbing (the fault-injection and
parity suites cover its end-to-end behaviour)."""

import time

import pytest

from repro.experiments import worker
from repro.experiments.runner import get_store


class TestClaimOrder:
    def test_sorted_and_reversed(self):
        class U:
            def __init__(self, key):
                self.key = key

        units = [U("b"), U("a"), U("c")]
        ordered = worker.claim_order_from("sorted")(units)
        assert [u.key for u in ordered] == ["a", "b", "c"]
        ordered = worker.claim_order_from("reversed")(units)
        assert [u.key for u in ordered] == ["c", "b", "a"]

    def test_rotate(self):
        class U:
            def __init__(self, key):
                self.key = key

        units = [U("a"), U("b"), U("c")]
        ordered = worker.claim_order_from("rotate:1")(units)
        assert [u.key for u in ordered] == ["b", "c", "a"]
        # Rotation wraps, so any N is valid for any fleet size.
        ordered = worker.claim_order_from("rotate:7")(units)
        assert [u.key for u in ordered] == ["b", "c", "a"]
        assert worker.claim_order_from("rotate:0")([]) == []

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="claim order"):
            worker.claim_order_from("random")

    def test_lru_starts_sorted_then_backs_off_attempted(self):
        class U:
            def __init__(self, key):
                self.key = key

        units = [U("b"), U("a"), U("c")]
        order = worker.claim_order_from("lru")
        assert [u.key for u in order(units)] == ["a", "b", "c"]
        # A conflicted (peer-held) cell drops to the back...
        order.note("a")
        assert [u.key for u in order(units)] == ["b", "c", "a"]
        # ...and drifts forward again as later attempts pass it.
        order.note("b")
        order.note("c")
        assert [u.key for u in order(units)] == ["a", "b", "c"]

    def test_lru_instances_are_independent(self):
        first = worker.claim_order_from("lru")
        second = worker.claim_order_from("lru")
        first.note("a")

        class U:
            def __init__(self, key):
                self.key = key

        units = [U("a"), U("b")]
        assert [u.key for u in first(units)] == ["b", "a"]
        assert [u.key for u in second(units)] == ["a", "b"]


class TestWorkerLoop:
    def test_waits_for_a_manifest_then_times_out(self, tmp_path):
        """An empty store is not a completed grid: the worker waits for a
        coordinator's plan and only gives up after max_idle."""
        start = time.monotonic()
        stats = worker.worker_loop(tmp_path, jobs=1, poll=0.02, max_idle=0.2)
        assert stats["computed"] == 0
        assert stats["idle_timeout"]
        assert time.monotonic() - start >= 0.2

    def test_picks_up_a_manifest_written_after_startup(self, tmp_path):
        """The multi-node flow: workers start first, the coordinator
        plans later; the worker must pick the late manifest up."""
        import threading

        from repro.experiments import dispatch
        from tests.property.test_distributed_parity import TINY

        units = dispatch.plan_grid(TINY, ["table2"])[:2]

        def late_plan():
            time.sleep(0.3)
            dispatch.write_manifest(tmp_path, TINY, units)

        coordinator = threading.Thread(target=late_plan)
        coordinator.start()
        try:
            stats = worker.worker_loop(
                tmp_path, jobs=1, poll=0.05, max_idle=60.0
            )
        finally:
            coordinator.join()
        assert not stats["idle_timeout"]
        assert stats["computed"] == len(units)

    def test_prunes_manifest_on_completion(self, tmp_path):
        """A finished grid's manifest must not linger (later workers
        would adopt it as their exit condition)."""
        from repro.experiments import dispatch
        from tests.property.test_distributed_parity import TINY

        units = dispatch.plan_grid(TINY, ["table2"])[:2]
        dispatch.write_manifest(tmp_path, TINY, units)
        stats = worker.worker_loop(tmp_path, jobs=1, max_idle=60.0)
        assert stats["computed"] == len(units)
        assert not list(tmp_path.glob("plan-*.plan"))

    def test_vanished_plan_after_work_means_grid_done(self, tmp_path):
        """A peer pruning the manifest (grid complete) must read as a
        clean exit, not as an idle timeout."""
        import threading

        from repro.experiments import dispatch
        from repro.experiments.store import CellStore
        from tests.property.test_distributed_parity import TINY

        units = dispatch.plan_grid(TINY, ["table2"])[:2]
        path = dispatch.write_manifest(tmp_path, TINY, units)
        store = CellStore(tmp_path)
        store.try_claim("cell", units[0].key, "peer")
        store.try_claim("cell", units[1].key, "peer")

        def peer_finishes():
            time.sleep(0.3)
            path.unlink()  # what a peer's prune_manifests would do

        peer = threading.Thread(target=peer_finishes)
        peer.start()
        try:
            stats = worker.worker_loop(
                tmp_path, jobs=1, poll=0.05, max_idle=60.0
            )
        finally:
            peer.join()
        assert stats["computed"] == 0
        assert not stats["idle_timeout"]

    def test_process_store_restored_after_loop(self, tmp_path):
        before = get_store()
        worker.worker_loop(tmp_path, jobs=1, poll=0.02, max_idle=0.1)
        assert get_store() is before

    def test_cli_exits_three_when_no_plan_ever_appears(self, tmp_path, capsys):
        assert worker.main(
            ["--store", str(tmp_path), "--poll", "0.02", "--max-idle", "0.2"]
        ) == 3
        out = capsys.readouterr().out
        assert '"computed": 0' in out and '"idle_timeout": true' in out

    def test_cli_store_url_is_an_alias_accepting_urls(self, tmp_path, capsys):
        """--store-url and --store are one flag; both take store URLs."""
        assert worker.main(
            ["--store-url", f"fakes3://{tmp_path}/bucket",
             "--poll", "0.02", "--max-idle", "0.2"]
        ) == 3
        assert '"idle_timeout": true' in capsys.readouterr().out

    def test_worker_loop_over_an_object_store_url(self, tmp_path):
        """The loop accepts URL targets end-to-end (not just directories)."""
        from repro.experiments import dispatch
        from tests.property.test_distributed_parity import TINY

        target = f"fakes3://{tmp_path}/bucket"
        units = dispatch.plan_grid(TINY, ["table2"])[:1]
        dispatch.write_manifest(target, TINY, units)
        stats = worker.worker_loop(target, jobs=1, max_idle=60.0)
        assert stats["computed"] == 1

    def test_explicit_empty_unit_list_is_a_noop(self, tmp_path):
        stats = worker.worker_loop(tmp_path, jobs=1, units=[], max_idle=0.1)
        assert stats["computed"] == 0
        assert not stats["idle_timeout"]

    def test_owner_identity_is_host_qualified_and_per_process(self):
        import os
        import socket

        assert worker.default_owner().endswith(f":{os.getpid()}")
        assert socket.gethostname() in worker.default_owner()
