"""Smoke tests for the figure regenerators on a micro profile."""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_cache

MICRO = ExperimentConfig(
    name="micro-test",
    size_factor=0.05,
    datasets=("S2", "S5"),
    n_splits=2,
    n_repeats=1,
    n_estimators=3,
    noise_ratios=(0.2,),
    rho_grid=(3, 9),
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFig5:
    def test_embeddings(self):
        result = figures.fig5(MICRO, max_points=60, n_iter=100)
        # Only S5 of the Fig. 5 quartet is in the micro dataset list.
        assert set(result["embeddings"]) == {"S5"}
        emb = result["embeddings"]["S5"]["embedding"]
        assert emb.shape[1] == 2
        text = figures.format_fig5(result)
        assert "t-SNE of S5" in text


class TestFig6:
    def test_ratio_grid(self):
        result = figures.fig6(MICRO)
        assert set(result["ratios"]) == {0.0, 0.2}
        for series in result["ratios"].values():
            assert set(series) == {"GBABS", "GGBS"}
            for values in series.values():
                assert values.shape == (2,)
        text = figures.format_fig6(result)
        assert "noise 0%" in text and "noise 20%" in text


class TestFig7Fig8:
    def test_panels(self):
        from repro.experiments.tables import table4

        cfg = MICRO.scaled(noise_ratios=(0.1, 0.2, 0.3, 0.4))
        t4 = table4(cfg)
        result = figures.fig7_fig8(cfg, t4)
        assert set(result["panels"]) == {
            "fig7:xgboost@10%",
            "fig7:xgboost@30%",
            "fig8:rf@20%",
            "fig8:rf@40%",
        }
        text = figures.format_fig7_fig8(result)
        assert "fig8:rf@40%" in text


class TestFig9:
    def test_rank_matrices(self):
        result = figures.fig9(MICRO)
        for noise, ranks in result["ranks"].items():
            matrix = np.vstack([ranks[m] for m in result["methods"]])
            assert matrix.shape == (8, 2)
            assert matrix.min() >= 1
            assert 0.0 <= result["friedman"][noise].p_value <= 1.0
        assert result["nemenyi_cd"] > 0
        text = figures.format_fig9(result)
        assert "GBABS" in text
        assert "Friedman" in text
        assert "Nemenyi" in text


class TestFig10Fig11:
    def test_rho_sweep(self):
        result = figures.fig10_fig11(MICRO)
        assert result["rho_grid"] == [3, 9]
        for code in MICRO.datasets:
            assert result["sampling_ratio"][code].shape == (2,)
            assert result["accuracy"][code].shape == (2,)
        text = figures.format_fig10_fig11(result)
        assert "Fig. 10" in text and "Fig. 11" in text
