"""Smoke tests for the ablation studies on a micro profile."""

import pytest

from repro.experiments import ablations
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_cache

MICRO = ExperimentConfig(
    name="micro-test",
    size_factor=0.05,
    datasets=("S5",),
    n_splits=2,
    n_repeats=1,
    n_estimators=3,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestAblationOverlap:
    def test_constraint_certifies_no_overlap(self):
        result = ablations.ablation_overlap(MICRO)
        row = result["rows"][0]
        assert row["no_overlap_max_overlap"] <= 1e-9
        assert 0.0 <= row["no_overlap_accuracy"] <= 1.0
        text = ablations.format_ablation(result)
        assert "A1-overlap" in text


class TestAblationNoiseDetection:
    def test_detection_removes_samples(self):
        result = ablations.ablation_noise_detection(MICRO, noise_ratio=0.2)
        row = result["rows"][0]
        assert row["detect_noise_removed"] > 0
        assert row["no_detect_noise_removed"] == 0
        assert result["noise_ratio"] == 0.2


class TestAblationBorderline:
    def test_borderline_compresses_harder(self):
        result = ablations.ablation_borderline(MICRO)
        row = result["rows"][0]
        assert row["borderline_ratio"] <= row["all_balls_ratio"] + 1e-9
