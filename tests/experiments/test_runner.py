"""Unit tests for the experiment runner and its caches."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    classifier_factory_for,
    clear_cache,
    dataset_with_noise,
    reference_gbabs_ratio,
    run_cell,
    sampler_factory_for,
)

TINY = ExperimentConfig(
    name="tiny-test",
    size_factor=0.05,
    datasets=("S2", "S5"),
    n_splits=2,
    n_repeats=1,
    n_estimators=3,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDatasetWithNoise:
    def test_noise_applied(self):
        x_clean, y_clean = dataset_with_noise("S5", TINY, 0.0)
        x_noisy, y_noisy = dataset_with_noise("S5", TINY, 0.3)
        np.testing.assert_array_equal(x_clean, x_noisy)
        flipped = np.mean(y_clean != y_noisy)
        assert abs(flipped - 0.3) < 0.02

    def test_cached_identity(self):
        a = dataset_with_noise("S5", TINY, 0.1)
        b = dataset_with_noise("S5", TINY, 0.1)
        assert a[0] is b[0]


class TestSamplerFactories:
    def test_ori_is_none(self):
        assert sampler_factory_for("ori", "S5", TINY, 0.0) is None

    def test_srs_matches_gbabs_reference_ratio(self):
        factory = sampler_factory_for("srs", "S5", TINY, 0.0)
        sampler = factory(0)
        assert sampler.ratio == pytest.approx(
            reference_gbabs_ratio("S5", TINY, 0.0)
        )

    def test_smnc_gets_dataset_categoricals(self):
        factory = sampler_factory_for("smnc", "S1", TINY, 0.0)
        sampler = factory(0)
        assert list(sampler.categorical_features) == list(range(9, 15))

    def test_gbabs_uses_config_rho(self):
        factory = sampler_factory_for("gbabs", "S5", TINY, 0.0, rho=9)
        assert factory(0).rho == 9

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="factory rule"):
            sampler_factory_for("nope", "S5", TINY, 0.0)


class TestClassifierFactories:
    @pytest.mark.parametrize("name", ["dt", "knn", "rf", "xgboost", "lightgbm"])
    def test_factories_build_estimators(self, name):
        clf = classifier_factory_for(name, TINY)(0)
        assert hasattr(clf, "fit")

    def test_ensemble_size_scaled(self):
        rf = classifier_factory_for("rf", TINY)(0)
        assert rf.n_estimators == TINY.n_estimators

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="factory rule"):
            classifier_factory_for("svm", TINY)


class TestRunCell:
    def test_returns_cv_result(self):
        cell = run_cell("S5", "gbabs", "dt", TINY)
        assert 0.0 <= cell.means["accuracy"] <= 1.0
        assert cell.n_folds == 2

    def test_memoised(self):
        a = run_cell("S5", "ori", "dt", TINY)
        b = run_cell("S5", "ori", "dt", TINY)
        assert a is b

    def test_distinct_keys_not_shared(self):
        a = run_cell("S5", "ori", "dt", TINY, noise_ratio=0.0)
        b = run_cell("S5", "ori", "dt", TINY, noise_ratio=0.2)
        assert a is not b

    def test_rho_override_changes_key(self):
        a = run_cell("S5", "gbabs", "dt", TINY, rho=3)
        b = run_cell("S5", "gbabs", "dt", TINY, rho=9)
        assert a is not b
