"""Unit tests for the parallel experiment executor and its store wiring."""

import numpy as np
import pytest

from repro.evaluation.cross_validation import plan_folds
from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import CellSpec, ExperimentExecutor, prefetch_cells
from repro.experiments.store import CellStore

TINY = ExperimentConfig(
    name="tiny-exec",
    size_factor=0.05,
    datasets=("S2", "S5"),
    n_splits=2,
    n_repeats=1,
    n_estimators=3,
)

GRID = [
    CellSpec("S5", "gbabs", "dt"),
    CellSpec("S5", "ori", "dt"),
    CellSpec("S2", "srs", "dt"),
    CellSpec("S2", "ori", "knn", noise_ratio=0.2),
]


def assert_results_equal(a, b):
    assert a.exactly_equal(b)


class TestPlanFolds:
    def test_matches_protocol_shape(self):
        plan = plan_folds(5, 5, 0)
        assert len(plan) == 25
        assert [p.index for p in plan] == list(range(25))
        assert plan[7].rep == 1 and plan[7].fold == 2

    def test_reproduces_seed_derivation(self):
        """The plan must equal the historical inline derivation."""
        n_splits, n_repeats, random_state = 3, 4, 17
        seeds = np.random.SeedSequence(random_state).generate_state(n_repeats * 2 + 1)
        plan = plan_folds(n_splits, n_repeats, random_state)
        counter = 0
        for rep in range(n_repeats):
            for fold in range(n_splits):
                p = plan[counter]
                assert p.split_seed == int(seeds[rep])
                assert p.fold_seed == int(seeds[n_repeats + rep]) + counter
                counter += 1

    def test_deterministic(self):
        assert plan_folds(5, 2, 42) == plan_folds(5, 2, 42)


class TestExecutor:
    def test_preserves_spec_order(self, tmp_path):
        ex = ExperimentExecutor(TINY, store=CellStore(tmp_path))
        results = ex.run(GRID)
        assert len(results) == len(GRID)
        # Reversed specs give the same cells in reversed order.
        rev = ExperimentExecutor(TINY, store=CellStore(tmp_path)).run(GRID[::-1])
        for a, b in zip(results, rev[::-1]):
            assert_results_equal(a, b)

    def test_duplicate_specs_share_one_result(self, tmp_path):
        ex = ExperimentExecutor(TINY, store=CellStore(tmp_path))
        a, b = ex.run([GRID[0], GRID[0]])
        assert a is b

    def test_parallel_matches_serial_bitwise(self, tmp_path):
        serial = ExperimentExecutor(
            TINY, n_jobs=1, store=CellStore(tmp_path / "s")
        ).run(GRID)
        parallel = ExperimentExecutor(
            TINY, n_jobs=3, store=CellStore(tmp_path / "p")
        ).run(GRID)
        for a, b in zip(serial, parallel):
            assert_results_equal(a, b)

    def test_matches_evaluate_pipeline_contract(self, tmp_path):
        """Executor cells equal a direct evaluate_pipeline call."""
        from repro.evaluation.cross_validation import evaluate_pipeline
        from repro.experiments.runner import (
            classifier_factory_for,
            dataset_with_noise,
            sampler_factory_for,
        )

        (cell,) = ExperimentExecutor(TINY, store=CellStore(None)).run(
            [CellSpec("S5", "gbabs", "dt")]
        )
        x, y = dataset_with_noise("S5", TINY, 0.0)
        direct = evaluate_pipeline(
            x,
            y,
            classifier_factory=classifier_factory_for("dt", TINY),
            sampler_factory=sampler_factory_for("gbabs", "S5", TINY, 0.0),
            n_splits=TINY.n_splits,
            n_repeats=TINY.n_repeats,
            random_state=TINY.random_state,
        )
        assert_results_equal(cell, direct)


class TestResume:
    def test_interrupted_session_resumes_from_disk(self, tmp_path, monkeypatch):
        """Cells persisted by a killed run must not be recomputed."""
        first = ExperimentExecutor(TINY, store=CellStore(tmp_path))
        first.run(GRID[:2])  # the "killed" run finished two cells

        # A fresh process (fresh memory layer) must hit the disk for the
        # two finished cells and only compute the remaining ones.
        computed = []
        second = ExperimentExecutor(TINY, store=CellStore(tmp_path))
        original = ExperimentExecutor._run_serial

        def counting(self, misses):
            computed.extend(spec for _, spec in misses)
            return original(self, misses)

        monkeypatch.setattr(ExperimentExecutor, "_run_serial", counting)
        results = second.run(GRID)
        assert len(results) == len(GRID)
        assert computed == GRID[2:]

    def test_parallel_run_flushes_cells_incrementally(self, tmp_path):
        store = CellStore(tmp_path)
        ExperimentExecutor(TINY, n_jobs=2, store=store).run(GRID)
        # All four cells persisted, individually addressable on disk.
        assert len([p for p in store.disk_entries() if p.suffix == ".npz"]) == 4


class TestPrefetch:
    def test_serial_prefetch_is_noop(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(
            ExperimentExecutor, "run", lambda self, specs: calls.append(specs)
        )
        prefetch_cells(TINY, GRID, n_jobs=1)
        assert calls == []

    def test_parallel_prefetch_warms_store(self, tmp_path):
        from repro.experiments import runner

        runner.clear_cache()
        prefetch_cells(TINY, [CellSpec("S5", "ori", "dt")], n_jobs=2)
        # The serial path must now hit the warm store.
        cell = runner.run_cell("S5", "ori", "dt", TINY)
        assert cell is runner.run_cell("S5", "ori", "dt", TINY)


class TestRunCellParallel:
    def test_run_cell_n_jobs_parity(self):
        from repro.experiments import runner

        runner.clear_cache()
        a = runner.run_cell("S5", "gbabs", "dt", TINY, n_jobs=1)
        runner.clear_cache()
        runner.configure_store(persist=False)
        try:
            b = runner.run_cell("S5", "gbabs", "dt", TINY, n_jobs=2)
        finally:
            runner.configure_store(persist=True)
        assert_results_equal(a, b)
