"""Conformance suite for the ``StoreBackend`` contract.

One shared test mixin runs against every backend — ``LocalFSBackend``
and ``ObjectStoreBackend`` over both fake-bucket drivers — so the
invariants the distributed claim/lease protocol depends on (atomic
visibility, exactly-one-winner exclusive creation, monotonic heartbeat
timestamps, idempotent deletes, spool-free listings) are pinned at the
*backend* level, not just observed incidentally through worker runs.

On top of the raw contract, the ``CellStore``-level classes prove the
protocol composes identically over both backend families: conditional-put
conflicts surface as lost claims, stale leases reap via an injected
clock (no sleeps), and corrupt entries self-heal by deletion.
"""

import threading

import numpy as np
import pytest

from repro.experiments.backends import (
    Boto3ObjectStore,
    DirectoryBucket,
    FakeObjectStore,
    LocalFSBackend,
    MemoryBucket,
    ObjectStoreBackend,
    memory_bucket,
    resolve_backend,
)
from repro.experiments.store import CellStore

from tests.experiments.test_store import make_result


class FakeClock:
    """Manually advanced time source shared by store and backend."""

    def __init__(self, start: float = 1_000_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# The backend contract, run verbatim against every implementation
# ----------------------------------------------------------------------


class BackendContract:
    """Invariants every ``StoreBackend`` must uphold (see backends.py)."""

    def make_backend(self, tmp_path, clock):
        raise NotImplementedError

    @pytest.fixture
    def clock(self):
        return FakeClock()

    @pytest.fixture
    def backend(self, tmp_path, clock):
        return self.make_backend(tmp_path, clock)

    def test_get_missing_returns_none(self, backend):
        assert backend.get("absent.json") is None
        assert backend.mtime("absent.json") is None
        assert not backend.exists("absent.json")

    def test_put_get_round_trip(self, backend):
        backend.put_atomic("cell-1.npz", b"\x00binary\xffpayload")
        assert backend.get("cell-1.npz") == b"\x00binary\xffpayload"
        assert backend.exists("cell-1.npz")

    def test_put_atomic_overwrites(self, backend):
        backend.put_atomic("a.json", b"old")
        backend.put_atomic("a.json", b"new")
        assert backend.get("a.json") == b"new"

    def test_delete_is_idempotent(self, backend):
        backend.put_atomic("a.json", b"x")
        backend.delete("a.json")
        assert backend.get("a.json") is None
        backend.delete("a.json")  # second delete must not raise

    def test_list_is_sorted_and_complete(self, backend):
        for name in ("b.json", "a.npz", "c.claim"):
            backend.put_atomic(name, b"x")
        assert backend.list() == ["a.npz", "b.json", "c.claim"]

    def test_list_prefix_filters_server_side(self, backend):
        for name in ("plan-1.plan", "plan-2.plan", "cell-1.npz"):
            backend.put_atomic(name, b"x")
        assert backend.list(prefix="plan-") == ["plan-1.plan", "plan-2.plan"]
        assert backend.list(prefix="nope-") == []

    def test_list_excludes_spool_artifacts(self, backend):
        """Invariant 5: readers never observe in-flight writes."""
        for _ in range(5):
            backend.put_atomic("a.json", b"x" * 64)
        names = backend.list()
        assert names == ["a.json"]

    def test_list_page_walk_covers_namespace_exactly_once(self, backend):
        """Invariant 6: a full token walk is the listing — every name
        exactly once, no page over the limit."""
        for i in range(7):
            backend.put_atomic(f"cell-{i}.npz", b"x")
        backend.put_atomic("plan-1.plan", b"x")
        walked, token, pages = [], None, 0
        while True:
            page, token = backend.list_page(token=token, limit=3)
            assert len(page) <= 3
            walked.extend(page)
            pages += 1
            if token is None:
                break
            assert pages < 100  # a looping token must not hang the suite
        assert walked == backend.list()
        assert len(walked) == len(set(walked))

    def test_list_page_prefix_filters(self, backend):
        for name in ("plan-1.plan", "plan-2.plan", "cell-1.npz"):
            backend.put_atomic(name, b"x")
        page, token = backend.list_page(prefix="plan-", limit=10)
        assert page == ["plan-1.plan", "plan-2.plan"]
        assert token is None

    def test_list_page_small_namespace_is_one_page(self, backend):
        backend.put_atomic("a.json", b"x")
        page, token = backend.list_page()
        assert page == ["a.json"]
        assert token is None

    def test_exclusive_create_single_winner(self, backend):
        assert backend.try_claim_exclusive("k.claim", b"alice")
        assert not backend.try_claim_exclusive("k.claim", b"bob")
        assert backend.get("k.claim") == b"alice"  # loser did not stomp

    def test_exclusive_create_after_delete_succeeds(self, backend):
        backend.try_claim_exclusive("k.claim", b"alice")
        backend.delete("k.claim")
        assert backend.try_claim_exclusive("k.claim", b"bob")
        assert backend.get("k.claim") == b"bob"

    def test_exclusive_create_threaded_race_one_winner(self, backend):
        """Invariant 2 under a real interleaving: N threads, one winner."""
        wins = []
        barrier = threading.Barrier(8)

        def contender(i):
            barrier.wait()
            if backend.try_claim_exclusive("race.claim", f"t{i}".encode()):
                wins.append(i)

        threads = [threading.Thread(target=contender, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert backend.get("race.claim") == f"t{wins[0]}".encode()

    def test_stamp_mtime_advances_timestamp(self, backend, clock):
        backend.try_claim_exclusive("k.claim", b"v1")
        first = backend.mtime("k.claim")
        clock.advance(5.0)
        self.wait_for_distinct_timestamp()
        backend.stamp_mtime("k.claim", b"v2")
        assert backend.get("k.claim") == b"v2"
        assert backend.mtime("k.claim") > first

    def wait_for_distinct_timestamp(self):
        """Hook for backends whose clock is the real filesystem."""

    def test_url_round_trips_to_same_storage(self, backend):
        backend.put_atomic("a.json", b"payload")
        again = resolve_backend(backend.url)
        assert again.get("a.json") == b"payload"


class TestLocalFSContract(BackendContract):
    def make_backend(self, tmp_path, clock):
        return LocalFSBackend(tmp_path / "store")

    def wait_for_distinct_timestamp(self):
        # File mtimes come from the kernel clock, not the fake: sleep one
        # filesystem-timestamp granule so the advance is observable.
        import time

        time.sleep(0.02)

    def test_orphaned_spool_is_hidden_from_list_but_sweepable(self, backend):
        """Invariant 5 regression: a stranded mkstemp spool (writer
        SIGKILLed mid-put) must not appear as an entry, yet must stay
        reachable for the stale-reap path."""
        backend.put_atomic("cell-1.npz", b"data")
        (backend.root / "cell-1abcd123.tmp").write_bytes(b"partial")
        assert backend.list() == ["cell-1.npz"]
        assert backend.stray_spools() == ["cell-1abcd123.tmp"]
        assert backend.mtime("cell-1abcd123.tmp") is not None
        backend.delete("cell-1abcd123.tmp")
        assert backend.stray_spools() == []


class TestMemoryBucketContract(BackendContract):
    def make_backend(self, tmp_path, clock):
        # Registry-named bucket so backend.url resolves back to the same
        # storage (tmp_path.name is unique per test).
        name = f"contract-{tmp_path.name}"
        return ObjectStoreBackend(
            FakeObjectStore(memory_bucket(name), clock=clock),
            url=f"mem://{name}",
        )


class TestDirectoryBucketContract(BackendContract):
    def make_backend(self, tmp_path, clock):
        return ObjectStoreBackend(
            FakeObjectStore(DirectoryBucket(tmp_path / "bucket"), clock=clock),
            url=f"fakes3://{tmp_path / 'bucket'}",
        )

    def test_orphaned_spool_is_hidden_yet_reapable(self, backend, tmp_path):
        """A writer SIGKILLed mid-save strands a .spool-* file; it must
        stay invisible to listings but sweepable by reap_stale —
        otherwise it accumulates in the bucket forever."""
        backend.put_atomic("cell-1.npz", b"data")
        orphan = tmp_path / "bucket" / ".spool-orphan"
        orphan.write_bytes(b"partial")
        assert backend.list() == ["cell-1.npz"]
        assert backend.stray_spools() == [".spool-orphan"]
        store = CellStore(backend, lease_ttl=10.0)
        import os as _os
        _os.utime(orphan, (1.0, 1.0))  # ancient: well past any TTL
        assert store.reap_stale() == 1
        assert not orphan.exists()


class TestPrefixedObjectContract(BackendContract):
    """A key prefix must be invisible to the StoreBackend surface."""

    def make_backend(self, tmp_path, clock):
        return ObjectStoreBackend(
            FakeObjectStore(MemoryBucket(), clock=clock),
            url="mem://contract-prefixed",
            prefix="grids/run-1",
        )

    def test_names_are_namespaced_in_the_bucket(self, backend):
        backend.put_atomic("a.json", b"x")
        assert backend.client.list_objects() == ["grids/run-1/a.json"]
        assert backend.list() == ["a.json"]

    def test_foreign_keys_sharing_the_bucket_stay_invisible(self, backend):
        """A key outside this store's prefix must never be mangled into
        an entry name (regression: ``key[len(base):]`` blind slicing)."""
        backend.put_atomic("a.json", b"x")
        backend.client.put_object("grids/run-2/b.json", b"other run")
        backend.client.put_object("unrelated.json", b"foreign tenant")
        assert backend.list() == ["a.json"]
        walked, token = [], None
        while True:
            page, token = backend.list_page(token=token, limit=2)
            walked.extend(page)
            if token is None:
                break
        assert walked == ["a.json"]

    def test_url_round_trips_to_same_storage(self, backend):
        # mem:// URLs cannot encode a key prefix; namespacing is covered
        # by test_names_are_namespaced_in_the_bucket instead.
        pytest.skip("prefixed mem:// backends are not URL-addressable")


# ----------------------------------------------------------------------
# URL resolution
# ----------------------------------------------------------------------


class TestResolveBackend:
    def test_none_is_memory_only(self):
        assert resolve_backend(None) is None

    def test_plain_path_and_file_url_are_local(self, tmp_path):
        a = resolve_backend(tmp_path)
        b = resolve_backend(f"file://{tmp_path}")
        assert isinstance(a, LocalFSBackend) and isinstance(b, LocalFSBackend)
        assert a.root == b.root == tmp_path

    def test_backend_instance_passes_through(self, tmp_path):
        backend = LocalFSBackend(tmp_path)
        assert resolve_backend(backend) is backend

    def test_mem_urls_share_named_buckets(self):
        a = resolve_backend("mem://shared-bucket")
        b = resolve_backend("mem://shared-bucket")
        other = resolve_backend("mem://different")
        a.put_atomic("k.json", b"v")
        assert b.get("k.json") == b"v"
        assert other.get("k.json") is None
        assert memory_bucket("shared-bucket") is a.client.bucket

    def test_fakes3_url_is_directory_backed(self, tmp_path):
        backend = resolve_backend(f"fakes3://{tmp_path}/bucket")
        backend.put_atomic("k.json", b"v")
        assert (tmp_path / "bucket" / "k.json").read_bytes() == b"v"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            resolve_backend("gopher://cellstore")

    def test_s3_url_without_bucket_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            resolve_backend("s3:///prefix-only")

    def test_cellstore_dir_env_accepts_urls(self, tmp_path, monkeypatch):
        from repro.experiments.store import default_store_root

        monkeypatch.setenv("REPRO_CELLSTORE_DIR", f"fakes3://{tmp_path}/b")
        target = default_store_root()
        store = CellStore(target)
        assert store.url == f"fakes3://{tmp_path}/b"
        store.put("ratio", "k", 0.25)
        assert CellStore(target).get("ratio", "k") == 0.25


# ----------------------------------------------------------------------
# CellStore over both backend families: same protocol, same outcomes
# ----------------------------------------------------------------------


def store_over(kind: str, tmp_path, clock, **kwargs) -> CellStore:
    """A CellStore over the requested backend with an injected clock."""
    if kind == "file":
        return CellStore(tmp_path / "store", clock=clock, **kwargs)
    backend = ObjectStoreBackend(
        FakeObjectStore(DirectoryBucket(tmp_path / "bucket"), clock=clock),
        url=f"fakes3://{tmp_path / 'bucket'}",
    )
    return CellStore(backend, clock=clock, **kwargs)


@pytest.fixture(params=["file", "objectstore"])
def clocked_store(request, tmp_path):
    import time

    # Based at real time: the file backend's mtimes come from the kernel
    # clock, so the injected clock must share its epoch (advancing it
    # simulates the passage of time against freshly written entries).
    clock = FakeClock(start=time.time())
    store = store_over(request.param, tmp_path, clock, lease_ttl=10.0)
    store.test_clock = clock
    store.backend_kind = request.param
    return store


class TestCellStoreOverBackends:
    def test_cell_round_trip_bit_identical(self, clocked_store):
        original = make_result(7)
        clocked_store.put("cell", "k", original)
        clocked_store.clear_memory()
        loaded = clocked_store.get("cell", "k")
        assert loaded is not original
        for name in original.metric_values:
            np.testing.assert_array_equal(
                loaded.metric_values[name], original.metric_values[name]
            )

    def test_claims_are_exclusive(self, clocked_store):
        assert clocked_store.try_claim("cell", "k", "alice")
        assert not clocked_store.try_claim("cell", "k", "bob")
        clocked_store.release_claim("cell", "k", "alice")
        assert clocked_store.try_claim("cell", "k", "bob")

    def test_stale_lease_reaped_via_injected_clock(self, clocked_store):
        """Lease expiry needs no sleeping: advance the shared clock past
        the TTL and the next claimer reaps."""
        assert clocked_store.try_claim("cell", "k", "alice")
        clocked_store.test_clock.advance(9.0)
        assert not clocked_store.try_claim("cell", "k", "bob")  # still live
        clocked_store.test_clock.advance(2.0)  # 11s > ttl=10s
        assert clocked_store.stale_claim_files() != []
        assert clocked_store.try_claim("cell", "k", "bob")
        assert clocked_store.claim_info("cell", "k")["owner"] == "bob"
        assert clocked_store.stats["reaped_claims"] == 1

    def test_heartbeat_defers_expiry(self, clocked_store):
        if clocked_store.backend_kind == "file":
            # File mtimes cannot be driven by the injected clock; the
            # realtime equivalent is pinned by
            # test_store.TestClaims.test_heartbeat_keeps_lease_alive.
            pytest.skip("filesystem heartbeat timestamps are kernel-clocked")
        assert clocked_store.try_claim("cell", "k", "alice")
        for _ in range(3):
            clocked_store.test_clock.advance(8.0)
            assert clocked_store.refresh_claim("cell", "k", "alice")
        # 24s elapsed > ttl, but each stamp re-based the lease.
        assert not clocked_store.try_claim("cell", "k", "bob")

    def test_filter_missing_matches_per_key_has(self, clocked_store):
        """The batched pending probe (one listing) must agree with the
        per-key probe on every membership combination."""
        clocked_store.put("cell", "landed-disk", make_result())
        clocked_store.clear_memory()
        clocked_store.put("cell", "landed-memory", make_result(),
                          persist=False)
        keys = ["landed-disk", "landed-memory", "missing-a", "missing-b"]
        assert clocked_store.filter_missing("cell", keys) == [
            "missing-a", "missing-b"
        ]
        for key in keys:
            assert (key not in clocked_store.filter_missing("cell", [key])) \
                == clocked_store.has("cell", key)

    def test_corrupt_entry_self_heals(self, clocked_store):
        clocked_store.put("cell", "k", make_result())
        clocked_store.clear_memory()
        name = clocked_store._entry_name("cell", "k")
        clocked_store.backend.put_atomic(name, b"torn garbage")
        assert clocked_store.has("cell", "k")  # stat probe is optimistic
        assert clocked_store.get("cell", "k") is None  # decode heals
        assert not clocked_store.backend.exists(name)

    def test_release_respects_new_owner(self, clocked_store):
        clocked_store.try_claim("cell", "k", "alice")
        clocked_store.test_clock.advance(11.0)
        assert clocked_store.try_claim("cell", "k", "bob")
        clocked_store.release_claim("cell", "k", "alice")  # lost her lease
        assert clocked_store.claim_info("cell", "k")["owner"] == "bob"


class TestObjectStoreFaults:
    """Fault injection only the fake object store can express."""

    def test_injected_conflict_loses_the_claim_race(self, tmp_path):
        """A conditional put losing a race it could not observe (another
        writer's entry not yet visible to this client) must read as an
        ordinary claim conflict, not an error."""
        conflicts = ["k-digest"]
        fake = FakeObjectStore(
            MemoryBucket(),
            conflict_injector=lambda key: bool(conflicts) and conflicts.pop(0) in key,
        )
        backend = ObjectStoreBackend(fake, url="mem://faults")
        assert not backend.try_claim_exclusive("cell-k-digest.claim", b"a")
        # The spurious conflict is transient; the retry wins for real.
        assert backend.try_claim_exclusive("cell-k-digest.claim", b"a")

    def test_conflict_surfaces_as_lost_claim_in_cellstore(self, tmp_path):
        clock = FakeClock()
        fake = FakeObjectStore(
            MemoryBucket(), clock=clock, conflict_injector=lambda key: True
        )
        store = CellStore(
            ObjectStoreBackend(fake, url="mem://faults2"), clock=clock
        )
        assert not store.try_claim("cell", "k", "alice")
        assert store.claim_info("cell", "k") is None  # nothing was written

    def test_head_object_never_transfers_the_payload(self, tmp_path):
        """Regression: exists()/mtime() probes run every poll round and
        must stay metadata-only on both bucket drivers."""

        class PayloadTrap(DirectoryBucket):
            def load(self, name):
                raise AssertionError("head path read a payload")

        bucket = PayloadTrap(tmp_path / "bucket")
        DirectoryBucket.save(bucket, "cell-1.npz", b"x" * 4096, 123.0)
        backend = ObjectStoreBackend(
            FakeObjectStore(bucket), url=f"fakes3://{tmp_path}/bucket"
        )
        assert backend.exists("cell-1.npz")
        assert backend.mtime("cell-1.npz") == pytest.approx(123.0)
        mem = MemoryBucket()
        mem.save("k", b"y" * 4096, 7.0)
        assert mem.stat("k") == (4096, 7.0)
        assert mem.stat("absent") is None

    def test_latency_is_per_operation(self):
        import time as _time

        fake = FakeObjectStore(MemoryBucket(), latency=0.01)
        backend = ObjectStoreBackend(fake, url="mem://slow")
        start = _time.perf_counter()
        backend.put_atomic("a.json", b"x")
        backend.get("a.json")
        assert _time.perf_counter() - start >= 0.02

    def test_high_latency_store_still_converges(self, tmp_path):
        """The claim protocol only assumes atomicity, never timing."""
        clock = FakeClock()
        fake = FakeObjectStore(MemoryBucket(), clock=clock, latency=0.002)
        store = CellStore(
            ObjectStoreBackend(fake, url="mem://slow2"), clock=clock,
            lease_ttl=10.0,
        )
        assert store.try_claim("cell", "k", "alice")
        store.put("ratio", "k", 0.5)
        store.release_claim("cell", "k", "alice")
        store.clear_memory()
        assert store.get("ratio", "k") == 0.5
        assert store.claim_names() == []


class TestBoto3Adapter:
    """The s3:// adapter against a scripted stand-in client (no network)."""

    class _Scripted:
        """Minimal boto3-shaped S3 client backed by a dict."""

        def __init__(self):
            self.objects: dict[str, bytes] = {}

        def _error(self, code):
            class ClientError(Exception):
                response = {"Error": {"Code": code}}

            return ClientError(code)

        def put_object(self, Bucket, Key, Body, IfNoneMatch=None):
            if IfNoneMatch == "*" and Key in self.objects:
                raise self._error("PreconditionFailed")
            self.objects[Key] = bytes(Body)

        def get_object(self, Bucket, Key):
            if Key not in self.objects:
                raise self._error("NoSuchKey")
            import io

            return {"Body": io.BytesIO(self.objects[Key])}

        def head_object(self, Bucket, Key):
            if Key not in self.objects:
                raise self._error("404")
            import datetime

            return {
                "LastModified": datetime.datetime.fromtimestamp(
                    123.0, tz=datetime.timezone.utc
                ),
                "ContentLength": len(self.objects[Key]),
            }

        def delete_object(self, Bucket, Key):
            self.objects.pop(Key, None)

        def list_objects_v2(self, Bucket, Prefix="", ContinuationToken=None,
                            MaxKeys=1000):
            keys = sorted(k for k in self.objects if k.startswith(Prefix))
            if ContinuationToken is not None:
                keys = [k for k in keys if k > ContinuationToken]
            page = keys[:MaxKeys]
            truncated = len(keys) > len(page)
            reply = {"Contents": [{"Key": k} for k in page],
                     "IsTruncated": truncated}
            if truncated:
                reply["NextContinuationToken"] = page[-1]
            return reply

    def make_backend(self):
        client = Boto3ObjectStore("bucket", client=self._Scripted())
        return ObjectStoreBackend(client, url="s3://bucket/pre", prefix="pre")

    def test_list_page_walks_truncated_pages(self):
        """MaxKeys flows through list_objects_v2 and the continuation
        token round-trips opaquely."""
        backend = self.make_backend()
        for i in range(5):
            backend.put_atomic(f"k{i}.json", b"x")
        walked, token = [], None
        while True:
            page, token = backend.list_page(token=token, limit=2)
            assert len(page) <= 2
            walked.extend(page)
            if token is None:
                break
        assert walked == [f"k{i}.json" for i in range(5)]

    def test_round_trip_and_conditional_put(self):
        backend = self.make_backend()
        assert backend.get("a.json") is None
        backend.put_atomic("a.json", b"v")
        assert backend.get("a.json") == b"v"
        assert backend.mtime("a.json") == 123.0
        assert backend.try_claim_exclusive("k.claim", b"alice")
        assert not backend.try_claim_exclusive("k.claim", b"bob")
        assert backend.list() == ["a.json", "k.claim"]
        backend.delete("k.claim")
        assert backend.list() == ["a.json"]


class TestFakeStorePagination:
    """The fake client's truncated-page modelling and round-trip counters."""

    def test_page_size_truncates_below_max_keys(self):
        client = FakeObjectStore(MemoryBucket(), page_size=2)
        for i in range(5):
            client.put_object(f"k{i}", b"x")
        page, token = client.list_objects_page(max_keys=100)
        assert page == ["k0", "k1"]
        assert token == "k1"

    def test_token_walk_is_complete(self):
        client = FakeObjectStore(MemoryBucket(), page_size=2)
        for i in range(5):
            client.put_object(f"k{i}", b"x")
        walked, token = [], None
        while True:
            page, token = client.list_objects_page(token=token)
            walked.extend(page)
            if token is None:
                break
        assert walked == [f"k{i}" for i in range(5)]

    def test_backend_walk_rides_provider_truncation(self):
        """A backend page *request* larger than the provider's cap still
        walks the namespace completely (real S3 may truncate harder than
        MaxKeys asked)."""
        client = FakeObjectStore(MemoryBucket(), page_size=2)
        backend = ObjectStoreBackend(client, url="mem://trunc-test")
        for i in range(5):
            backend.put_atomic(f"k{i}.json", b"x")
        walked, token = [], None
        while True:
            page, token = backend.list_page(token=token, limit=100)
            walked.extend(page)
            if token is None:
                break
        assert walked == backend.list()

    def test_op_counts_observe_round_trips(self):
        client = FakeObjectStore(MemoryBucket())
        client.put_object("a", b"x")
        client.get_object("a")
        client.list_objects_page()
        client.list_objects_page()
        assert client.op_counts["put_object"] == 1
        assert client.op_counts["get_object"] == 1
        assert client.op_counts["list_objects_page"] == 2


class TestBoundedPolling:
    """Steady-state polling round trips must not scale with store size.

    The regression behind the delta cache: every ``filter_missing`` poll
    used to list the whole ``{kind}-`` prefix, so polling cost grew with
    every landed cell.  With the cache, landed keys are free and the few
    pending ones pay one metadata probe each.
    """

    def make_store(self):
        client = FakeObjectStore(MemoryBucket())
        backend = ObjectStoreBackend(client, url="mem://bounded-poll")
        return client, CellStore(backend)

    def test_pending_scan_cost_is_per_pending_not_per_landed(self):
        client, store = self.make_store()
        for i in range(40):
            store.put("ratio", f"k{i}", float(i))
        pending = [f"p{i}" for i in range(3)]

        # A fresh process (empty memory layer, empty cache) queries the
        # whole grid: one paged sweep reseeds the landed cache.
        fresh = CellStore(store.backend)
        keys = [f"k{i}" for i in range(40)] + pending
        assert fresh.filter_missing("ratio", keys) == pending

        client.op_counts.clear()
        for _ in range(5):
            assert fresh.filter_missing("ratio", keys) == pending
        # Landed cells answer from the cache; only the 3 pending keys pay
        # a probe per poll — and nothing lists the store again.
        assert client.op_counts["list_objects"] == 0
        assert client.op_counts["list_objects_page"] == 0
        assert client.op_counts["head_object"] == 5 * len(pending)

    def test_landing_more_cells_does_not_raise_poll_cost(self):
        client, store = self.make_store()
        pending = [f"p{i}" for i in range(3)]
        poller = CellStore(store.backend)

        def poll_cost(landed: int) -> int:
            for i in range(landed):
                store.put("ratio", f"k{i}", float(i))
            keys = [f"k{i}" for i in range(landed)] + pending
            poller.filter_missing("ratio", keys)  # warm the cache
            client.op_counts.clear()
            poller.filter_missing("ratio", keys)
            return sum(client.op_counts.values())

        assert poll_cost(10) == poll_cost(80)

    def test_put_feeds_the_cache(self):
        """A worker's own writes are known landed without any round trip."""
        client, store = self.make_store()
        store.put("ratio", "mine", 1.0)
        store.clear_memory()
        client.op_counts.clear()
        assert store.filter_missing("ratio", ["mine"]) == []
        assert sum(client.op_counts.values()) == 0

    def test_healed_entry_leaves_the_cache(self):
        """Heal-on-decode must evict, or the poller would report the cell
        landed forever while verify keeps failing (a pending livelock)."""
        client, store = self.make_store()
        store.put("ratio", "k", 0.5)
        store.clear_memory()
        name = store._entry_name("ratio", "k")
        client.put_object(name, b"\xabRS1\x00\x04zlibgarbage")
        assert store.get("ratio", "k") is None  # healed by deletion
        assert store.filter_missing("ratio", ["k"]) == ["k"]
